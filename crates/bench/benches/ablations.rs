//! Ablation benches for the design choices called out in DESIGN.md §5:
//! histogram bin count, hypercube edge, cluster count, UIPS refinement, and
//! entropy-weighting temperature. Each group measures the kernel cost of
//! turning the knob; the *quality* side of these ablations is covered by
//! the figure binaries and integration tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_core::samplers::{MaxEntSampler, PointSampler};
use sickle_core::UipsSampler;
use sickle_field::FeatureMatrix;

fn features(n: usize) -> FeatureMatrix {
    let names = vec!["u".into(), "q".into()];
    let data: Vec<f64> = (0..n * 2)
        .map(|i| {
            let t = i as f64 * 0.003;
            if i % 2 == 0 {
                (t * 2.1).sin()
            } else {
                (t * 0.7).cos().powi(3) + if i % 193 == 0 { 8.0 } else { 0.0 }
            }
        })
        .collect();
    FeatureMatrix::new(names, data)
}

fn bench_bins(c: &mut Criterion) {
    let f = features(32_768);
    let mut group = c.benchmark_group("ablation_maxent_bins");
    group.sample_size(10);
    for bins in [25usize, 50, 100, 200] {
        let s = MaxEntSampler {
            num_clusters: 20,
            bins,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(bins), &s, |b, s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                std::hint::black_box(s.select(&f, 1, 3277, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_clusters(c: &mut Criterion) {
    let f = features(32_768);
    let mut group = c.benchmark_group("ablation_maxent_clusters");
    group.sample_size(10);
    for k in [5usize, 10, 20, 40] {
        let s = MaxEntSampler {
            num_clusters: k,
            bins: 100,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &s, |b, s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                std::hint::black_box(s.select(&f, 1, 3277, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_cube_edge(c: &mut Criterion) {
    // Kernel cost per cube as the edge grows (8^3 vs 16^3 vs 32^3 points).
    let mut group = c.benchmark_group("ablation_cube_edge");
    group.sample_size(10);
    for edge in [8usize, 16, 32] {
        let f = features(edge * edge * edge);
        let s = MaxEntSampler {
            num_clusters: 20,
            bins: 100,
            ..Default::default()
        };
        let budget = f.len() / 10;
        group.bench_with_input(BenchmarkId::from_parameter(edge), &f, |b, f| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                std::hint::black_box(s.select(f, 1, budget, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_uips_refinement(c: &mut Criterion) {
    let f = features(32_768);
    let mut group = c.benchmark_group("ablation_uips_refine");
    group.sample_size(10);
    for iters in [0usize, 1, 3] {
        let s = UipsSampler {
            bins_per_dim: 10,
            refine_iterations: iters,
        };
        group.bench_with_input(BenchmarkId::from_parameter(iters), &s, |b, s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                std::hint::black_box(s.select(&f, 1, 3277, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_temperature(c: &mut Criterion) {
    let f = features(32_768);
    let mut group = c.benchmark_group("ablation_maxent_temperature");
    group.sample_size(10);
    for (label, t) in [("t0", 0.0f64), ("t05", 0.5), ("t1", 1.0), ("t2", 2.0)] {
        let s = MaxEntSampler {
            num_clusters: 20,
            bins: 100,
            temperature: t,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &s, |b, s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                std::hint::black_box(s.select(&f, 1, 3277, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bins,
    bench_clusters,
    bench_cube_edge,
    bench_uips_refinement,
    bench_temperature
);
criterion_main!(benches);
