//! Criterion benches for the FFT substrate: 1D plan throughput and the 3D
//! transforms that dominate the pseudo-spectral solver's step cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sickle_fft::{Complex, Fft3d, FftPlan, RealFft, RealFft3d};

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                std::hint::black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_rfft(c: &mut Criterion) {
    let n = 4096;
    let plan = RealFft::new(n);
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    c.bench_function("rfft_4096", |b| {
        b.iter(|| std::hint::black_box(plan.forward(&data)))
    });
}

fn bench_fft_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_3d");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let plan = Fft3d::new(n, n, n);
        let data: Vec<Complex> = (0..n * n * n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                std::hint::black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_fft_3d_real_vs_complex(c: &mut Criterion) {
    // Full roundtrips at matched sizes: the half-spectrum transform should
    // run at roughly half the cost of the complex one on real data.
    let mut group = c.benchmark_group("fft_3d_real_vs_complex");
    group.sample_size(10);
    for n in [32usize, 64] {
        let field: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let cplan = Fft3d::new(n, n, n);
        let cdata: Vec<Complex> = field.iter().map(|&x| Complex::new(x, 0.0)).collect();
        group.bench_with_input(BenchmarkId::new("complex", n), &cplan, |b, plan| {
            let mut buf = cdata.clone();
            b.iter(|| {
                plan.forward(&mut buf);
                plan.inverse(&mut buf);
                std::hint::black_box(&mut buf);
            })
        });
        let rplan = RealFft3d::new(n, n, n);
        group.bench_with_input(BenchmarkId::new("real", n), &rplan, |b, plan| {
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            let mut back = vec![0.0; field.len()];
            b.iter(|| {
                plan.forward(&field, &mut spec);
                plan.inverse(&mut spec, &mut back);
                std::hint::black_box(&mut back);
            })
        });
    }
    group.finish();
}

fn bench_spectral_step(c: &mut Criterion) {
    use sickle_cfd::{SpectralConfig, SpectralSolver};
    let mut group = c.benchmark_group("spectral_step");
    group.sample_size(10);
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut solver = SpectralSolver::new(SpectralConfig {
                n,
                dt: 0.005,
                ..Default::default()
            });
            solver.init_taylor_green(1.0);
            b.iter(|| {
                solver.step();
                std::hint::black_box(solver.kinetic_energy())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft_1d,
    bench_rfft,
    bench_fft_3d,
    bench_fft_3d_real_vs_complex,
    bench_spectral_step
);
criterion_main!(benches);
