//! Criterion benches for the GEMM kernels: naive serial triple loop vs the
//! blocked, packed, FMA-dispatched kernel on the shapes the fig8 models
//! actually run — MLP hidden layers, the LSTM gate step, and per-head
//! attention products — plus the 256³ reference the perf budget enforces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sickle_nn::gemm;

fn pseudo(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (1u64 << 31) as f32 - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);

    // (label, m, k, n, nt): NN unless `nt`, matching the model's layouts.
    let shapes = [
        ("mlp_hidden_64x32x32", 64usize, 32usize, 32usize, false),
        ("mlp_expand_64x32x64", 64, 32, 64, false),
        ("lstm_gates_8x80x256", 8, 80, 256, false),
        ("attn_scores_nt_64x8x64", 64, 8, 64, true),
        ("attn_values_64x64x8", 64, 64, 8, false),
        ("reference_256x256x256", 256, 256, 256, false),
    ];

    for &(label, m, k, n, nt) in &shapes {
        let a = pseudo(11, m * k);
        let b = pseudo(13, k * n);
        let mut out = vec![0.0f32; m * n];

        group.bench_function(BenchmarkId::new("naive", label), |bch| {
            bch.iter(|| {
                if nt {
                    gemm::naive_matmul_nt_into(&mut out, &a, &b, m, k, n, false);
                } else {
                    gemm::naive_matmul_into(&mut out, &a, &b, m, k, n, false);
                }
                std::hint::black_box(&mut out);
            });
        });

        group.bench_function(BenchmarkId::new("blocked", label), |bch| {
            bch.iter(|| {
                if nt {
                    gemm::matmul_nt_into(&mut out, &a, &b, m, k, n, false);
                } else {
                    gemm::matmul_into(&mut out, &a, &b, m, k, n, false);
                }
                std::hint::black_box(&mut out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
