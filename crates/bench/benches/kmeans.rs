//! Criterion benches for the mini-batch k-means substrate: fit cost vs
//! cluster count and data size (the "computational cost of performing a
//! cluster analysis" the paper's Discussion weighs against sampling gains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sickle_core::kmeans::{KMeans, KMeansConfig};

fn blob_data(n: usize, d: usize) -> Vec<f64> {
    (0..n * d)
        .map(|i| {
            let c = (i / d) % 5; // five latent blobs
            c as f64 * 3.0 + ((i.wrapping_mul(2654435761)) % 1000) as f64 * 1e-3
        })
        .collect()
}

fn bench_fit_clusters(c: &mut Criterion) {
    let data = blob_data(32 * 32 * 32, 1);
    let mut group = c.benchmark_group("kmeans_fit_32cubed_1d");
    group.sample_size(10);
    for k in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                std::hint::black_box(KMeans::fit(
                    &data,
                    1,
                    &KMeansConfig {
                        k,
                        batch_size: 1024,
                        iterations: 30,
                        seed: 0,
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_fit_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_fit_size_4d");
    group.sample_size(10);
    for n in [4096usize, 32_768, 262_144] {
        let data = blob_data(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                std::hint::black_box(KMeans::fit(
                    data,
                    4,
                    &KMeansConfig {
                        k: 20,
                        batch_size: 1024,
                        iterations: 30,
                        seed: 0,
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    let data = blob_data(262_144, 4);
    let km = KMeans::fit(
        &data,
        4,
        &KMeansConfig {
            k: 20,
            batch_size: 1024,
            iterations: 30,
            seed: 0,
        },
    );
    c.bench_function("kmeans_assign_256k_4d", |b| {
        b.iter(|| std::hint::black_box(km.assign(&data)))
    });
}

criterion_group!(benches, bench_fit_clusters, bench_fit_size, bench_assign);
criterion_main!(benches);
