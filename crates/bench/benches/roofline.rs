//! Criterion companion to the `perf_roofline` binary: naive-vs-optimized
//! pairs for the three dataset-generation hot paths (FFT, LBM collide-and-
//! stream, histogram/entropy build) at the 32³ and 64³ working-set sizes the
//! paper's generators use. Every pair goes through the explicit `_with`
//! kernel APIs so the comparison never touches the process-global switch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sickle_cfd::{CylinderFlow, LbmConfig};
use sickle_core::entropy::ClusterDistributions;
use sickle_fft::{Complex, Kernel, RealFft3d};
use sickle_field::Histogram;

/// Deterministic quasi-random field, sized like an `n³` cube.
fn field(n: usize) -> Vec<f64> {
    (0..n * n * n)
        .map(|i| (i as f64 * 0.7310).sin() * 3.0 + (i as f64 * 1.93).cos())
        .collect()
}

fn bench_fft_butterfly(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_fft");
    group.sample_size(10);
    for n in [32usize, 64] {
        let rfft = RealFft3d::new(n, n, n);
        let data = field(n);
        let nspec = n * n * (n / 2 + 1);
        for kernel in [Kernel::Naive, Kernel::Optimized] {
            let id = BenchmarkId::new(&format!("rfft3d_{kernel:?}"), n);
            group.bench_with_input(id, &rfft, |b, rfft| {
                let mut spec = vec![Complex::ZERO; nspec];
                b.iter(|| {
                    rfft.forward_with(&data, &mut spec, kernel);
                    std::hint::black_box(spec[1])
                })
            });
        }
    }
    group.finish();
}

fn bench_lbm_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_lbm");
    group.sample_size(10);
    for kernel in [Kernel::Naive, Kernel::Optimized] {
        let cfg = LbmConfig {
            nx: 256,
            ny: 128,
            ..Default::default()
        };
        let mut flow = CylinderFlow::new(cfg);
        let id = BenchmarkId::new(&format!("step_{kernel:?}"), "256x128");
        group.bench_with_input(id, &(), |b, ()| {
            b.iter(|| {
                flow.step_with(kernel);
                std::hint::black_box(flow.steps())
            })
        });
    }
    group.finish();
}

fn bench_histogram_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_histogram");
    group.sample_size(10);
    for n in [32usize, 64] {
        let data = field(n);
        for kernel in [Kernel::Naive, Kernel::Optimized] {
            let id = BenchmarkId::new(&format!("hist_fill_{kernel:?}"), n);
            group.bench_with_input(id, &data, |b, data| {
                b.iter(|| {
                    let mut h = Histogram::new(-5.0, 5.0, 64);
                    h.extend_with(data, kernel);
                    std::hint::black_box(h.total)
                })
            });
        }
    }
    // Per-cube MaxEnt distribution estimation (range scan + binned counts +
    // entropy-normalized PMFs), the sampling pipeline's feature hot path.
    for n in [32usize, 64] {
        let values = field(n);
        let labels: Vec<usize> = (0..values.len()).map(|i| i % 8).collect();
        for kernel in [Kernel::Naive, Kernel::Optimized] {
            let id = BenchmarkId::new(&format!("maxent_estimate_{kernel:?}"), n);
            group.bench_with_input(id, &values, |b, values| {
                b.iter(|| {
                    let d = ClusterDistributions::estimate_with(values, &labels, 8, 64, kernel);
                    std::hint::black_box(d.pmfs[0][0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    roofline,
    bench_fft_butterfly,
    bench_lbm_step,
    bench_histogram_entropy
);
criterion_main!(roofline);
