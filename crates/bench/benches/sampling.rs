//! Criterion micro-benchmarks: point-sampler throughput per method at a
//! fixed 10% budget — the per-cube kernel cost `c(m)` of the paper's Eq. 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_core::samplers::{
    LhsSampler, MaxEntSampler, PointSampler, RandomSampler, StratifiedSampler, UniformStrideSampler,
};
use sickle_core::UipsSampler;
use sickle_field::FeatureMatrix;

/// A 32³-cube-sized feature matrix with realistic multi-modal structure.
fn cube_features(n: usize) -> FeatureMatrix {
    let names = vec!["u".into(), "v".into(), "w".into(), "q".into()];
    let mut data = Vec::with_capacity(n * 4);
    for i in 0..n {
        let t = i as f64 * 0.001;
        data.push((t * 3.1).sin());
        data.push((t * 1.7).cos() * 0.5);
        data.push((t * 0.9).sin() * 0.2);
        // Heavy-tailed cluster variable.
        let tail = if i % 97 == 0 { 10.0 } else { 0.0 };
        data.push((t * 5.3).sin().powi(3) + tail);
    }
    FeatureMatrix::new(names, data)
}

fn bench_samplers(c: &mut Criterion) {
    let features = cube_features(32 * 32 * 32);
    let budget = features.len() / 10;
    let mut group = c.benchmark_group("sampler_32cubed_10pct");
    group.sample_size(10);
    let methods: Vec<(&str, Box<dyn PointSampler>)> = vec![
        ("random", Box::new(RandomSampler)),
        ("uniform", Box::new(UniformStrideSampler)),
        ("lhs", Box::new(LhsSampler)),
        ("stratified", Box::new(StratifiedSampler::default())),
        ("uips", Box::new(UipsSampler::default())),
        (
            "maxent",
            Box::new(MaxEntSampler {
                num_clusters: 20,
                bins: 100,
                ..Default::default()
            }),
        ),
    ];
    for (name, sampler) in methods {
        group.bench_with_input(BenchmarkId::from_parameter(name), &features, |b, f| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                std::hint::black_box(sampler.select(f, 3, budget, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_budget_scaling(c: &mut Criterion) {
    // MaxEnt cost vs budget (should be dominated by clustering, ~flat).
    let features = cube_features(32 * 32 * 32);
    let sampler = MaxEntSampler {
        num_clusters: 20,
        bins: 100,
        ..Default::default()
    };
    let mut group = c.benchmark_group("maxent_budget_scaling");
    group.sample_size(10);
    for pct in [1usize, 5, 10, 25] {
        let budget = features.len() * pct / 100;
        group.bench_with_input(BenchmarkId::from_parameter(pct), &budget, |b, &budget| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                std::hint::black_box(sampler.select(&features, 3, budget, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_budget_scaling);
criterion_main!(benches);
