//! Criterion benches for the training substrate: per-batch step cost of
//! each Table-2 architecture, and the DDP all-reduce overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sickle_nn::optim::Adam;
use sickle_nn::Tape;
use sickle_train::data::{Batch, BatchShape};
use sickle_train::models::{LstmModel, MateyMini, Model, TokenTransformer};

fn toy_batch(batch: usize, tokens: usize, features: usize, outputs: usize) -> Batch {
    Batch {
        inputs: (0..batch * tokens * features)
            .map(|i| ((i * 37) % 19) as f32 * 0.05 - 0.4)
            .collect(),
        targets: (0..batch * outputs)
            .map(|i| ((i * 13) % 7) as f32 * 0.1)
            .collect(),
        shape: BatchShape {
            batch,
            tokens,
            features,
            outputs,
        },
    }
}

fn step(model: &mut dyn Model, batch: &Batch, opt: &mut Adam) -> f32 {
    let mut tape = Tape::new();
    let loss = model.loss_on_batch(&mut tape, batch);
    let lv = tape.value(loss)[0];
    tape.backward(loss);
    tape.accumulate_grads(model.store_mut());
    opt.step(model.store_mut());
    model.store_mut().zero_grads();
    lv
}

fn bench_model_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("lstm_b16_t3_f128"), |b| {
        let batch = toy_batch(16, 3, 128, 1);
        let mut model = LstmModel::new(128, 32, 1, 0);
        let mut opt = Adam::new(1e-3);
        b.iter(|| std::hint::black_box(step(&mut model, &batch, &mut opt)));
    });

    group.bench_function(BenchmarkId::from_parameter("mlp_transformer_b4_n64"), |b| {
        let batch = toy_batch(4, 64, 5, 4096);
        let mut model = TokenTransformer::mlp_transformer(64, 5, 32, 1, 4096, 0);
        let mut opt = Adam::new(1e-3);
        b.iter(|| std::hint::black_box(step(&mut model, &batch, &mut opt)));
    });

    group.bench_function(
        BenchmarkId::from_parameter("cnn_transformer_b2_n512"),
        |b| {
            let batch = toy_batch(2, 512, 32, 4096);
            let mut model = TokenTransformer::cnn_transformer(512, 32, 32, 1, 4096, 0);
            let mut opt = Adam::new(1e-3);
            b.iter(|| std::hint::black_box(step(&mut model, &batch, &mut opt)));
        },
    );

    group.bench_function(BenchmarkId::from_parameter("matey_b2_n64_keep25"), |b| {
        let batch = toy_batch(2, 64, 32, 4096);
        let mut model = MateyMini::new(64, 32, 32, 1, 4096, 0.25, 0);
        let mut opt = Adam::new(1e-3);
        b.iter(|| std::hint::black_box(step(&mut model, &batch, &mut opt)));
    });
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    use sickle_train::ddp::allreduce_mean;
    let mut group = c.benchmark_group("ddp_allreduce");
    for world in [2usize, 4, 8] {
        let grads: Vec<Vec<f32>> = (0..world).map(|w| vec![w as f32; 100_000]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(world), &grads, |b, grads| {
            b.iter(|| std::hint::black_box(allreduce_mean(grads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_steps, bench_allreduce);
criterion_main!(benches);
