//! Quality-side ablations for the design choices DESIGN.md §5 calls out
//! (the cost side lives in `benches/ablations.rs`):
//!
//! - histogram bin count for the entropy estimate (paper fixes 100),
//! - k-means cluster count (paper uses 5–20),
//! - entropy-weighting temperature τ,
//! - hypercube edge length (8/16/32 — paper's tractability limit is 32³),
//! - UIPS density estimator: binning vs the GMM (flow-like) alternative.
//!
//! Each knob is scored by tail-coverage ratio and KL(full‖sample) on an
//! anisotropic stratified snapshot at a 10% budget, averaged over 3 seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_bench::{fmt, mean_std, print_table, write_csv};
use sickle_cfd::datasets::synthetic_sst_snapshot;
use sickle_core::gmm::UipsGmmSampler;
use sickle_core::metrics::pdf_reports;
use sickle_core::samplers::{MaxEntSampler, PointSampler};
use sickle_core::UipsSampler;
use sickle_field::{FeatureMatrix, Tiling};

const SEEDS: [u64; 3] = [1, 2, 3];

fn features() -> FeatureMatrix {
    let snap = synthetic_sst_snapshot(32, 3.0, 7);
    let vars = vec!["u".into(), "v".into(), "w".into(), "pv".into()];
    let tiling = Tiling::new(snap.grid, (32, 32, 32));
    tiling.extract(&snap, 0, &vars).0
}

/// Scores a sampler: (mean tail-coverage ratio of the cluster variable,
/// mean KL) across seeds.
fn score(sampler: &dyn PointSampler, f: &FeatureMatrix, budget: usize) -> (f64, f64) {
    let mut tails = Vec::new();
    let mut kls = Vec::new();
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let picked = sampler.select(f, 3, budget, &mut rng);
        let reports = pdf_reports(f, &picked, 100);
        tails.push(reports[3].tail_coverage_ratio);
        kls.push(reports.iter().map(|r| r.kl_full_vs_sample).sum::<f64>() / reports.len() as f64);
    }
    (mean_std(&tails).0, mean_std(&kls).0)
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "ablation",
        "== Ablations (quality): MaxEnt/UIPS knobs on anisotropic SST =="
    );
    let f = features();
    let budget = f.len() / 10;
    let header = vec!["knob", "value", "tail_coverage", "mean_KL"];
    let mut rows = Vec::new();
    let mut push = |knob: &str, value: String, s: (f64, f64)| {
        println!("  {knob:<22} {value:<8} tail x{:.2}  KL {:.4}", s.0, s.1);
        rows.push(vec![knob.to_string(), value, fmt(s.0), fmt(s.1)]);
    };

    for bins in [25usize, 50, 100, 200] {
        let s = score(
            &MaxEntSampler {
                num_clusters: 20,
                bins,
                ..Default::default()
            },
            &f,
            budget,
        );
        push("maxent_bins", bins.to_string(), s);
    }
    for k in [5usize, 10, 20, 40] {
        let s = score(
            &MaxEntSampler {
                num_clusters: k,
                bins: 100,
                ..Default::default()
            },
            &f,
            budget,
        );
        push("maxent_clusters", k.to_string(), s);
    }
    for t in [0.0f64, 0.5, 1.0, 2.0] {
        let s = score(
            &MaxEntSampler {
                num_clusters: 20,
                bins: 100,
                temperature: t,
                ..Default::default()
            },
            &f,
            budget,
        );
        push("maxent_temperature", format!("{t}"), s);
    }
    for edge in [8usize, 16, 32] {
        // Cube-size ablation: extract one cube of this edge and sample 10%.
        let snap = synthetic_sst_snapshot(32, 3.0, 7);
        let vars = vec!["u".into(), "v".into(), "w".into(), "pv".into()];
        let tiling = Tiling::cubic(snap.grid, edge);
        let (cf, _) = tiling.extract(&snap, 0, &vars);
        let s = score(
            &MaxEntSampler {
                num_clusters: 20,
                bins: 100,
                ..Default::default()
            },
            &cf,
            cf.len() / 10,
        );
        push("cube_edge", edge.to_string(), s);
    }
    // UIPS density estimators.
    let s = score(
        &UipsSampler {
            bins_per_dim: 10,
            refine_iterations: 1,
        },
        &f,
        budget,
    );
    push("uips_estimator", "binned".to_string(), s);
    let s = score(
        &UipsGmmSampler {
            components: 8,
            em_iters: 8,
        },
        &f,
        budget,
    );
    push("uips_estimator", "gmm".to_string(), s);

    println!();
    print_table(&header, &rows);
    write_csv("ablation_quality.csv", &header, &rows);
    sickle_obs::info!(
        "ablation",
        "Reading: tail_coverage ≈ 1 matches the true PDF; MaxEnt's working"
    );
    sickle_obs::info!(
        "ablation",
        "point should over-cover (>1). τ interpolates uniform (0) to fully"
    );
    sickle_obs::info!(
        "ablation",
        "strength-weighted (1+); bin/cluster counts are plateaus around the"
    );
    sickle_obs::info!("ablation", "paper's choices (100 bins, 20 clusters).");
}
