//! `bench_diff` — compares a freshly measured `BENCH_*.json` report
//! against the committed baseline and fails on regressions:
//!
//! ```sh
//! bench_diff BENCH_obs_overhead.json fresh_obs_overhead.json
//! bench_diff --max-regression-pct 30 BENCH_store_throughput.json fresh.json
//! ```
//!
//! Only **dimensionless ratio metrics** are compared (cache warm/cold
//! speedup, instrumentation overhead percentages): the committed baseline
//! and the fresh run usually come from different machines, so absolute
//! ns/s numbers would flag hardware, not code. Each metric also carries an
//! absolute noise floor — a "regression" from 0.001% to 0.002% overhead is
//! measurement jitter, not a finding — and a fresh value below the floor
//! never fails.
//!
//! Prints a delta table; exits 1 when any metric regresses by more than
//! the threshold (default 20%), 2 on usage or schema errors.

use std::process::ExitCode;

use serde::Value;

/// Which way "better" points for a metric.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Higher,
    Lower,
}

/// One comparable metric: where it lives and when a delta matters.
struct Metric {
    /// Dotted path into the report (`workloads.<name>.` paths are built
    /// dynamically for per-workload suites).
    path: String,
    direction: Direction,
    /// Absolute level separating signal from noise. A delta only counts
    /// as a regression when the fresh value lands on the wrong side of
    /// it: above the floor for `Lower` metrics (a jump from 0.001% to
    /// 0.002% overhead is jitter), below it for `Higher` metrics (a
    /// 2300× cache speedup sliding to 1800× on different hardware is
    /// fine; collapsing under the floor means the cache stopped working).
    floor: f64,
}

fn lookup<'v>(root: &'v Value, path: &str) -> Option<&'v Value> {
    let mut cur = root;
    for part in path.split('.') {
        let Value::Object(fields) = cur else {
            return None;
        };
        cur = fields.iter().find(|(k, _)| k == part).map(|(_, v)| v)?;
    }
    Some(cur)
}

fn lookup_num(root: &Value, path: &str) -> Option<f64> {
    match lookup(root, path)? {
        Value::Num(x) => Some(*x),
        _ => None,
    }
}

fn lookup_str<'v>(root: &'v Value, path: &str) -> Option<&'v str> {
    match lookup(root, path)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// The ratio metrics for one suite. Per-workload suites expand to one
/// entry per `workloads[i].name` present in the *baseline* (a workload
/// added since the baseline has nothing to compare against; a workload
/// removed is reported as missing).
fn metrics_for(suite: &str, baseline: &Value) -> Result<Vec<Metric>, String> {
    match suite {
        "store_throughput" => Ok(vec![Metric {
            path: "warm_over_cold".into(),
            direction: Direction::Higher,
            // 20× the perf_store_throughput budget (>= 5×): hardware
            // moves this ratio, a broken cache collapses it.
            floor: 100.0,
        }]),
        "serve_scale" => Ok(vec![Metric {
            path: "scale_3_over_1".into(),
            direction: Direction::Higher,
            // Just under the loadgen budget (>= 1.6): three servers must
            // beat one regardless of how fast the box is; a collapse to
            // ~1× means the fan-out or the scheduler serialized.
            floor: 1.5,
        }]),
        "serve_path" => Ok(vec![
            Metric {
                path: "cold_ratio".into(),
                direction: Direction::Higher,
                // Just under the perf_serve_path budget (>= 1.5): the
                // zero-copy plane must beat the fs::read plane on any
                // hardware; collapsing toward 1× means serving went back
                // to copying or re-hashing per request.
                floor: 1.4,
            },
            Metric {
                path: "warm_ratio".into(),
                direction: Direction::Higher,
                // Warm serving is pure cache + iovec; if it no longer
                // clearly beats the legacy plane, residency or the
                // vectored write path broke.
                floor: 2.0,
            },
            Metric {
                path: "copies_per_identity_byte".into(),
                direction: Direction::Lower,
                // Byte arithmetic, not timing: >1 copy per served
                // identity byte means a copy crept back into the path.
                floor: 1.0,
            },
        ]),
        "obs_overhead" => {
            let Some(Value::Array(workloads)) = lookup(baseline, "workloads") else {
                return Err("obs_overhead baseline has no workloads array".into());
            };
            let mut out = Vec::new();
            for w in workloads {
                let Some(name) = lookup_str(w, "name") else {
                    return Err("obs_overhead workload entry has no name".into());
                };
                out.push(Metric {
                    path: format!("workloads.{name}.enabled_overhead_pct"),
                    direction: Direction::Lower,
                    floor: 2.0,
                });
                out.push(Metric {
                    path: format!("workloads.{name}.disabled_overhead_pct"),
                    direction: Direction::Lower,
                    floor: 0.5,
                });
            }
            Ok(out)
        }
        "compression" => {
            let Some(Value::Array(workloads)) = lookup(baseline, "workloads") else {
                return Err("compression baseline has no workloads array".into());
            };
            let mut out = Vec::new();
            for w in workloads {
                let Some(name) = lookup_str(w, "name") else {
                    return Err("compression workload entry has no name".into());
                };
                out.push(Metric {
                    path: format!("workloads.{name}.bytes_ratio"),
                    direction: Direction::Higher,
                    // The perf_compression acceptance floors: identity is
                    // ~1× by construction, narrow-float codecs must stay
                    // clearly past 2×, u8 past 3×, resim past 6×. Ratios
                    // are byte arithmetic, not timing — hardware cannot
                    // move them, only a codec or header regression can.
                    floor: match name {
                        "identity" => 0.9,
                        "u8" => 3.0,
                        "resim" => 6.0,
                        _ => 2.5,
                    },
                });
                out.push(Metric {
                    path: format!("workloads.{name}.pdf_kl"),
                    direction: Direction::Lower,
                    // Phase-space fidelity must not quietly erode; floors
                    // sit at each codec's budget in perf_compression.
                    floor: match name {
                        "identity" => 1e-9,
                        "resim" => 0.10,
                        "bf16" => 5e-2,
                        _ => 2e-2,
                    },
                });
            }
            Ok(out)
        }
        other => Err(format!(
            "no comparison table for suite `{other}` \
             (known: store_throughput, serve_scale, serve_path, obs_overhead, compression)"
        )),
    }
}

/// Resolves a `workloads.<name>.<field>` path against the array-shaped
/// report, or a plain dotted path against the object tree.
fn metric_value(report: &Value, path: &str) -> Option<f64> {
    if let Some(rest) = path.strip_prefix("workloads.") {
        let (name, field) = rest.rsplit_once('.')?;
        let Some(Value::Array(workloads)) = lookup(report, "workloads") else {
            return None;
        };
        let w = workloads
            .iter()
            .find(|w| lookup_str(w, "name") == Some(name))?;
        return lookup_num(w, field);
    }
    lookup_num(report, path)
}

struct Args {
    baseline: String,
    fresh: String,
    max_regression_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut max_regression_pct = 20.0;
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression-pct" => {
                max_regression_pct = it
                    .next()
                    .ok_or("--max-regression-pct requires a value")?
                    .parse()
                    .map_err(|e| format!("--max-regression-pct: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_diff [--max-regression-pct P] <baseline.json> <fresh.json>"
                        .to_string(),
                )
            }
            _ => positional.push(arg),
        }
    }
    let [baseline, fresh] = positional
        .try_into()
        .map_err(|p: Vec<String>| format!("expected exactly 2 report paths, got {}", p.len()))?;
    Ok(Args {
        baseline,
        fresh,
        max_regression_pct,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::value_from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn run(args: &Args) -> Result<bool, String> {
    let baseline = load(&args.baseline)?;
    let fresh = load(&args.fresh)?;
    let suite = lookup_str(&baseline, "suite")
        .ok_or_else(|| format!("{}: no `suite` field", args.baseline))?;
    match lookup_str(&fresh, "suite") {
        Some(s) if s == suite => {}
        other => {
            return Err(format!(
                "suite mismatch: baseline is `{suite}`, fresh is `{}`",
                other.unwrap_or("<missing>")
            ))
        }
    }

    println!(
        "suite: {suite}  (max regression: {:.0}%)",
        args.max_regression_pct
    );
    println!(
        "{:<52} {:>12} {:>12} {:>9}  status",
        "metric", "baseline", "fresh", "delta"
    );
    let mut ok = true;
    for m in metrics_for(suite, &baseline)? {
        let base = metric_value(&baseline, &m.path);
        let new = metric_value(&fresh, &m.path);
        let (Some(base), Some(new)) = (base, new) else {
            println!(
                "{:<52} {:>12} {:>12}         -  MISSING",
                m.path,
                base.map_or("-".into(), |v| format!("{v:.4}")),
                new.map_or("-".into(), |v| format!("{v:.4}")),
            );
            ok = false;
            continue;
        };
        // Signed change in the "worse" direction, relative to the larger
        // of baseline and floor so near-zero baselines don't explode.
        let scale = base.abs().max(m.floor).max(1e-12);
        let regression_pct = match m.direction {
            Direction::Higher => 100.0 * (base - new) / scale,
            Direction::Lower => 100.0 * (new - base) / scale,
        };
        let past_floor = match m.direction {
            Direction::Lower => new > m.floor,
            Direction::Higher => new < m.floor,
        };
        let regressed = regression_pct > args.max_regression_pct && past_floor;
        let status = if regressed {
            ok = false;
            "REGRESSED"
        } else if regression_pct > 0.0 {
            "ok (worse)"
        } else {
            "ok"
        };
        println!(
            "{:<52} {:>12.4} {:>12.4} {:>+8.1}%  {status}",
            m.path, base, new, regression_pct
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench_diff: {} regressed vs {} (threshold {:.0}%)",
                args.fresh, args.baseline, args.max_regression_pct
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}
