//! Validates **Equation 3**, the paper's training-cost model:
//! `Cost ≈ O(c(m)) + O(m · p · e)`.
//!
//! Sweeps the number of training samples `m`, model parameters `p`, and
//! epochs `e`; for each point it *measures* the modeled training energy
//! (from actual counted FLOPs) and compares against the closed-form
//! prediction, reporting the calibrated FLOPs-per-sample-parameter constant
//! and the relative error of linear scaling in each factor.

use sickle_bench::{fmt, print_table, write_csv};
use sickle_energy::{cost_to_train, MachineModel};
use sickle_train::data::TensorData;
use sickle_train::models::{LstmModel, Model};
use sickle_train::trainer::{train, TrainConfig};

fn synthetic(n: usize, features: usize) -> TensorData {
    let tokens = 3;
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for i in 0..n {
        let mut s = 0.0f32;
        for t in 0..tokens {
            for f in 0..features {
                let v = (((i * 7 + t * 3 + f * 5) % 17) as f32) * 0.1 - 0.8;
                inputs.push(v);
                s += v;
            }
        }
        targets.push(s / (tokens * features) as f32);
    }
    TensorData::new(inputs, targets, tokens, features, 1)
}

fn measure(m: usize, hidden: usize, epochs: usize) -> (f64, usize) {
    let data = synthetic(m, 4);
    let mut model = LstmModel::new(4, hidden, 1, 0);
    let params = model.num_params();
    let cfg = TrainConfig {
        epochs,
        batch: 8,
        test_frac: 0.1,
        ..Default::default()
    };
    let res = train(&mut model, &data, &cfg, MachineModel::frontier_gcd());
    (res.energy.total_joules(), params)
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "eq3",
        "== Eq. 3: cost-model validation — Cost ~ c(m) + m*p*e =="
    );
    let machine = MachineModel::frontier_gcd();

    // Calibrate k = flops/(sample*param*epoch) at a base point.
    let (e_base, p_base) = measure(64, 16, 10);
    let base_pred_raw = cost_to_train(0.0, 64, p_base, 10, 1.0, &machine);
    let k = e_base / base_pred_raw;
    sickle_obs::info!(
        "eq3",
        "calibrated flops-per-sample-param constant k = {k:.2}"
    );

    let header = vec!["sweep", "value", "measured_J", "predicted_J", "rel_err"];
    let mut rows = Vec::new();
    let mut check = |sweep: &str, value: String, m: usize, hidden: usize, e: usize| {
        let (measured, params) = measure(m, hidden, e);
        let predicted = cost_to_train(0.0, m, params, e, k, &machine);
        let rel = (measured - predicted).abs() / measured;
        rows.push(vec![
            sweep.to_string(),
            value,
            fmt(measured),
            fmt(predicted),
            fmt(rel),
        ]);
        rel
    };

    let mut max_rel = 0.0f64;
    for m in [32usize, 64, 128, 256] {
        max_rel = max_rel.max(check("samples m", m.to_string(), m, 16, 10));
    }
    for h in [8usize, 16, 32] {
        max_rel = max_rel.max(check("hidden (p)", h.to_string(), 64, h, 10));
    }
    for e in [5usize, 10, 20, 40] {
        max_rel = max_rel.max(check("epochs e", e.to_string(), 64, 16, e));
    }
    print_table(&header, &rows);
    write_csv("eq3_cost_model.csv", &header, &rows);
    println!("\nmax relative error across sweeps: {}", fmt(max_rel));
    sickle_obs::info!(
        "eq3",
        "Eq. 3 holds when rel_err stays small as each factor scales; the"
    );
    sickle_obs::info!(
        "eq3",
        "parameter sweep deviates most (LSTM cost is not exactly linear in p"
    );
    sickle_obs::info!(
        "eq3",
        "because recurrent matmuls scale with hidden^2 — the O(.) in Eq. 3)."
    );
}
