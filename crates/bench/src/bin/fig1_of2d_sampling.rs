//! Regenerates **Figures 1 & 3**: sampling-method visualisation on the
//! OF2D cylinder wake at a 10% budget.
//!
//! The paper shows scatter plots; headless, we report the quantitative
//! content — what fraction of each method's samples land in the wake
//! (high-|vorticity| region) versus the quiescent free stream — and dump
//! per-method sample coordinates to CSV for external plotting. MaxEnt
//! should capture the wake best (paper: "MaxEnt should best capture wake
//! structures").

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_bench::{fmt, print_table, workloads, write_csv};
use sickle_core::samplers::{FullSampler, MaxEntSampler, PointSampler, RandomSampler};
use sickle_core::UipsSampler;
use sickle_field::Tiling;

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig1",
        "== Fig. 1/3: OF2D sampling comparison (10% budget) =="
    );
    let data = workloads::of2d_small();
    // Use the paper's snapshot 97-style late snapshot (fully developed wake).
    let snap = &data.dataset.snapshots[data.dataset.num_snapshots() - 3];
    let grid = snap.grid;
    // Whole-domain extraction: one "tile" covering everything (Fig. 1 uses
    // full-field sampling, not hypercubes).
    let vars = vec!["u".to_string(), "v".to_string(), "wz".to_string()];
    let tiling = Tiling::new(grid, (grid.nx, grid.ny, 1));
    let (features, indices) = tiling.extract(snap, 0, &vars);
    let budget = features.len() / 10;

    // Wake mask: |wz| above the 80th percentile of |wz|.
    let wz = features.column(2);
    let mut abs: Vec<f64> = wz.iter().map(|v| v.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let thresh = abs[(abs.len() as f64 * 0.8) as usize];
    let wake_frac_of = |picked: &[usize]| -> f64 {
        picked.iter().filter(|&&i| wz[i].abs() >= thresh).count() as f64 / picked.len() as f64
    };

    let methods: Vec<(&str, Box<dyn PointSampler>)> = vec![
        ("full", Box::new(FullSampler)),
        ("random", Box::new(RandomSampler)),
        ("uips", Box::new(UipsSampler::default())),
        (
            "maxent",
            Box::new(MaxEntSampler {
                num_clusters: 10,
                bins: 100,
                ..Default::default()
            }),
        ),
    ];

    let header = vec!["method", "samples", "wake_fraction", "wake_enrichment"];
    let mut rows = Vec::new();
    let mut scatter_rows: Vec<Vec<String>> = Vec::new();
    let base_frac = wake_frac_of(&(0..features.len()).collect::<Vec<_>>());
    for (name, sampler) in methods {
        let mut rng = StdRng::seed_from_u64(97);
        let picked = sampler.select(&features, 2, budget, &mut rng);
        let wf = wake_frac_of(&picked);
        rows.push(vec![
            name.to_string(),
            picked.len().to_string(),
            fmt(wf),
            fmt(wf / base_frac),
        ]);
        // Dump (x, y) sample coordinates for plotting, capped per method.
        for &p in picked.iter().take(2000) {
            let (x, y, _) = grid.coords(indices[p]);
            scatter_rows.push(vec![name.to_string(), x.to_string(), y.to_string()]);
        }
    }
    print_table(&header, &rows);
    write_csv("fig1_wake_coverage.csv", &header, &rows);
    write_csv(
        "fig1_sample_scatter.csv",
        &["method", "x", "y"],
        &scatter_rows,
    );
    sickle_obs::info!(
        "fig1",
        "Expected shape (paper): maxent has the highest wake enrichment;"
    );
    sickle_obs::info!("fig1", "random ~1.0 (unbiased); full = 1.0 by definition.");
}
