//! Regenerates **Figure 4**: UIPS gives good uniform phase-space coverage
//! on the low-dimensional TC2D manifold (left panel) but clumps on the
//! anisotropic 3D SST-P1F4 flow (right panel).
//!
//! Quantified as (a) phase-space occupancy CoV (uniformity of accepted
//! samples across occupied feature bins — low is good/uniform) and (b)
//! spatial clumping CoV (how unevenly samples land in physical space).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_bench::{fmt, print_table, workloads, write_csv};
use sickle_core::metrics::spatial_cov;
use sickle_core::samplers::{PointSampler, RandomSampler};
use sickle_core::uips::phase_space_cov;
use sickle_core::UipsSampler;
use sickle_field::{Dataset, Tiling};

fn run_case(label: &str, dataset: &Dataset, feature_vars: &[&str]) -> Vec<Vec<String>> {
    let snap = dataset.snapshots.last().expect("dataset has snapshots");
    let grid = snap.grid;
    let vars: Vec<String> = feature_vars.iter().map(|s| s.to_string()).collect();
    let tiling = Tiling::new(grid, (grid.nx, grid.ny, grid.nz));
    let (features, _indices) = tiling.extract(snap, 0, &vars);
    let budget = features.len() / 10;
    let mut rows = Vec::new();
    for (name, sampler) in [
        (
            "uips",
            Box::new(UipsSampler::default()) as Box<dyn PointSampler>,
        ),
        ("random", Box::new(RandomSampler)),
    ] {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = sampler.select(&features, 0, budget, &mut rng);
        rows.push(vec![
            label.to_string(),
            name.to_string(),
            feature_vars.len().to_string(),
            fmt(phase_space_cov(&features, &picked, 10)),
            fmt(spatial_cov(&picked, features.len(), 64)),
        ]);
    }
    rows
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig4",
        "== Fig. 4: UIPS coverage — TC2D (left) vs SST-P1F4 (right) =="
    );
    let tc2d = workloads::tc2d_small(1);
    let sst = workloads::sst_p1f4_small();
    let mut rows = run_case("TC2D", &tc2d, &["C", "Cvar"]);
    rows.extend(run_case("SST-P1F4", &sst, &["u", "v", "w", "r"]));
    let header = vec!["dataset", "method", "features", "phase_cov", "spatial_cov"];
    print_table(&header, &rows);
    write_csv("fig4_uips_clumping.csv", &header, &rows);
    sickle_obs::info!(
        "fig4",
        "Expected shape (paper): on TC2D, UIPS phase_cov is low (uniform"
    );
    sickle_obs::info!(
        "fig4",
        "coverage); on SST-P1F4 UIPS spatial_cov rises well above random —"
    );
    sickle_obs::info!(
        "fig4",
        "phase-space-uniform points concentrate in rare physical regions."
    );
}
