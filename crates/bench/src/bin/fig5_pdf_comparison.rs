//! Regenerates **Figure 5**: PDFs of the subsampling methods at a 10%
//! budget on OF2D, SST-P1F4, and GESTS, binned with the paper's fixed 100
//! bins.
//!
//! Reported per (dataset, method, feature): `KL(full ‖ sample)` and the
//! tail-coverage ratio. The paper's claim: "MaxEnt outperforms other
//! methods in tail representation."

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_bench::{fmt, mean_std, print_table, workloads, write_csv};
use sickle_core::metrics::{pdf_reports, wasserstein_reports};
use sickle_core::samplers::{MaxEntSampler, PointSampler, RandomSampler, StratifiedSampler};
use sickle_core::UipsSampler;
use sickle_field::{Dataset, Tiling};

const BINS: usize = 100;

fn methods() -> Vec<(&'static str, Box<dyn PointSampler>)> {
    vec![
        ("random", Box::new(RandomSampler)),
        ("stratified", Box::new(StratifiedSampler::default())),
        ("uips", Box::new(UipsSampler::default())),
        (
            "maxent",
            Box::new(MaxEntSampler {
                num_clusters: 20,
                bins: BINS,
                ..Default::default()
            }),
        ),
    ]
}

fn run_case(
    label: &str,
    dataset: &Dataset,
    feature_vars: &[&str],
    cluster_var: &str,
) -> Vec<Vec<String>> {
    let snap = dataset.snapshots.last().expect("dataset has snapshots");
    let grid = snap.grid;
    let mut vars: Vec<String> = feature_vars.iter().map(|s| s.to_string()).collect();
    if !vars.iter().any(|v| v == cluster_var) {
        vars.push(cluster_var.to_string());
    }
    let cluster_col = vars.iter().position(|v| v == cluster_var).unwrap();
    let tiling = Tiling::new(grid, (grid.nx, grid.ny, grid.nz));
    let (features, _) = tiling.extract(snap, 0, &vars);
    let budget = features.len() / 10;
    let mut rows = Vec::new();
    for (name, sampler) in methods() {
        let mut rng = StdRng::seed_from_u64(5);
        let picked = sampler.select(&features, cluster_col, budget, &mut rng);
        let reports = pdf_reports(&features, &picked, BINS);
        let kls: Vec<f64> = reports.iter().map(|r| r.kl_full_vs_sample).collect();
        let tails: Vec<f64> = reports.iter().map(|r| r.tail_coverage_ratio).collect();
        let w1s = wasserstein_reports(&features, &picked, BINS);
        let (kl_mean, _) = mean_std(&kls);
        let (tail_mean, _) = mean_std(&tails);
        let (w1_mean, _) = mean_std(&w1s);
        rows.push(vec![
            label.to_string(),
            name.to_string(),
            fmt(kl_mean),
            fmt(tail_mean),
            fmt(w1_mean),
        ]);
    }
    rows
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig5",
        "== Fig. 5: PDF fidelity of subsampling methods (10%, {BINS} bins) =="
    );
    let of2d = workloads::of2d_small();
    let sst = workloads::sst_p1f4_small();
    let gests = workloads::gests_small();
    let mut rows = run_case("OF2D", &of2d.dataset, &["u", "v"], "wz");
    rows.extend(run_case("SST-P1F4", &sst, &["u", "v", "w", "r"], "pv"));
    rows.extend(run_case("GESTS", &gests, &["u", "v", "w", "eps"], "omega"));
    let header = vec![
        "dataset",
        "method",
        "mean_KL(full||sample)",
        "tail_coverage_ratio",
        "mean_W1(bins)",
    ];
    print_table(&header, &rows);
    write_csv("fig5_pdf_comparison.csv", &header, &rows);
    sickle_obs::info!(
        "fig5",
        "Expected shape (paper): maxent has tail_coverage_ratio > 1 (tails"
    );
    sickle_obs::info!(
        "fig5",
        "over-represented, the intended behaviour) where random/uips sit near"
    );
    sickle_obs::info!(
        "fig5",
        "or below 1; random has the lowest KL (it matches the bulk by"
    );
    sickle_obs::info!("fig5", "construction) but loses the tails.");
}
