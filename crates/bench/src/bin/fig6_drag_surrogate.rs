//! Regenerates **Figure 6**: drag-prediction surrogate accuracy on OF2D,
//! MaxEnt vs random sampling, three sample budgets × five seeds.
//!
//! The sampler chooses *probe locations* once (from a developed-wake
//! snapshot); the time series of `u, v` at those fixed probes then feeds a
//! 3-step LSTM window predicting the drag coefficient — the paper's
//! sample-single task, in the sparse-sensor framing its §5.1 cites
//! (Manohar et al.'s data-driven sensor placement). MaxEnt places probes in
//! the information-rich wake; random mostly samples the featureless free
//! stream. Expected result (paper): "MaxEnt should yield lower training
//! losses and standard deviations than random sampling".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sickle_bench::{fmt, mean_std, print_table, workloads, write_csv};
use sickle_core::samplers::{MaxEntSampler, PointSampler, RandomSampler};
use sickle_energy::MachineModel;
use sickle_field::{FeatureMatrix, SampleSet, Tiling};
use sickle_train::data::drag_windows;
use sickle_train::models::LstmModel;
use sickle_train::trainer::{train, TrainConfig};

const WINDOW: usize = 3;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
const BUDGETS: [usize; 3] = [540, 1080, 2160];

/// Selects `budget` probe grid indices and returns per-snapshot sample sets
/// of `u, v` at those *fixed* locations.
///
/// The cluster variable is the *temporal standard deviation* of vorticity
/// at each point — the stable signature of the shedding region — rather
/// than one snapshot's instantaneous `wz` (whose extrema wander with the
/// wake's phase).
fn probe_time_series(
    data: &sickle_cfd::datasets::Of2dData,
    sampler: &dyn PointSampler,
    budget: usize,
    seed: u64,
) -> Vec<SampleSet> {
    let reference = &data.dataset.snapshots[data.dataset.num_snapshots() / 2];
    let n = reference.num_points();
    // Per-point temporal std of wz across all snapshots.
    let mut mean = vec![0.0f64; n];
    let mut m2 = vec![0.0f64; n];
    let count = data.dataset.num_snapshots() as f64;
    for snap in &data.dataset.snapshots {
        for (i, &w) in snap.expect_var("wz").iter().enumerate() {
            mean[i] += w;
        }
    }
    mean.iter_mut().for_each(|m| *m /= count);
    for snap in &data.dataset.snapshots {
        for (i, &w) in snap.expect_var("wz").iter().enumerate() {
            m2[i] += (w - mean[i]) * (w - mean[i]);
        }
    }
    let wz_std: Vec<f64> = m2.iter().map(|v| (v / count).sqrt()).collect();

    let vars = vec!["u".to_string(), "v".to_string()];
    let tiling = Tiling::new(reference.grid, (reference.grid.nx, reference.grid.ny, 1));
    let (mut features, indices) = tiling.extract(reference, 0, &vars);
    // Append the temporal-std column as the cluster variable.
    let mut with_std = FeatureMatrix::with_capacity(
        vec!["u".into(), "v".into(), "wz_std".into()],
        features.len(),
    );
    for (row, &gi) in features.rows().zip(indices.iter()) {
        with_std.push_row(&[row[0], row[1], wz_std[gi]]);
    }
    features = with_std;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = sampler.select(&features, 2, budget, &mut rng);
    picked.shuffle(&mut rng); // decorrelate cluster-major emission order
    let probe_idx: Vec<usize> = picked.iter().map(|&p| indices[p]).collect();

    data.dataset
        .snapshots
        .iter()
        .enumerate()
        .map(|(si, snap)| {
            let u = snap.expect_var("u");
            let v = snap.expect_var("v");
            let mut rows = Vec::with_capacity(probe_idx.len() * 2);
            for &gi in &probe_idx {
                rows.push(u[gi]);
                rows.push(v[gi]);
            }
            let fm = FeatureMatrix::new(vec!["u".into(), "v".into()], rows);
            SampleSet::new(fm, probe_idx.clone(), snap.time, si)
        })
        .collect()
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig6",
        "== Fig. 6: OF2D drag surrogate — MaxEnt vs random probes, 5 seeds =="
    );
    let data = workloads::of2d_small();
    let header = vec!["method", "num_samples", "test_loss_mean", "test_loss_std"];
    let mut rows = Vec::new();
    let mut raw_rows = Vec::new();
    for &budget in &BUDGETS {
        for method in ["random", "maxent"] {
            let mut losses = Vec::new();
            for &seed in &SEEDS {
                let sampler: Box<dyn PointSampler> = match method {
                    "random" => Box::new(RandomSampler),
                    _ => Box::new(MaxEntSampler {
                        num_clusters: 10,
                        bins: 100,
                        temperature: 0.5,
                        ..Default::default()
                    }),
                };
                let sets = probe_time_series(&data, sampler.as_ref(), budget, seed);
                // The paper's ns is the LSTM's input size: use budget/10 probes
                // so larger budgets genuinely widen the observation.
                let mut tensor = drag_windows(&sets, &data.drag, WINDOW, budget / 10);
                tensor.standardize();
                // Fixed init: the seed sweep isolates *sampling* variance,
                // the quantity Fig. 6's error bars are about.
                let mut model = LstmModel::new(tensor.features, 24, 1, 0);
                let cfg = TrainConfig {
                    epochs: 300,
                    batch: 8,
                    lr: 3e-3,
                    patience: 12,
                    test_frac: 0.15,
                    seed: 0,
                    ..Default::default()
                };
                let res = train(&mut model, &tensor, &cfg, MachineModel::frontier_gcd());
                losses.push(res.best_test as f64);
                raw_rows.push(vec![
                    method.to_string(),
                    budget.to_string(),
                    seed.to_string(),
                    fmt(res.best_test as f64),
                ]);
            }
            let (mean, std) = mean_std(&losses);
            rows.push(vec![
                method.to_string(),
                budget.to_string(),
                fmt(mean),
                fmt(std),
            ]);
            println!("  {method} ns={budget}: loss {mean:.4} ± {std:.4}");
        }
    }
    println!();
    print_table(&header, &rows);
    write_csv("fig6_drag_surrogate.csv", &header, &rows);
    write_csv(
        "fig6_drag_raw.csv",
        &["method", "num_samples", "seed", "test_loss"],
        &raw_rows,
    );
    sickle_obs::info!(
        "fig6",
        "Expected shape (paper): MaxEnt is the more *reproducible* sampler —"
    );
    sickle_obs::info!(
        "fig6",
        "\"MaxEnt exhibits less variance and is therefore more reproducible"
    );
    sickle_obs::info!(
        "fig6",
        "than random sampling (see Fig. 6)\" (per its Discussion) — i.e. a"
    );
    sickle_obs::info!(
        "fig6",
        "clearly smaller std; on the mean, \"random sampling performs"
    );
    sickle_obs::info!(
        "fig6",
        "competitively in many scenarios\", so mean ordering may go either way."
    );
}
