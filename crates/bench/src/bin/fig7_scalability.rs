//! Regenerates **Figure 7**: MaxEnt sampling strong scalability for
//! SST-P1F4 and SST-P1F100, 1–512 ranks.
//!
//! Two stages, per DESIGN.md's substitution:
//! 1. **Measured**: the real threaded rank executor runs the pipeline at
//!    1..=host-core ranks on actual data.
//! 2. **Modeled**: the α–β cluster simulator, calibrated so its single-rank
//!    time matches the measured one, extends the curve to 512 ranks with
//!    the paper's problem sizes (SST-P1F4 ≈ 32 cubes; SST-P1F100 ≈ 4096
//!    cubes of 32³).
//!
//! Expected shape: SST-P1F100 quasi-linear to ~64 ranks then a knee,
//! reaching O(150–200)× at 512; SST-P1F4 plateaus near 10× by 32 ranks.

use sickle_bench::{fmt, print_table, workloads, write_csv};
use sickle_core::pipeline::{CubeMethod, PointMethod};
use sickle_hpc::executor::{run_resilient, scaling_sweep, RetryPolicy};
use sickle_hpc::fault::{FaultInjector, FaultPlan};
use sickle_hpc::simulator::{knee_point, ClusterModel};

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig7",
        "== Fig. 7: MaxEnt sampling strong scaling (measured + modeled) =="
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    sickle_obs::info!(
        "fig7",
        "host cores: {cores} (rank counts beyond this oversubscribe and"
    );
    sickle_obs::info!(
        "fig7",
        "should show flat/no speedup — itself a validity check)"
    );
    let measured_ranks: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&r| r <= (2 * cores).max(4))
        .collect();
    let all_ranks: Vec<usize> = (0..10).map(|i| 1usize << i).collect();

    // --- Measured stage on a real snapshot. ---
    let sst = workloads::sst_p1f4_small();
    let snap = sst.snapshots.last().unwrap().clone();
    let cfg = workloads::sampling_config(
        &sst,
        CubeMethod::Random,
        PointMethod::MaxEnt {
            num_clusters: 20,
            bins: 100,
        },
        8,
        64,
        7,
    );
    sickle_obs::info!(
        "fig7",
        "measured executor sweep ({} cubes, up to {cores} cores):",
        cfg.num_hypercubes
    );
    let sweep = scaling_sweep(&snap, &cfg, &measured_ranks);
    let t1 = sweep[0].elapsed_secs;
    let mut meas_rows = Vec::new();
    for t in &sweep {
        meas_rows.push(vec![
            t.ranks.to_string(),
            fmt(t.elapsed_secs),
            fmt(t1 / t.elapsed_secs),
            fmt(t1 / t.elapsed_secs / t.ranks as f64),
            fmt(t.imbalance()),
        ]);
    }
    let meas_header = ["ranks", "secs", "speedup", "efficiency", "imbalance"];
    print_table(&meas_header, &meas_rows);
    write_csv("fig7_measured.csv", &meas_header, &meas_rows);

    // --- Optional chaos stage: rerun under SICKLE_FAULT_PLAN. ---
    // `SICKLE_FAULT_PLAN="kill@2:1,delay@0:3:50" fig7_scalability` replays
    // the measured sweep's largest rank count with faults injected, reports
    // the recovery overhead, and verifies the determinism contract (the
    // faulted output must match the fault-free one bit for bit).
    match FaultPlan::from_env() {
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: bad SICKLE_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
        Ok(Some(plan)) => {
            let ranks = *measured_ranks.last().unwrap();
            sickle_obs::info!(
                "fig7",
                "chaos stage: {} fault(s) on {ranks} ranks",
                plan.faults.len()
            );
            let policy = RetryPolicy::default();
            let clean = run_resilient(&snap, 0, &cfg, ranks, &FaultInjector::none(), &policy)
                .expect("fault-free run");
            match run_resilient(&snap, 0, &cfg, ranks, &FaultInjector::new(plan), &policy) {
                Err(e) => {
                    eprintln!("error: chaos run did not recover: {e}");
                    std::process::exit(1);
                }
                Ok(chaos) => {
                    let identical = clean.sets.len() == chaos.sets.len()
                        && clean.sets.iter().zip(&chaos.sets).all(|(a, b)| {
                            a.indices == b.indices && a.features.data == b.features.data
                        });
                    let overhead_pct = (chaos.timing.elapsed_secs - clean.timing.elapsed_secs)
                        / clean.timing.elapsed_secs
                        * 100.0;
                    let chaos_header = [
                        "ranks",
                        "faults_injected",
                        "failed_ranks",
                        "retry_rounds",
                        "overhead_pct",
                        "bit_identical",
                    ];
                    let chaos_rows = vec![vec![
                        ranks.to_string(),
                        chaos.timing.faults_injected.to_string(),
                        format!("{:?}", chaos.timing.failed_ranks),
                        chaos.timing.retry_rounds.to_string(),
                        fmt(overhead_pct),
                        identical.to_string(),
                    ]];
                    print_table(&chaos_header, &chaos_rows);
                    write_csv("fig7_chaos.csv", &chaos_header, &chaos_rows);
                    if !identical {
                        eprintln!("error: chaos output differs from the fault-free run");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    // --- Modeled stage, calibrated to the measured single-rank time. ---
    // Paper-scale problems. SST-P1F4 has only 12 hypercubes of work (the
    // paper's `num_hypercubes 12`), so its parallelism quantizes early;
    // SST-P1F100's work is the full raw-data scan, modeled as 4096
    // fine-grained chunks with a serial phase-1/I-O fraction.
    let cases = [
        // (label, work units, points/unit, samples/unit, serial fraction)
        ("SST-P1F4", 12usize, 32_768usize, 3_277usize, 0.02f64),
        ("SST-P1F100", 4096, 32_768, 16_384, 0.004),
    ];
    // Per-point cost calibrated from the measured run (which used 8^3 cubes).
    let per_point_secs = t1 / (cfg.num_hypercubes * cfg.cube_edge.pow(3)) as f64;
    let mut rows = Vec::new();
    for (label, cubes, pts, samples, serial_frac) in cases {
        let mut model = ClusterModel::frontier();
        model.per_point_cost = per_point_secs;
        model.serial_secs = serial_frac * (cubes * pts) as f64 * per_point_secs;
        let points = model.strong_scaling(cubes, pts, samples, &all_ranks);
        let knee = knee_point(&points, 0.7);
        println!("\n{label}: knee at {knee} ranks (efficiency >= 0.7)");
        for p in &points {
            rows.push(vec![
                label.to_string(),
                p.ranks.to_string(),
                fmt(p.secs),
                fmt(p.speedup),
                fmt(p.efficiency),
            ]);
        }
        let best = points.iter().map(|p| p.speedup).fold(0.0, f64::max);
        println!("{label}: max speedup {best:.1}x at 512 ranks");
    }
    print_table(
        &["dataset", "ranks", "secs", "speedup", "efficiency"],
        &rows,
    );
    write_csv(
        "fig7_modeled.csv",
        &["dataset", "ranks", "secs", "speedup", "efficiency"],
        &rows,
    );
    sickle_obs::info!(
        "fig7",
        "Expected shape (paper): SST-P1F100 ~171x at 512 with knee ~64;"
    );
    sickle_obs::info!("fig7", "SST-P1F4 plateaus ~9-10x around 32 ranks.");
}
