//! Regenerates **Figure 8**: training loss vs total (sampling + training)
//! energy for five sampling configurations on SST-P1F4, SST-P1F100, and
//! GESTS — the paper's headline efficiency result (lower-left is optimal;
//! MaxEnt ≈ 38× less energy than full on SST-P1F4).
//!
//! Pipeline per case, mirroring the paper's Slurm script:
//! `subsample` (phase 1 + 2) → `train` (MLP-Transformer for sampled data,
//! CNN-Transformer for dense `Xfull` cubes) → sum CPU sampling energy and
//! accelerator training energy.
//!
//! Energy mechanics (paper Eq. 3): the dense baseline embeds 512 patch
//! tokens per cube where the 10% samplers feed 64 point tokens, so the
//! quadratic-attention training cost — the term the paper's 32³ cap fights
//! — dominates the gap.

use sickle_bench::{fmt, print_table, sampling_energy, workloads, write_csv};
use sickle_core::pipeline::{run_dataset, PointMethod};
use sickle_energy::MachineModel;
use sickle_field::{Dataset, SampleSet};
use sickle_train::data::{dense_cube_data, reconstruction_data};
use sickle_train::models::TokenTransformer;
use sickle_train::trainer::{train, TrainConfig};

const CUBE_EDGE: usize = 16;
const NUM_CUBES: usize = 8;
const SAMPLED_TOKENS: usize = 64;
const FULL_PATCH: usize = 2;
const EPOCHS: usize = 25;

fn run_case(
    dataset: &Dataset,
    case: &str,
    h: sickle_core::pipeline::CubeMethod,
    x: PointMethod,
    seed: u64,
) -> (f64, f64, f64) {
    let cfg = workloads::sampling_config(dataset, h, x, CUBE_EDGE, NUM_CUBES, seed);
    let out = run_dataset(dataset, &cfg);
    let e_sample = sampling_energy(&out.stats, &cfg);
    let sets: Vec<SampleSet> = out.sets.iter().flatten().cloned().collect();
    let target = dataset.meta.output_vars[0].clone();

    let (mut tensor, mut model) = if matches!(x, PointMethod::Full) {
        let t = dense_cube_data(
            &sets,
            &dataset.snapshots,
            CUBE_EDGE,
            &dataset.meta.input_vars,
            &target,
            FULL_PATCH,
        );
        let m = TokenTransformer::cnn_transformer(
            t.tokens,
            t.features,
            32,
            1,
            t.tokens * (t.outputs / t.tokens),
            seed,
        );
        (t, m)
    } else {
        let t = reconstruction_data(
            &sets,
            &dataset.snapshots,
            CUBE_EDGE,
            &target,
            SAMPLED_TOKENS,
        );
        let m = TokenTransformer::mlp_transformer(t.tokens, t.features, 32, 1, t.outputs, seed);
        (t, m)
    };
    tensor.standardize();
    let tcfg = TrainConfig {
        epochs: EPOCHS,
        batch: 4,
        lr: 1e-3,
        patience: 20,
        test_frac: 0.15,
        seed,
        ..Default::default()
    };
    let res = train(&mut model, &tensor, &tcfg, MachineModel::frontier_gcd());
    let total_kj = (e_sample.total_joules() + res.energy.total_joules()) / 1e3;
    println!(
        "    {case:<18} loss {:.4}  sampling {:.3} kJ + training {:.3} kJ = {:.3} kJ",
        res.best_test,
        e_sample.total_kilojoules(),
        res.energy.total_kilojoules(),
        total_kj
    );
    (res.best_test as f64, e_sample.total_kilojoules(), total_kj)
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig8",
        "== Fig. 8: training loss vs energy (lower-left optimal) =="
    );
    let datasets: Vec<(&str, Dataset)> = vec![
        ("SST-P1F4", workloads::sst_p1f4_medium()),
        ("SST-P1F100", workloads::sst_p1f100_medium()),
        ("GESTS", workloads::gests_medium()),
    ];
    let header = vec!["dataset", "case", "test_loss", "sampling_kJ", "total_kJ"];
    let mut rows = Vec::new();
    for (label, dataset) in &datasets {
        println!("  {label}:");
        let mut full_kj = 0.0;
        let mut maxent_kj = 0.0;
        for (case, h, x) in workloads::fig8_cases() {
            let (loss, skj, tkj) = run_case(dataset, case, h, x, 8);
            sickle_bench::require_finite(
                &format!("fig8 {label} {case}"),
                &[("test_loss", loss), ("sampling_kJ", skj), ("total_kJ", tkj)],
            );
            if case == "Hrandom-Xfull" {
                full_kj = tkj;
            }
            if case == "Hmaxent-Xmaxent" {
                maxent_kj = tkj;
            }
            rows.push(vec![
                label.to_string(),
                case.to_string(),
                fmt(loss),
                fmt(skj),
                fmt(tkj),
            ]);
        }
        if maxent_kj > 0.0 {
            println!(
                "    -> full/maxent energy ratio: {:.1}x\n",
                full_kj / maxent_kj
            );
        }
    }
    print_table(&header, &rows);
    write_csv("fig8_loss_vs_energy.csv", &header, &rows);
    sickle_obs::info!(
        "fig8",
        "Expected shape (paper): MaxEnt lower-left for the stratified (SST)"
    );
    sickle_obs::info!(
        "fig8",
        "cases with an order-of-magnitude energy gap vs Xfull; GESTS shows"
    );
    sickle_obs::info!("fig8", "little loss separation between methods.");
}
