//! Regenerates **Figure 9**: the MATEY foundation-model study — MATEY-mini
//! trained on SST-P1F4 with a 10% *sampling rate* under uniform, random,
//! and MaxEnt curation, reporting validation loss and energy.
//!
//! SICKLE acts here as the training-set curator (the paper applies it "as a
//! preprocessing step" before MATEY training): from the pool of dense
//! hypercubes across the training snapshots, each strategy retains 10% —
//! uniform stride over the cube sequence, uniform random, or
//! entropy-weighted (Hmaxent). All three train the same MATEY-mini for the
//! same epochs and are scored on one *common* held-out snapshot, so the
//! validation loss isolates what the curation kept.
//!
//! Paper's observed outcome (an "initial study"): random attains the lowest
//! validation loss and least energy (0.252 @ 486 kJ), MaxEnt close behind
//! (0.262 @ 514 kJ), uniform clearly worse (0.295 @ 495 kJ).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_bench::{fmt, print_table, workloads, write_csv};
use sickle_core::hypercube::HypercubeSelector;
use sickle_energy::{EnergyMeter, MachineModel};
use sickle_field::{SampleSet, Tiling};
use sickle_train::data::dense_cube_data;
use sickle_train::models::{MateyMini, Model};
use sickle_train::trainer::{train, TrainConfig};

const CUBE_EDGE: usize = 8;
const PATCH: usize = 2;
const EPOCHS: usize = 30; // paper: 50 epochs at full scale
const KEEP_FRAC: f64 = 0.10;

/// Dense sample set covering one whole cube.
fn full_cube_set(
    snap_idx: usize,
    snap: &sickle_field::Snapshot,
    tiling: &Tiling,
    cube: usize,
) -> SampleSet {
    let vars: Vec<String> = vec!["u".into(), "v".into(), "w".into(), "r".into()];
    let (features, indices) = tiling.extract(snap, cube, &vars);
    SampleSet::new(features, indices, snap.time, snap_idx).with_hypercube(cube)
}

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "fig9",
        "== Fig. 9: MATEY-mini on SST-P1F4, 10% sampling rate =="
    );
    let dataset = workloads::sst_p1f4_small();
    let n_snap = dataset.num_snapshots();
    let tiling = Tiling::cubic(dataset.grid(), CUBE_EDGE);
    let cubes_per_snap = tiling.len();
    let train_pool: Vec<(usize, usize)> = (0..n_snap - 1)
        .flat_map(|s| (0..cubes_per_snap).map(move |c| (s, c)))
        .collect();
    let keep = ((train_pool.len() as f64 * KEEP_FRAC).round() as usize).max(4);
    sickle_obs::info!(
        "fig9",
        "pool: {} cubes over {} snapshots; keeping {} (10%); validating on snapshot {}",
        train_pool.len(),
        n_snap - 1,
        keep,
        n_snap - 1
    );

    // Common validation set: 16 randomly drawn cubes of the held-out
    // snapshot (seeded; NOT stride-aligned, so no curation strategy gets
    // spatially co-located near-duplicates for free).
    let val_snap = &dataset.snapshots[n_snap - 1];
    let val_cubes: Vec<usize> = {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(777);
        let mut ids: Vec<usize> = (0..cubes_per_snap).collect();
        ids.shuffle(&mut rng);
        ids.truncate(16);
        ids
    };
    let val_sets: Vec<SampleSet> = val_cubes
        .iter()
        .map(|&c| full_cube_set(n_snap - 1, val_snap, &tiling, c))
        .collect();
    let mut val_tensor = dense_cube_data(
        &val_sets,
        &dataset.snapshots,
        CUBE_EDGE,
        &dataset.meta.input_vars,
        "p",
        PATCH,
    );

    let header = vec!["sampling", "val_loss", "energy_kJ"];
    let mut rows = Vec::new();
    for name in ["uniform", "random", "maxent"] {
        // --- Curation: pick `keep` (snapshot, cube) pairs. ---
        let sample_meter = EnergyMeter::new(MachineModel::frontier_cpu_rank());
        let picked: Vec<(usize, usize)> = match name {
            "uniform" => (0..keep)
                .map(|i| train_pool[i * train_pool.len() / keep])
                .collect(),
            "random" => {
                use rand::seq::SliceRandom;
                let mut rng = StdRng::seed_from_u64(9);
                let mut pool = train_pool.clone();
                pool.shuffle(&mut rng);
                pool.truncate(keep);
                pool
            }
            _ => {
                // MaxEnt cube scoring per snapshot; keep/snapshots cubes each.
                let per_snap = (keep / (n_snap - 1)).max(1);
                let selector = HypercubeSelector::maxent_default();
                let mut out = Vec::new();
                for s in 0..n_snap - 1 {
                    let mut rng = StdRng::seed_from_u64(9 ^ s as u64);
                    let ids =
                        selector.select(&tiling, &dataset.snapshots[s], "pv", per_snap, &mut rng);
                    out.extend(ids.into_iter().map(|c| (s, c)));
                    // Cube scoring scans the snapshot once.
                    sample_meter.record_bytes(dataset.grid().len() as u64 * 8);
                    sample_meter.record_flops(dataset.grid().len() as u64 * 8);
                }
                out.truncate(keep);
                out
            }
        };
        // Cheap strategies still read the data once to slice cubes out.
        sample_meter.record_bytes((keep * tiling.tile(0).len() * 4 * 8) as u64);

        // --- Training tensors from the curated cubes. ---
        let sets: Vec<SampleSet> = picked
            .iter()
            .map(|&(s, c)| full_cube_set(s, &dataset.snapshots[s], &tiling, c))
            .collect();
        let mut tensor = dense_cube_data(
            &sets,
            &dataset.snapshots,
            CUBE_EDGE,
            &dataset.meta.input_vars,
            "p",
            PATCH,
        );
        // Train-fit / val-apply: validation must be scaled with the
        // *training* statistics or cross-method losses are incomparable.
        let scaler = tensor.fit_standardizer();
        scaler.apply(&mut tensor);
        let mut val = val_tensor.clone();
        scaler.apply(&mut val);

        let mut model = MateyMini::new(
            tensor.tokens,
            tensor.features,
            32,
            1,
            tensor.outputs,
            0.25,
            9,
        );
        let tcfg = TrainConfig {
            epochs: EPOCHS,
            batch: 4,
            lr: 1e-3,
            test_frac: 0.1,
            seed: 9,
            ..Default::default()
        };
        let res = train(&mut model, &tensor, &tcfg, MachineModel::frontier_gcd());
        let val_loss = model.eval_loss(&val.full_batch());
        sickle_bench::require_finite(
            &format!("fig9 {name}"),
            &[
                ("val_loss", val_loss as f64),
                ("train_loss", res.best_test as f64),
            ],
        );
        let total_kj = (sample_meter.report().total_joules() + res.energy.total_joules()) / 1e3;
        println!("  {name:<8} val loss {val_loss:.4}  energy {total_kj:.4} kJ");
        rows.push(vec![name.to_string(), fmt(val_loss as f64), fmt(total_kj)]);
    }
    println!();
    print_table(&header, &rows);
    write_csv("fig9_matey.csv", &header, &rows);
    sickle_obs::info!(
        "fig9",
        "Expected shape (paper): random and maxent close (random slightly"
    );
    sickle_obs::info!(
        "fig9",
        "ahead), uniform clearly worse; energies within ~10% of each other."
    );
    let _ = &mut val_tensor;
}
