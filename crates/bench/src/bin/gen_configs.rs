//! Writes the built-in case library to `configs/SST/P1/*.json` — the Rust
//! mirror of the artifact's `contrib/configs/SST/P1` directory.

fn main() {
    let _obs = sickle_bench::obs_init();
    std::fs::create_dir_all("configs/SST/P1").expect("create configs dir");
    for case in sickle_bench::cases::builtin_cases() {
        let path = format!("configs/SST/P1/{}.json", case.name);
        std::fs::write(&path, case.to_json()).expect("write config");
        println!("wrote {path}");
    }
}
