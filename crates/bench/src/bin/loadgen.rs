//! Cluster load generator, emitted as `BENCH_serve_scale.json` (schema in
//! DESIGN.md §14).
//!
//! Three phases against loopback servers whose per-key service time is
//! modeled with `model_us_per_key` (the sleep stands in for the per-node
//! disk/NIC time a real deployment spends per shard, so aggregate
//! throughput scales with server count even on a single-core CI box —
//! the *real* CPU work of tensorizing does not, but bandwidth is what a
//! store cluster actually multiplies):
//!
//! - **single** — every client streams epochs from ONE server holding the
//!   whole store, through the same `ClusterClient` path used below;
//! - **cluster3** — the same store ring-partitioned (R = 2) across THREE
//!   servers; the per-key work now splits across owners. Budget:
//!   `scale_3_over_1 >= 1.6`.
//! - **saturation** — one server readmitted with `max_conns = 2` under 12
//!   clients: past the admission bound every arrival gets an explicit
//!   `Busy` frame and retries with jittered backoff. Budgets: **zero**
//!   client-visible errors, sheds actually observed (> 0), and a bounded
//!   p99 batch latency — graceful degradation, not collapse.
//!
//! The binary exits nonzero when any budget is violated so CI catches
//! regressions; `bench_diff` additionally gates `scale_3_over_1` against
//! the committed baseline.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sickle_bench::require_finite;
use sickle_store::batching::{num_batches, BatchSpec};
use sickle_store::client::{ClientConfig, StoreClient};
use sickle_store::server::{serve, ServeConfig};
use sickle_store::store::{ShardStore, StoreConfig};
use sickle_store::testutil::small_output;
use sickle_store::{partition_output, ClusterClient, ClusterConfig, ClusterMember, HashRing};

const SNAPSHOTS: usize = 4;
const CUBES: usize = 16;
const POINTS: usize = 64;
const TOKENS: usize = 16;
const BATCH_SIZE: usize = 8;
const MODEL_US_PER_KEY: u64 = 1000;
const CLIENTS: usize = 12;
const EPOCHS_PER_CLIENT: usize = 2;
const SERVER_THREADS: usize = 2;
const REPLICATION: usize = 2;
const SATURATION_MAX_CONNS: usize = 2;
const BUDGET_SCALE_3_OVER_1: f64 = 1.6;
const BUDGET_SATURATION_P99_MS: f64 = 2000.0;

#[derive(Serialize)]
struct PhaseScale {
    servers: usize,
    clients: usize,
    samples: usize,
    secs: f64,
    samples_per_sec: f64,
}

#[derive(Serialize)]
struct Saturation {
    clients: usize,
    max_conns: usize,
    batches: usize,
    /// Client-visible errors. Budget: exactly 0 — overload must surface
    /// as Busy backpressure, never as a failed batch.
    errors: usize,
    /// Busy frames absorbed and retried across all clients.
    busy_retries: u64,
    /// The server's shed counter; > 0 proves the bound actually engaged.
    requests_shed: u64,
    p50_ms: f64,
    p99_ms: f64,
    budget_p99_ms: f64,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    keys: usize,
    model_us_per_key: u64,
    replication: usize,
    single: PhaseScale,
    cluster3: PhaseScale,
    /// cluster3 samples/s over single-server samples/s. Budget: >= 1.6.
    scale_3_over_1: f64,
    budget_scale_3_over_1: f64,
    saturation: Saturation,
    within_budget: bool,
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sickle_loadgen_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        retries: 4,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(100),
        busy_budget: 1024,
        seed,
        timeout: Duration::from_secs(30),
    }
}

/// Streams `EPOCHS_PER_CLIENT` epochs from each of `CLIENTS` concurrent
/// cluster clients and returns the aggregate sample rate. Used for both
/// phases — the single-server phase is just a one-member "cluster", so the
/// two measurements exercise the identical client path.
fn bench_phase(members: &[ClusterMember], servers: usize) -> PhaseScale {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let members = members.to_vec();
            std::thread::spawn(move || {
                let mut cluster = ClusterClient::connect(
                    &members,
                    ClusterConfig {
                        replication: REPLICATION,
                        client: client_config(c as u64),
                        ..ClusterConfig::default()
                    },
                )
                .expect("connect cluster");
                let mut rows = 0usize;
                for epoch in 0..EPOCHS_PER_CLIENT {
                    let spec = BatchSpec {
                        seed: (c * 100 + epoch) as u64,
                        batch_size: BATCH_SIZE,
                        tokens: TOKENS,
                    };
                    for batch in cluster.epoch(spec).expect("epoch") {
                        rows += batch.shape.batch;
                    }
                }
                assert!(
                    cluster.down_members().is_empty(),
                    "no member may fail during a load phase"
                );
                rows
            })
        })
        .collect();
    let samples: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
    let secs = t0.elapsed().as_secs_f64();
    PhaseScale {
        servers,
        clients: CLIENTS,
        samples,
        secs,
        samples_per_sec: samples as f64 / secs,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Drives one admission-bounded server past saturation: every client uses
/// a fresh connection per batch (so slots recycle) and absorbs `Busy`
/// frames under its jittered backoff. Collects per-batch latencies and
/// the two sides of the shed ledger.
fn bench_saturation(out: &sickle_core::pipeline::SamplingOutput, n: usize) -> Saturation {
    let root = temp_root("saturation");
    let store = ShardStore::ingest(&root, out, StoreConfig::default()).expect("ingest");
    let handle = serve(
        Arc::new(store),
        ServeConfig {
            threads: SERVER_THREADS,
            max_conns: SATURATION_MAX_CONNS,
            model_us_per_key: MODEL_US_PER_KEY,
            ..ServeConfig::default()
        },
    )
    .expect("bind saturation server");
    let addr = handle.addr();
    let per_epoch = num_batches(n, BATCH_SIZE);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let spec = BatchSpec {
                    seed: c as u64,
                    batch_size: BATCH_SIZE,
                    tokens: TOKENS,
                };
                let mut latencies_ms = Vec::with_capacity(per_epoch);
                let mut errors = 0usize;
                let mut busy = 0u64;
                for i in 0..per_epoch {
                    let mut client =
                        StoreClient::new(addr.to_string(), client_config((c * 1000 + i) as u64));
                    let t0 = Instant::now();
                    if client.batch(spec, i).is_err() {
                        errors += 1;
                    }
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    busy += client.busy_retries();
                }
                (latencies_ms, errors, busy)
            })
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let mut errors = 0usize;
    let mut busy_retries = 0u64;
    for w in workers {
        let (l, e, b) = w.join().expect("saturation client");
        latencies_ms.extend(l);
        errors += e;
        busy_retries += b;
    }
    let mut auditor = StoreClient::new(addr.to_string(), client_config(9999));
    let snap = auditor.stats().expect("post-storm stats");
    busy_retries += auditor.busy_retries();
    drop(handle);
    std::fs::remove_dir_all(&root).ok();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Saturation {
        clients: CLIENTS,
        max_conns: SATURATION_MAX_CONNS,
        batches: latencies_ms.len(),
        errors,
        busy_retries,
        requests_shed: snap.requests_shed,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        budget_p99_ms: BUDGET_SATURATION_P99_MS,
    }
}

fn main() -> ExitCode {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve_scale.json".into());

    let out = small_output(SNAPSHOTS, CUBES, POINTS);
    let keys = SNAPSHOTS * CUBES;
    let serve_cfg = ServeConfig {
        threads: SERVER_THREADS,
        model_us_per_key: MODEL_US_PER_KEY,
        ..ServeConfig::default()
    };
    println!(
        "  fixture: {keys} keys, modeled {MODEL_US_PER_KEY}us/key, {CLIENTS} clients x {EPOCHS_PER_CLIENT} epochs"
    );

    // Phase single: one server, whole store.
    let root = temp_root("single");
    let store = ShardStore::ingest(&root, &out, StoreConfig::default()).expect("ingest");
    let handle = serve(Arc::new(store), serve_cfg.clone()).expect("bind single server");
    let members = vec![ClusterMember::new("solo", handle.addr().to_string())];
    let single = bench_phase(&members, 1);
    drop(handle);
    std::fs::remove_dir_all(&root).ok();
    println!(
        "  single:   {:.0} samples/s ({} samples in {:.2}s)",
        single.samples_per_sec, single.samples, single.secs
    );

    // Phase cluster3: the same store ring-partitioned across three servers.
    let root = temp_root("cluster3");
    let names = ["store-0", "store-1", "store-2"];
    let ring = HashRing::new(&names);
    let handles: Vec<_> = names
        .iter()
        .map(|name| {
            let part = partition_output(&out, &ring, name, REPLICATION);
            let store = ShardStore::ingest(&root.join(name), &part, StoreConfig::default())
                .expect("ingest partition");
            serve(Arc::new(store), serve_cfg.clone()).expect("bind cluster member")
        })
        .collect();
    let members: Vec<ClusterMember> = names
        .iter()
        .zip(&handles)
        .map(|(name, h)| ClusterMember::new(*name, h.addr().to_string()))
        .collect();
    let cluster3 = bench_phase(&members, 3);
    drop(handles);
    std::fs::remove_dir_all(&root).ok();
    let scale_3_over_1 = cluster3.samples_per_sec / single.samples_per_sec;
    println!(
        "  cluster3: {:.0} samples/s ({} samples in {:.2}s)   scale: {scale_3_over_1:.2}x",
        cluster3.samples_per_sec, cluster3.samples, cluster3.secs
    );

    // Phase saturation: overload one admission-bounded server.
    let saturation = bench_saturation(&out, keys);
    println!(
        "  saturation: {} batches, {} errors, {} busy retries, {} shed, p50 {:.0}ms p99 {:.0}ms",
        saturation.batches,
        saturation.errors,
        saturation.busy_retries,
        saturation.requests_shed,
        saturation.p50_ms,
        saturation.p99_ms
    );

    require_finite(
        "serve_scale",
        &[
            ("single_samples_per_sec", single.samples_per_sec),
            ("cluster3_samples_per_sec", cluster3.samples_per_sec),
            ("scale_3_over_1", scale_3_over_1),
            ("saturation_p99_ms", saturation.p99_ms),
        ],
    );

    let mut violations = Vec::new();
    if scale_3_over_1 < BUDGET_SCALE_3_OVER_1 {
        violations.push(format!(
            "scale_3_over_1 {scale_3_over_1:.2} < {BUDGET_SCALE_3_OVER_1}"
        ));
    }
    if saturation.errors > 0 {
        violations.push(format!(
            "{} client-visible errors past saturation (want 0)",
            saturation.errors
        ));
    }
    if saturation.requests_shed == 0 {
        violations.push("saturation produced no sheds: the bound never engaged".into());
    }
    if saturation.p99_ms > BUDGET_SATURATION_P99_MS {
        violations.push(format!(
            "saturation p99 {:.0}ms > {BUDGET_SATURATION_P99_MS:.0}ms",
            saturation.p99_ms
        ));
    }

    let report = Report {
        suite: "serve_scale".into(),
        keys,
        model_us_per_key: MODEL_US_PER_KEY,
        replication: REPLICATION,
        single,
        cluster3,
        scale_3_over_1,
        budget_scale_3_over_1: BUDGET_SCALE_3_OVER_1,
        saturation,
        within_budget: violations.is_empty(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report JSON");
    println!("  wrote {out_path}");

    if !report.within_budget {
        for v in &violations {
            eprintln!("  BUDGET VIOLATION: {v}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
