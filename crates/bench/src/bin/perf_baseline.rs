//! Machine-readable performance baseline for the FFT + spectral-solver hot
//! path, emitted as `BENCH_fft_spectral.json` (see DESIGN.md for the
//! `BENCH_*.json` conventions).
//!
//! Measures, at each grid size:
//! - the complex [`Fft3d`] forward+inverse roundtrip,
//! - the half-spectrum [`RealFft3d`] forward+inverse roundtrip into
//!   preallocated buffers (the solver's steady-state transform path),
//! - one `SpectralSolver` RK2 step on the Taylor–Green vortex,
//!
//! and reports ns/iter, grid throughput, and the real-vs-complex speedup.
//! Numbers are wall-clock medians over enough iterations to fill a fixed
//! time budget, so they are stable enough for a committed baseline while
//! still honest about machine dependence (`threads` records the pool size).

use std::time::Instant;

use serde::Serialize;
use sickle_cfd::{SpectralConfig, SpectralSolver};
use sickle_fft::{Complex, Fft3d, RealFft3d};

/// One measured kernel.
#[derive(Serialize)]
struct BenchResult {
    name: String,
    n: usize,
    iters: usize,
    ns_per_iter: f64,
    mpoints_per_sec: f64,
}

/// Top-level report written to `BENCH_fft_spectral.json`.
#[derive(Serialize)]
struct Report {
    suite: String,
    threads: usize,
    benches: Vec<BenchResult>,
    speedup_real_vs_complex_32: f64,
    speedup_real_vs_complex_64: f64,
}

/// Times `f` with a warmup pass and enough iterations to fill ~0.3 s,
/// returning the mean ns/iter over the measured batch.
fn time_ns(mut f: impl FnMut()) -> (usize, f64) {
    f(); // warmup: page in buffers, spin up the thread pool
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let iters = ((0.3 / once.max(1e-9)) as usize).clamp(3, 1000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed().as_secs_f64();
    (iters, total / iters as f64 * 1e9)
}

fn bench_complex_roundtrip(n: usize) -> BenchResult {
    let plan = Fft3d::new(n, n, n);
    let mut buf: Vec<Complex> = (0..n * n * n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    let (iters, ns) = time_ns(|| {
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        std::hint::black_box(&mut buf);
    });
    result(format!("fft3d_complex_roundtrip_{n}"), n, iters, ns)
}

fn bench_real_roundtrip(n: usize) -> BenchResult {
    let plan = RealFft3d::new(n, n, n);
    let field: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
    let mut back = vec![0.0; field.len()];
    let (iters, ns) = time_ns(|| {
        plan.forward(&field, &mut spec);
        plan.inverse(&mut spec, &mut back);
        std::hint::black_box(&mut back);
    });
    result(format!("rfft3d_roundtrip_{n}"), n, iters, ns)
}

fn bench_spectral_step(n: usize) -> BenchResult {
    let mut solver = SpectralSolver::new(SpectralConfig {
        n,
        dt: 0.002,
        ..Default::default()
    });
    solver.init_taylor_green(1.0);
    let (iters, ns) = time_ns(|| {
        solver.step();
        std::hint::black_box(solver.time());
    });
    result(format!("spectral_step_{n}"), n, iters, ns)
}

fn result(name: String, n: usize, iters: usize, ns_per_iter: f64) -> BenchResult {
    let mpoints_per_sec = (n * n * n) as f64 / ns_per_iter * 1e3;
    println!("  {name:<32} {ns_per_iter:>14.0} ns/iter  {mpoints_per_sec:>9.1} Mpts/s");
    BenchResult {
        name,
        n,
        iters,
        ns_per_iter,
        mpoints_per_sec,
    }
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fft_spectral.json".into());
    sickle_obs::info!(
        "perf",
        "perf_baseline: {} threads",
        rayon::current_num_threads()
    );

    let mut benches = Vec::new();
    let mut speedup = [0.0f64; 2];
    for (slot, n) in [(0usize, 32usize), (1, 64)] {
        let c = bench_complex_roundtrip(n);
        let r = bench_real_roundtrip(n);
        speedup[slot] = c.ns_per_iter / r.ns_per_iter;
        println!("  real-vs-complex speedup at {n}^3: {:.2}x", speedup[slot]);
        benches.push(c);
        benches.push(r);
    }
    benches.push(bench_spectral_step(32));

    let report = Report {
        suite: "fft_spectral".into(),
        threads: rayon::current_num_threads(),
        benches,
        speedup_real_vs_complex_32: speedup[0],
        speedup_real_vs_complex_64: speedup[1],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write baseline JSON");
    println!("  wrote {out_path}");
}
