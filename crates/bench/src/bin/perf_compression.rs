//! Shard-codec compression sweep, emitted as `BENCH_compression.json`
//! (schema in DESIGN.md §15).
//!
//! For every codec (identity, f16, bf16, u8, resim) over the same sampled
//! SST-P1F4 workload of dense 16³ cubes, measures:
//!
//! - `bytes_ratio` — decoded (index + f64 feature) bytes over bytes on
//!   disk. Budgets: u8 ≥ 3×, resim ≥ 6× (acceptance floors; both land
//!   well above them with affine index headers);
//! - `encode_mb_per_sec` / `decode_mb_per_sec` — codec transcode
//!   throughput in *logical* MiB (so codecs are comparable even though
//!   their on-disk byte counts differ). Resim decode includes the local
//!   solver sweeps;
//! - `cold_mb_per_sec` / `warm_mb_per_sec` — full store passes through
//!   `ShardStore::get` with a fresh cache vs. fully resident (warm reads
//!   never re-run reconstruction — the LRU caches decoded sets);
//! - `spectra_err` / `pdf_kl` — worst-feature energy-spectra relative-L2
//!   and phase-space-PDF KL on a full 32³ snapshot, against the same
//!   per-codec budgets `crates/codec/tests/accuracy.rs` enforces;
//! - `train_loss` / `train_delta_pct` — a fig8-style MLP-Transformer
//!   reconstruction run whose *inputs* come through the codec (targets
//!   stay ground truth), reported as loss delta vs. the identity (f32)
//!   baseline and budgeted per codec.
//!
//! Exits nonzero when any codec misses any budget so CI catches both
//! compression and accuracy regressions.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use sickle_bench::{require_finite, workloads};
use sickle_cfd::synth;
use sickle_codec::{decode_shard, encode_shard, Codec};
use sickle_core::pipeline::{run_dataset, CubeMethod, PointMethod, SamplingOutput};
use sickle_energy::MachineModel;
use sickle_field::points::{FeatureMatrix, SampleSet};
use sickle_field::snapshot::Snapshot;
use sickle_field::stats::{kl_divergence, Histogram};
use sickle_field::Dataset;
use sickle_store::store::{ShardStore, StoreConfig};
use sickle_train::data::reconstruction_data;
use sickle_train::models::TokenTransformer;
use sickle_train::trainer::{train, TrainConfig};

const CUBE_EDGE: usize = 16;
const NUM_CUBES: usize = 8;
const TOKENS: usize = 64;
const EPOCHS: usize = 12;
const SEED: u64 = 8;
const WARM_REPS: usize = 20;
const PDF_BINS: usize = 100;

/// Per-codec budgets: `(codec, bytes-ratio floor, spectra budget, PDF KL
/// budget, |training loss delta| budget in percent)`. The spectra/KL
/// numbers are this workload's calibration of the synthetic-turbulence
/// budgets in `crates/codec/tests/accuracy.rs::budgets` (SST-P1F4 carries
/// derived features with wider dynamic range, so the narrow-mantissa
/// codecs sit a little higher here); the ratio floors for u8 and resim
/// are the repo's acceptance numbers.
fn codec_budgets() -> Vec<(Codec, f64, f64, f64, f64)> {
    vec![
        // Identity is lossless: the tiny nonzero KL allowance is histogram
        // pmf-normalization noise, not signal loss.
        (Codec::Identity, 0.9, 1e-9, 1e-9, 1e-9),
        (Codec::F16, 2.5, 1e-3, 2e-2, 5.0),
        (Codec::Bf16, 2.5, 2e-2, 5e-2, 5.0),
        (Codec::U8Block, 3.0, 2e-2, 2e-2, 5.0),
        (Codec::resim_default(), 6.0, 0.35, 0.10, 10.0),
    ]
}

#[derive(Serialize)]
struct CodecReport {
    name: String,
    disk_bytes: usize,
    decoded_bytes: usize,
    bytes_ratio: f64,
    encode_mb_per_sec: f64,
    decode_mb_per_sec: f64,
    cold_mb_per_sec: f64,
    warm_mb_per_sec: f64,
    spectra_err: f64,
    pdf_kl: f64,
    train_loss: f64,
    train_delta_pct: f64,
    budget_bytes_ratio: f64,
    budget_spectra: f64,
    budget_pdf_kl: f64,
    budget_train_delta_pct: f64,
    within_budget: bool,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    dataset: String,
    shards: usize,
    points_per_shard: usize,
    features: usize,
    workloads: Vec<CodecReport>,
}

/// Decoded (logical) bytes of a set: u64 index + f64 features per row.
fn logical_bytes(set: &SampleSet) -> usize {
    set.len() * (8 + 8 * set.features.dim())
}

/// The whole snapshot as one raster-ordered sample set, as in the codec
/// accuracy tests — full lattice for resim, full support for the PDFs.
fn full_set(snap: &Snapshot) -> SampleSet {
    let n = snap.num_points();
    let vidx = snap.var_indices(&snap.names.clone());
    let mut features = FeatureMatrix::with_capacity(snap.names.clone(), n);
    let mut row = vec![0.0; vidx.len()];
    for i in 0..n {
        snap.gather_point(&vidx, i, &mut row);
        features.push_row(&row);
    }
    SampleSet::new(features, (0..n).collect(), snap.time, 0)
}

fn spectra_err(snap: &Snapshot, orig: &[f64], recon: &[f64]) -> f64 {
    let eo = synth::measured_spectrum(&snap.grid, orig);
    let er = synth::measured_spectrum(&snap.grid, recon);
    let num: f64 = eo
        .iter()
        .zip(&er)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>();
    let den: f64 = eo.iter().map(|a| a * a).sum::<f64>();
    (num / den).sqrt()
}

fn pdf_kl(orig: &[f64], recon: &[f64]) -> f64 {
    let lo = orig.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = orig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut ho = Histogram::new(lo, hi, PDF_BINS);
    let mut hr = Histogram::new(lo, hi, PDF_BINS);
    ho.extend(orig);
    hr.extend(recon);
    kl_divergence(&ho.pmf(), &hr.pmf())
}

/// Worst spectra error and PDF KL across all features of a full snapshot
/// pushed through one codec.
fn accuracy_of(snap: &Snapshot, codec: Codec) -> (f64, f64) {
    let set = full_set(snap);
    let bytes = encode_shard(std::slice::from_ref(&set), codec);
    let back = decode_shard(&bytes).expect("accuracy decode");
    let back = &back[0];
    let mut worst_spec: f64 = 0.0;
    let mut worst_kl: f64 = 0.0;
    for c in 0..set.features.dim() {
        let orig = set.features.column(c);
        let recon = back.features.column(c);
        worst_spec = worst_spec.max(spectra_err(snap, &orig, &recon));
        worst_kl = worst_kl.max(pdf_kl(&orig, &recon));
    }
    (worst_spec, worst_kl)
}

/// Fig8-style reconstruction training whose inputs come through `store`
/// (i.e. through the codec); targets stay ground truth from the snapshots.
fn train_loss(store: &ShardStore, dataset: &Dataset) -> f64 {
    let sets: Vec<SampleSet> = store
        .keys()
        .into_iter()
        .map(|k| (*store.get(k).expect("decoded set")).clone())
        .collect();
    let target = dataset.meta.output_vars[0].clone();
    let mut tensor = reconstruction_data(&sets, &dataset.snapshots, CUBE_EDGE, &target, TOKENS);
    tensor.standardize();
    let mut model = TokenTransformer::mlp_transformer(
        tensor.tokens,
        tensor.features,
        32,
        1,
        tensor.outputs,
        SEED,
    );
    let tcfg = TrainConfig {
        epochs: EPOCHS,
        batch: 4,
        lr: 1e-3,
        patience: 20,
        test_frac: 0.15,
        seed: SEED,
        ..Default::default()
    };
    let res = train(&mut model, &tensor, &tcfg, MachineModel::frontier_gcd());
    res.best_test as f64
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sickle_bench_codec_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compression.json".into());

    println!("  generating SST-P1F4 workload (dense {CUBE_EDGE}\u{b3} cubes)...");
    let dataset = workloads::sst_p1f4_small();
    let cfg = workloads::sampling_config(
        &dataset,
        CubeMethod::MaxEnt,
        PointMethod::Full,
        CUBE_EDGE,
        NUM_CUBES,
        SEED,
    );
    let out: SamplingOutput = run_dataset(&dataset, &cfg);
    let sets: Vec<&SampleSet> = out.sets.iter().flatten().collect();
    let shards = sets.len();
    let decoded_bytes: usize = sets.iter().map(|s| logical_bytes(s)).sum();
    let logical_mb = decoded_bytes as f64 / (1 << 20) as f64;
    let features = sets[0].features.dim();
    println!(
        "  {shards} shards x {} points x {features} features = {logical_mb:.1} MiB decoded",
        sets[0].len()
    );

    let mut reports: Vec<CodecReport> = Vec::new();
    let mut baseline_loss = f64::NAN;
    let mut all_within = true;
    for (codec, ratio_floor, spectra_budget, kl_budget, delta_budget) in codec_budgets() {
        // Transcode throughput over every shard, in logical MiB.
        let t0 = Instant::now();
        let blobs: Vec<_> = sets
            .iter()
            .map(|s| encode_shard(std::slice::from_ref(*s), codec))
            .collect();
        let encode_secs = t0.elapsed().as_secs_f64();
        let disk_bytes: usize = blobs.iter().map(|b| b.len()).sum();
        let t1 = Instant::now();
        for b in &blobs {
            decode_shard(b).expect("decode");
        }
        let decode_secs = t1.elapsed().as_secs_f64();

        // Serve throughput through the store (hash verify + codec decode
        // cold; Arc clone warm).
        let root = temp_root(codec.name());
        let store = ShardStore::ingest_with(&root, &out, StoreConfig::default(), |_| codec)
            .expect("ingest");
        let keys = store.keys();
        drop(store);
        let cold_store = ShardStore::open(&root, StoreConfig::default()).expect("open");
        let t2 = Instant::now();
        for &key in &keys {
            cold_store.get(key).expect("cold read");
        }
        let cold_secs = t2.elapsed().as_secs_f64();
        let t3 = Instant::now();
        for _ in 0..WARM_REPS {
            for &key in &keys {
                cold_store.get(key).expect("warm read");
            }
        }
        let warm_secs = t3.elapsed().as_secs_f64() / WARM_REPS as f64;

        let (spec, kl) = accuracy_of(&dataset.snapshots[0], codec);
        let loss = train_loss(&cold_store, &dataset);
        if codec == Codec::Identity {
            baseline_loss = loss;
        }
        let train_delta_pct = 100.0 * (loss - baseline_loss) / baseline_loss;
        std::fs::remove_dir_all(&root).ok();

        let bytes_ratio = decoded_bytes as f64 / disk_bytes as f64;
        let within_budget = bytes_ratio >= ratio_floor
            && spec <= spectra_budget
            && kl <= kl_budget
            && train_delta_pct.abs() <= delta_budget;
        all_within &= within_budget;
        println!(
            "  {:<9} {:>7.2}x  enc {:>7.1} MiB/s  dec {:>7.1} MiB/s  cold {:>7.1}  warm {:>8.1}  \
             spectra {:.2e}  kl {:.2e}  loss {:.4} ({:+.1}%){}",
            codec.name(),
            bytes_ratio,
            logical_mb / encode_secs,
            logical_mb / decode_secs,
            logical_mb / cold_secs,
            logical_mb / warm_secs,
            spec,
            kl,
            loss,
            train_delta_pct,
            if within_budget { "" } else { "  BUDGET MISS" },
        );
        reports.push(CodecReport {
            name: codec.name().to_string(),
            disk_bytes,
            decoded_bytes,
            bytes_ratio,
            encode_mb_per_sec: logical_mb / encode_secs,
            decode_mb_per_sec: logical_mb / decode_secs,
            cold_mb_per_sec: logical_mb / cold_secs,
            warm_mb_per_sec: logical_mb / warm_secs,
            spectra_err: spec,
            pdf_kl: kl,
            train_loss: loss,
            train_delta_pct,
            budget_bytes_ratio: ratio_floor,
            budget_spectra: spectra_budget,
            budget_pdf_kl: kl_budget,
            budget_train_delta_pct: delta_budget,
            within_budget,
        });
    }

    for r in &reports {
        require_finite(
            &format!("compression {}", r.name),
            &[
                ("bytes_ratio", r.bytes_ratio),
                ("encode_mb_per_sec", r.encode_mb_per_sec),
                ("decode_mb_per_sec", r.decode_mb_per_sec),
                ("cold_mb_per_sec", r.cold_mb_per_sec),
                ("warm_mb_per_sec", r.warm_mb_per_sec),
                ("spectra_err", r.spectra_err),
                ("pdf_kl", r.pdf_kl),
                ("train_loss", r.train_loss),
            ],
        );
    }

    let report = Report {
        suite: "compression".into(),
        dataset: dataset.meta.label.clone(),
        shards,
        points_per_shard: sets[0].len(),
        features,
        workloads: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report JSON");
    println!("  wrote {out_path}");

    if !all_within {
        eprintln!("  BUDGET VIOLATION: see per-codec rows above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
