//! Machine-readable cost of fault tolerance, emitted as
//! `BENCH_fault_overhead.json` (see DESIGN.md §9 for the budget).
//!
//! Measures, on a seeded 32³ synthetic dataset:
//! - `serial` — the plain `run_dataset` pipeline (the reference time);
//! - `ranked_8` — the resilient 8-rank executor with no faults;
//! - `ranked_8_kill2` — the same run with 2 of 8 ranks killed mid-snapshot
//!   (retry + work redistribution on the critical path);
//! - `checkpoint_cold` — `run_dataset_resumable` into a fresh directory
//!   (every shard and manifest written);
//! - `checkpoint_resume` — a second resumable run over the same directory
//!   (every snapshot restored from its shard).
//!
//! The acceptance budget is `checkpoint_overhead_pct < 10` — writing
//! checkpoints must cost less than 10% of the serial run. The binary also
//! re-verifies the determinism contract (killed-rank and resumed outputs
//! bit-identical to serial) and exits nonzero when it is violated.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Serialize;
use sickle_bench::require_finite;
use sickle_cfd::synth::{generate, SynthConfig};
use sickle_core::pipeline::{
    run_dataset, run_dataset_resumable, CubeMethod, PointMethod, SamplingConfig, SamplingOutput,
    TemporalMethod,
};
use sickle_field::{Dataset, DatasetMeta};
use sickle_hpc::{run_dataset_with_ranks, FaultInjector, FaultPlan, RetryPolicy};

const RANKS: usize = 8;
const SNAPSHOTS: usize = 3;
const REPS: usize = 3;
const BUDGET_PCT: f64 = 10.0;

#[derive(Serialize)]
struct Stage {
    name: String,
    secs: f64,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    ranks: usize,
    snapshots: usize,
    reps: usize,
    stages: Vec<Stage>,
    /// (checkpoint_cold - serial) / serial, percent. Budget: < 10.
    checkpoint_overhead_pct: f64,
    /// (ranked_8_kill2 - ranked_8) / ranked_8, percent.
    recovery_overhead_pct: f64,
    /// serial / checkpoint_resume — how much a warm resume saves.
    resume_speedup: f64,
    budget_pct: f64,
    within_budget: bool,
    bit_identical: bool,
}

fn dataset() -> Dataset {
    let synth = SynthConfig {
        nx: 32,
        ny: 32,
        nz: 32,
        ..SynthConfig::default()
    };
    let meta = DatasetMeta::new("synth", "fault overhead bench", "u", &["u", "v", "w"], &[]);
    let mut d = Dataset::new(meta);
    for s in 0..SNAPSHOTS {
        let mut snap = generate(&synth, 4242 + s as u64);
        snap.time = s as f64;
        d.push(snap);
    }
    d
}

fn config() -> SamplingConfig {
    SamplingConfig {
        hypercubes: CubeMethod::MaxEnt,
        num_hypercubes: 16,
        cube_edge: 8,
        method: PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        num_samples: 51,
        cluster_var: "u".to_string(),
        feature_vars: vec!["u".to_string(), "v".to_string(), "w".to_string()],
        seed: 7,
        temporal: TemporalMethod::All,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_rounds: 4,
        backoff: Duration::from_millis(1),
        multiplier: 1.0,
    }
}

/// Best-of-`REPS` wall time of `f`, so one scheduler hiccup cannot blow the
/// overhead budget, plus the last run's output for identity checks.
fn time_stage<T>(name: &str, mut f: impl FnMut() -> T) -> (Stage, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    println!("  {name:<20} {:>10.1} ms", best * 1e3);
    (
        Stage {
            name: name.to_string(),
            secs: best,
        },
        last.expect("REPS > 0"),
    )
}

fn outputs_identical(a: &SamplingOutput, b: &SamplingOutput) -> bool {
    a.sets.len() == b.sets.len()
        && a.sets.iter().zip(&b.sets).all(|(sa, sb)| {
            sa.len() == sb.len()
                && sa.iter().zip(sb).all(|(x, y)| {
                    x.hypercube == y.hypercube
                        && x.indices == y.indices
                        && x.features.data == y.features.data
                })
        })
}

fn scratch_dir(fresh: bool) -> PathBuf {
    let dir = std::env::temp_dir().join("sickle_perf_fault_overhead");
    if fresh {
        std::fs::remove_dir_all(&dir).ok();
    }
    dir
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault_overhead.json".into());
    let d = dataset();
    let cfg = config();
    println!(
        "perf_fault_overhead: {SNAPSHOTS} x 32^3 snapshots, {} cubes, {RANKS} ranks",
        cfg.num_hypercubes
    );

    let (serial, serial_out) = time_stage("serial", || run_dataset(&d, &cfg));
    let (ranked, _) = time_stage("ranked_8", || {
        run_dataset_with_ranks(&d, &cfg, RANKS, &FaultInjector::none(), &fast_retry())
            .expect("fault-free ranked run")
    });
    let kill_plan = FaultPlan::parse("kill@2:1,kill@5:1").expect("static plan parses");
    let (killed, killed_out) = time_stage("ranked_8_kill2", || {
        run_dataset_with_ranks(
            &d,
            &cfg,
            RANKS,
            &FaultInjector::new(kill_plan.clone()),
            &fast_retry(),
        )
        .expect("2 of 8 killed must recover")
    });
    let (cold, _) = time_stage("checkpoint_cold", || {
        run_dataset_resumable(&d, &cfg, &scratch_dir(true)).expect("checkpointed run")
    });
    let (resume, resume_out) = time_stage("checkpoint_resume", || {
        run_dataset_resumable(&d, &cfg, &scratch_dir(false)).expect("resumed run")
    });

    let checkpoint_overhead_pct = (cold.secs - serial.secs) / serial.secs * 100.0;
    let recovery_overhead_pct = (killed.secs - ranked.secs) / ranked.secs * 100.0;
    let resume_speedup = serial.secs / resume.secs;
    require_finite(
        "perf_fault_overhead",
        &[
            ("checkpoint_overhead_pct", checkpoint_overhead_pct),
            ("recovery_overhead_pct", recovery_overhead_pct),
            ("resume_speedup", resume_speedup),
        ],
    );
    let bit_identical =
        outputs_identical(&serial_out, &killed_out) && outputs_identical(&serial_out, &resume_out);
    let within_budget = checkpoint_overhead_pct < BUDGET_PCT;
    println!("  checkpoint overhead: {checkpoint_overhead_pct:+.1}% (budget < {BUDGET_PCT}%)");
    println!("  recovery overhead:   {recovery_overhead_pct:+.1}%");
    println!("  resume speedup:      {resume_speedup:.1}x");
    println!("  bit identical:       {bit_identical}");

    let report = Report {
        suite: "fault_overhead".into(),
        ranks: RANKS,
        snapshots: SNAPSHOTS,
        reps: REPS,
        stages: vec![serial, ranked, killed, cold, resume],
        checkpoint_overhead_pct,
        recovery_overhead_pct,
        resume_speedup,
        budget_pct: BUDGET_PCT,
        within_budget,
        bit_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write overhead JSON");
    println!("  wrote {out_path}");

    if !bit_identical {
        eprintln!("error: fault-recovered or resumed output differs from the serial run");
        std::process::exit(1);
    }
    if !within_budget {
        eprintln!(
            "error: checkpoint overhead {checkpoint_overhead_pct:.1}% exceeds the \
             {BUDGET_PCT}% budget"
        );
        std::process::exit(1);
    }
}
