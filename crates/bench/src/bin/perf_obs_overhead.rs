//! Tracing-overhead baseline for the observability layer, emitted as
//! `BENCH_obs_overhead.json` (see DESIGN.md for the `BENCH_*.json`
//! conventions).
//!
//! Measures two instrumented hot paths — a `SpectralSolver` RK2 step (6
//! spans/step) and a small `run_dataset` sampling pass — with tracing
//! disabled and enabled, and reports:
//!
//! - `disabled_overhead_pct`: the cost of the dormant instrumentation
//!   relative to an uninstrumented build, estimated as
//!   `spans × disabled-span cost / workload time` (a disabled span is one
//!   relaxed atomic load, measured directly). Budget: ≤ 1%.
//! - `enabled_overhead_pct`: the measured slowdown with event recording
//!   on. Budget: ≤ 10%.

use std::time::Instant;

use serde::Serialize;
use sickle_cfd::{SpectralConfig, SpectralSolver};
use sickle_core::pipeline::{run_dataset, CubeMethod, PointMethod};

/// One workload measured with tracing off and on.
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    spans_per_iter: f64,
    disabled_ns_per_iter: f64,
    enabled_ns_per_iter: f64,
    disabled_overhead_pct: f64,
    enabled_overhead_pct: f64,
}

/// Top-level report written to `BENCH_obs_overhead.json`.
#[derive(Serialize)]
struct Report {
    suite: String,
    disabled_span_ns: f64,
    workloads: Vec<WorkloadResult>,
    disabled_budget_pct: f64,
    enabled_budget_pct: f64,
    within_budget: bool,
}

/// Times `f` with a warmup pass and enough iterations to fill ~0.3 s.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let iters = ((0.3 / once.max(1e-9)) as usize).clamp(3, 1000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e9
}

/// Cost of one `span!` while tracing is disabled (one relaxed atomic
/// load + an inert guard), measured over a tight batch.
fn disabled_span_ns() -> f64 {
    assert!(!sickle_obs::enabled());
    const BATCH: u32 = 100_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..BATCH {
            let g = sickle_obs::span!("obs.overhead.probe");
            std::hint::black_box(&g);
            std::hint::black_box(i);
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / BATCH as f64);
    }
    best
}

fn measure(name: &str, spans_per_iter: f64, span_ns: f64, mut f: impl FnMut()) -> WorkloadResult {
    sickle_obs::set_enabled(false);
    let disabled = time_ns(&mut f);
    sickle_obs::set_enabled(true);
    let enabled = time_ns(&mut f);
    sickle_obs::set_enabled(false);
    let _ = sickle_obs::drain(); // discard the recorded events
    let r = WorkloadResult {
        name: name.to_string(),
        spans_per_iter,
        disabled_ns_per_iter: disabled,
        enabled_ns_per_iter: enabled,
        // The instrumentation cannot be compiled out at runtime, so the
        // disabled overhead is modeled from the measured per-span cost.
        disabled_overhead_pct: 100.0 * spans_per_iter * span_ns / disabled,
        enabled_overhead_pct: 100.0 * (enabled - disabled).max(0.0) / disabled,
    };
    println!(
        "  {:<24} disabled {:>12.0} ns  enabled {:>12.0} ns  overhead: {:.4}% off / {:.2}% on",
        r.name,
        r.disabled_ns_per_iter,
        r.enabled_ns_per_iter,
        r.disabled_overhead_pct,
        r.enabled_overhead_pct
    );
    r
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs_overhead.json".into());

    let span_ns = disabled_span_ns();
    println!("  disabled span cost: {span_ns:.2} ns");

    let mut workloads = Vec::new();

    // Spectral step: cfd.step + 2 × (fft_inverse, nonlinear, buoyancy,
    // damp, projection) = 11 spans per iteration.
    let mut solver = SpectralSolver::new(SpectralConfig {
        n: 32,
        dt: 0.002,
        ..Default::default()
    });
    solver.init_taylor_green(1.0);
    workloads.push(measure("spectral_step_32", 11.0, span_ns, || {
        solver.step();
        std::hint::black_box(solver.time());
    }));

    // Sampling pass: run_dataset + temporal + snapshot + phase1 + 4 cubes
    // = 8 spans per iteration (counters excluded: they are cheaper).
    let sst = sickle_bench::workloads::sst_p1f4_small();
    let cfg = sickle_bench::workloads::sampling_config(
        &sst,
        CubeMethod::MaxEnt,
        PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        4,
        8,
        7,
    );
    let spans_per_run = (4.0 + 3.0) * sst.num_snapshots() as f64 + 2.0;
    workloads.push(measure(
        "run_dataset_sst_small",
        spans_per_run,
        span_ns,
        || {
            std::hint::black_box(run_dataset(&sst, &cfg));
        },
    ));

    let within_budget = workloads
        .iter()
        .all(|w| w.disabled_overhead_pct <= 1.0 && w.enabled_overhead_pct <= 10.0);
    let report = Report {
        suite: "obs_overhead".into(),
        disabled_span_ns: span_ns,
        workloads,
        disabled_budget_pct: 1.0,
        enabled_budget_pct: 10.0,
        within_budget,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write overhead JSON");
    println!("  wrote {out_path} (within budget: {within_budget})");
}
