//! Tracing-overhead baseline for the observability layer, emitted as
//! `BENCH_obs_overhead.json` (see DESIGN.md for the `BENCH_*.json`
//! conventions).
//!
//! Measures three instrumented hot paths — a `SpectralSolver` RK2 step,
//! a small `run_dataset` sampling pass, and a warm-cache loopback serving
//! epoch through the full `sickle-store` data plane — with tracing
//! disabled and enabled, and reports:
//!
//! - `disabled_overhead_pct`: the cost of the dormant instrumentation
//!   relative to an uninstrumented build, estimated as
//!   `spans × disabled-span cost / workload time` (a disabled span is one
//!   relaxed atomic load, measured directly). Budget: ≤ 1%.
//! - `enabled_overhead_pct`: the measured slowdown with event recording
//!   on. Budget: ≤ 10% for the compute workloads, ≤ 5% for the serve
//!   path (the per-request spans, queue-wait/encode histograms, and
//!   trace-context trailer must stay cheap relative to real socket I/O).
//!
//! Exits nonzero when any workload violates its budget, so CI catches
//! instrumentation that has grown too heavy.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sickle_cfd::{SpectralConfig, SpectralSolver};
use sickle_core::pipeline::{run_dataset, CubeMethod, PointMethod};
use sickle_store::batching::{num_batches, BatchSpec};
use sickle_store::client::{ClientConfig, StoreClient};
use sickle_store::server::{serve, ServeConfig};
use sickle_store::store::{ShardStore, StoreConfig};
use sickle_store::testutil::small_output;

/// One workload measured with tracing off and on.
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    spans_per_iter: f64,
    disabled_ns_per_iter: f64,
    enabled_ns_per_iter: f64,
    disabled_overhead_pct: f64,
    enabled_overhead_pct: f64,
    /// Per-workload ceiling on `enabled_overhead_pct`.
    enabled_budget_pct: f64,
}

/// Top-level report written to `BENCH_obs_overhead.json`.
#[derive(Serialize)]
struct Report {
    suite: String,
    disabled_span_ns: f64,
    workloads: Vec<WorkloadResult>,
    disabled_budget_pct: f64,
    within_budget: bool,
}

const ROUNDS: usize = 5;

/// Picks an iteration count sizing one measurement round to ~60 ms
/// (after a warmup call).
fn calibrate_iters(f: &mut impl FnMut()) -> usize {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    ((0.06 / once.max(1e-9)) as usize).clamp(3, 1000)
}

/// Mean ns/iteration over one round of `iters` calls.
fn time_round(f: &mut impl FnMut(), iters: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e9
}

/// Cost of one `span!` while tracing is disabled (one relaxed atomic
/// load + an inert guard), measured over a tight batch.
fn disabled_span_ns() -> f64 {
    assert!(!sickle_obs::enabled());
    const BATCH: u32 = 100_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..BATCH {
            let g = sickle_obs::span!("obs.overhead.probe");
            std::hint::black_box(&g);
            std::hint::black_box(i);
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / BATCH as f64);
    }
    best
}

fn measure(
    name: &str,
    spans_per_iter: f64,
    span_ns: f64,
    enabled_budget_pct: f64,
    mut f: impl FnMut(),
) -> WorkloadResult {
    // Interleave disabled/enabled rounds and take the best of each mode:
    // the serve-path workload crosses real sockets, where a single pass is
    // at the mercy of scheduler noise larger than the effect under test.
    sickle_obs::set_enabled(false);
    let iters = calibrate_iters(&mut f);
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    for _ in 0..ROUNDS {
        sickle_obs::set_enabled(false);
        disabled = disabled.min(time_round(&mut f, iters));
        sickle_obs::set_enabled(true);
        enabled = enabled.min(time_round(&mut f, iters));
        sickle_obs::set_enabled(false);
        let _ = sickle_obs::drain(); // discard the recorded events
    }
    let r = WorkloadResult {
        name: name.to_string(),
        spans_per_iter,
        disabled_ns_per_iter: disabled,
        enabled_ns_per_iter: enabled,
        // The instrumentation cannot be compiled out at runtime, so the
        // disabled overhead is modeled from the measured per-span cost.
        disabled_overhead_pct: 100.0 * spans_per_iter * span_ns / disabled,
        enabled_overhead_pct: 100.0 * (enabled - disabled).max(0.0) / disabled,
        enabled_budget_pct,
    };
    println!(
        "  {:<24} disabled {:>12.0} ns  enabled {:>12.0} ns  overhead: {:.4}% off / {:.2}% on (budget {:.0}%)",
        r.name,
        r.disabled_ns_per_iter,
        r.enabled_ns_per_iter,
        r.disabled_overhead_pct,
        r.enabled_overhead_pct,
        r.enabled_budget_pct
    );
    r
}

/// Builds a small fixture store, serves it over loopback TCP, and returns
/// a closure streaming one warm-cache epoch per call — the serve-path
/// workload. The handle and temp root ride along so they outlive the
/// measurement.
fn serve_workload() -> (
    sickle_store::server::ServerHandle,
    std::path::PathBuf,
    impl FnMut(),
    f64,
) {
    const BATCH_SIZE: usize = 32;
    let root = std::env::temp_dir().join(format!("sickle_obs_overhead_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Realistically sized shards/batches: serving cost must be dominated
    // by batch assembly + socket I/O, as in production, not by the
    // per-request fixed costs a toy fixture would exaggerate.
    let out = small_output(2, 8, 4096);
    let store = ShardStore::ingest(&root, &out, StoreConfig::default()).expect("ingest fixture");
    let shards = store.manifest().len();
    let handle = serve(Arc::new(store), ServeConfig::default()).expect("bind loopback server");
    let addr = handle.addr();
    let mut client = StoreClient::new(
        addr.to_string(),
        ClientConfig {
            timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    );
    let per_epoch = num_batches(shards, BATCH_SIZE);
    let mut epoch = 0u64;
    let f = move || {
        let spec = BatchSpec {
            seed: epoch,
            batch_size: BATCH_SIZE,
            tokens: 256,
        };
        epoch += 1;
        for i in 0..per_epoch {
            std::hint::black_box(client.batch(spec, i).expect("loopback batch"));
        }
    };
    // Per request: client.request + serve.request + serve.assemble_batch
    // + serve.encode + serve.write = 5 spans (cache hits skip the
    // disk-read/decode spans on the warm path).
    (handle, root, f, 5.0 * per_epoch as f64)
}

fn main() -> ExitCode {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs_overhead.json".into());

    let span_ns = disabled_span_ns();
    println!("  disabled span cost: {span_ns:.2} ns");

    let mut workloads = Vec::new();

    // Spectral step: cfd.step + 2 × (fft_inverse, nonlinear, buoyancy,
    // damp, projection) = 11 spans per iteration.
    let mut solver = SpectralSolver::new(SpectralConfig {
        n: 32,
        dt: 0.002,
        ..Default::default()
    });
    solver.init_taylor_green(1.0);
    workloads.push(measure("spectral_step_32", 11.0, span_ns, 10.0, || {
        solver.step();
        std::hint::black_box(solver.time());
    }));

    // Sampling pass: run_dataset + temporal + snapshot + phase1 + 4 cubes
    // = 8 spans per iteration (counters excluded: they are cheaper).
    let sst = sickle_bench::workloads::sst_p1f4_small();
    let cfg = sickle_bench::workloads::sampling_config(
        &sst,
        CubeMethod::MaxEnt,
        PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        4,
        8,
        7,
    );
    let spans_per_run = (4.0 + 3.0) * sst.num_snapshots() as f64 + 2.0;
    workloads.push(measure(
        "run_dataset_sst_small",
        spans_per_run,
        span_ns,
        10.0,
        || {
            std::hint::black_box(run_dataset(&sst, &cfg));
        },
    ));

    // Serve path: one warm-cache epoch over real loopback TCP, through
    // the instrumented server (per-request spans, queue-wait and encode
    // histograms, trace-context trailer). Budget: ≤ 5% enabled.
    let (handle, root, mut serve_epoch, serve_spans) = serve_workload();
    workloads.push(measure(
        "serve_epoch_loopback",
        serve_spans,
        span_ns,
        5.0,
        &mut serve_epoch,
    ));
    drop(serve_epoch);
    drop(handle);
    std::fs::remove_dir_all(&root).ok();

    let within_budget = workloads
        .iter()
        .all(|w| w.disabled_overhead_pct <= 1.0 && w.enabled_overhead_pct <= w.enabled_budget_pct);
    let report = Report {
        suite: "obs_overhead".into(),
        disabled_span_ns: span_ns,
        workloads,
        disabled_budget_pct: 1.0,
        within_budget,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write overhead JSON");
    println!("  wrote {out_path} (within budget: {within_budget})");
    if !within_budget {
        for w in &report.workloads {
            if w.disabled_overhead_pct > 1.0 || w.enabled_overhead_pct > w.enabled_budget_pct {
                eprintln!(
                    "  BUDGET VIOLATION: {} — {:.4}% disabled (≤ 1%), {:.2}% enabled (≤ {:.0}%)",
                    w.name, w.disabled_overhead_pct, w.enabled_overhead_pct, w.enabled_budget_pct
                );
            }
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
