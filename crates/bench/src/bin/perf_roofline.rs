//! Roofline accounting for the SIMD-swept dataset-generation kernels,
//! emitted as `BENCH_roofline.json` (see DESIGN.md §12 for the schema).
//!
//! For each hot kernel (3D real FFT, D2Q9 collide+stream, histogram fill,
//! MaxEnt PMF estimation) the bench times the naive and optimized variants
//! through the [`sickle_simd::Kernel`] switch, converts analytic FLOP counts
//! into achieved GFLOP/s, and compares against the machine roofline
//! `min(peak_flops, AI × peak_bandwidth)` where both peaks are measured
//! in-process (an FMA chain microbench and a streaming-sum microbench).
//! An end-to-end 64³ spectral dataset-generation run closes the loop.
//!
//! Budgets (enforced with a nonzero exit, AVX2+FMA hosts only): ≥ 2× per
//! kernel and ≥ 2× end-to-end over the naive baselines.

use std::time::Instant;

use serde::Serialize;
use sickle_cfd::{lbm_step_flops, CylinderFlow, LbmConfig, SpectralConfig, SpectralSolver};
use sickle_core::entropy::ClusterDistributions;
use sickle_energy::{EnergyMeter, EnergyReport, MachineModel};
use sickle_fft::{rfft3d_flops, Complex, RealFft3d};
use sickle_field::{hist_flops, Histogram};
use sickle_simd::{fma_available, set_kernel, Kernel};

#[derive(Serialize)]
struct Machine {
    avx2_fma: bool,
    threads: usize,
    /// Measured peak via an 8-chain FMA microbench (portable mul-add chains
    /// when AVX2+FMA is absent).
    peak_gflops: f64,
    /// Measured streaming read bandwidth via a multi-accumulator sum over a
    /// 64 MiB working set.
    peak_gbps: f64,
}

#[derive(Serialize)]
struct KernelRow {
    name: String,
    size: String,
    flops_per_call: u64,
    bytes_per_call: u64,
    arithmetic_intensity: f64,
    ns_naive: f64,
    ns_optimized: f64,
    speedup: f64,
    gflops_naive: f64,
    gflops_optimized: f64,
    /// `min(peak_flops, AI × peak_bandwidth)` for this kernel's intensity.
    roofline_gflops: f64,
    /// Achieved (optimized) GFLOP/s over the roofline bound.
    roofline_fraction: f64,
}

#[derive(Serialize)]
struct E2eResult {
    config: String,
    n: usize,
    steps: usize,
    secs_naive: f64,
    secs_optimized: f64,
    speedup: f64,
    steps_per_sec_optimized: f64,
    /// Transform-dominated FLOP estimate: 30 half-spectrum 3D transforms
    /// per RK2 step (2 RHS × (3 to-physical + 3×3 gradients + 3 forward)).
    gflops_optimized: f64,
}

#[derive(Serialize)]
struct Budgets {
    fft_min_speedup: f64,
    lbm_min_speedup: f64,
    hist_min_speedup: f64,
    e2e_min_speedup: f64,
    enforced: bool,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    machine: Machine,
    kernels: Vec<KernelRow>,
    e2e: E2eResult,
    /// Modeled Frontier-CPU-rank energy for one call of every benched
    /// kernel, from the same FLOP/byte counters the rows report.
    energy: EnergyReport,
    budgets: Budgets,
}

/// ns/iter for a naive/optimized pair, measured as ten *alternating*
/// naive/optimized rounds (each batch sized to fill ~30 ms), reporting the
/// round with the lowest combined time. Taking both legs from the same
/// (quietest) round matters on shared machines: noise windows are long
/// compared to a round, so per-side minima would pair one side's quiet
/// window with the other side's noisy one and skew the enforced speedup
/// ratio in either direction.
fn time_pair(mut naive: impl FnMut(), mut opt: impl FnMut()) -> (f64, f64) {
    let calibrate = |f: &mut dyn FnMut()| {
        f(); // warmup
        let probe = Instant::now();
        f();
        let once = probe.elapsed().as_secs_f64();
        ((0.03 / once.max(1e-9)) as usize).clamp(3, 4000)
    };
    let iters_naive = calibrate(&mut naive);
    let iters_opt = calibrate(&mut opt);
    let mut rounds = Vec::with_capacity(10);
    for _ in 0..10 {
        let start = Instant::now();
        for _ in 0..iters_naive {
            naive();
        }
        let ns_naive = start.elapsed().as_secs_f64() / iters_naive as f64 * 1e9;
        let start = Instant::now();
        for _ in 0..iters_opt {
            opt();
        }
        let ns_opt = start.elapsed().as_secs_f64() / iters_opt as f64 * 1e9;
        rounds.push((ns_naive, ns_opt));
    }
    // Quietest observation per side, then the round that stays closest to
    // quiet on *both* sides at once.
    let quiet_n = rounds.iter().fold(f64::INFINITY, |m, r| m.min(r.0));
    let quiet_o = rounds.iter().fold(f64::INFINITY, |m, r| m.min(r.1));
    rounds
        .into_iter()
        .min_by(|a, b| {
            let ka = (a.0 / quiet_n).max(a.1 / quiet_o);
            let kb = (b.0 / quiet_n).max(b.1 / quiet_o);
            ka.partial_cmp(&kb).unwrap()
        })
        .unwrap()
}

/// 8 independent 4-wide FMA chains: 64 FLOPs per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_chains(iters: usize) -> f64 {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_set1_pd(1.0); 8];
    let x = _mm256_set1_pd(1.000_000_001);
    let y = _mm256_set1_pd(1e-9);
    for _ in 0..iters {
        for a in &mut acc {
            *a = _mm256_fmadd_pd(*a, x, y);
        }
    }
    let mut total = _mm256_setzero_pd();
    for a in acc {
        total = _mm256_add_pd(total, a);
    }
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), total);
    out.iter().sum()
}

/// Portable fallback: 8 independent scalar mul-add chains, 16 FLOPs/iter.
fn muladd_chains(iters: usize) -> f64 {
    let mut acc = [1.0f64; 8];
    for _ in 0..iters {
        for a in &mut acc {
            *a = a.mul_add(1.000_000_001, 1e-9);
        }
    }
    acc.iter().sum()
}

fn measure_peak_gflops() -> f64 {
    let mut iters = 1_000_000usize;
    loop {
        let start = Instant::now();
        #[cfg(target_arch = "x86_64")]
        let (sum, flops_per_iter) = if fma_available() {
            // SAFETY: avx2+fma presence verified by `fma_available`.
            (unsafe { fma_chains(iters) }, 64.0)
        } else {
            (muladd_chains(iters), 16.0)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let (sum, flops_per_iter) = (muladd_chains(iters), 16.0);
        std::hint::black_box(sum);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.1 {
            return iters as f64 * flops_per_iter / secs / 1e9;
        }
        iters *= 4;
    }
}

/// Multi-accumulator streaming sum (keeps the loop bandwidth-bound, not
/// dependency-bound).
fn sum4(data: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut it = data.chunks_exact(4);
    for c in &mut it {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    acc.iter().sum::<f64>() + it.remainder().iter().sum::<f64>()
}

fn measure_peak_gbps() -> f64 {
    let data = vec![1.0f64; 1 << 23]; // 64 MiB: past LLC, streaming from DRAM
    std::hint::black_box(sum4(&data));
    let mut passes = 1usize;
    loop {
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..passes {
            acc += sum4(&data);
        }
        std::hint::black_box(acc);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.1 {
            return (passes * data.len() * 8) as f64 / secs / 1e9;
        }
        passes *= 2;
    }
}

fn signal(n: usize, seed: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.7310 + seed).sin() * 3.0 + (i as f64 * 1.93).cos())
        .collect()
}

#[allow(clippy::too_many_arguments)] // flat measurement record, not an API
fn row(
    name: &str,
    size: String,
    flops: u64,
    bytes: u64,
    ns_naive: f64,
    ns_optimized: f64,
    machine: &Machine,
) -> KernelRow {
    let ai = flops as f64 / bytes as f64;
    let roofline = machine.peak_gflops.min(ai * machine.peak_gbps);
    let gflops_optimized = flops as f64 / ns_optimized;
    let r = KernelRow {
        name: name.into(),
        size,
        flops_per_call: flops,
        bytes_per_call: bytes,
        arithmetic_intensity: ai,
        ns_naive,
        ns_optimized,
        speedup: ns_naive / ns_optimized,
        gflops_naive: flops as f64 / ns_naive,
        gflops_optimized,
        roofline_gflops: roofline,
        roofline_fraction: gflops_optimized / roofline,
    };
    println!(
        "  {name:<18} {:<12} naive {:>8.2} GF/s  opt {:>8.2} GF/s  {:>5.2}x  roofline {:>8.2} GF/s ({:>4.1}%)",
        r.size,
        r.gflops_naive,
        r.gflops_optimized,
        r.speedup,
        r.roofline_gflops,
        r.roofline_fraction * 100.0
    );
    r
}

fn bench_rfft3d(n: usize, machine: &Machine) -> KernelRow {
    let rfft = RealFft3d::new(n, n, n);
    let real = signal(n * n * n, 0.4);
    let nspec = n * n * (n / 2 + 1);
    let mut spec_naive = vec![Complex::ZERO; nspec];
    let mut spec_opt = vec![Complex::ZERO; nspec];
    let (ns_naive, ns_opt) = time_pair(
        || {
            rfft.forward_with(&real, &mut spec_naive, Kernel::Naive);
            std::hint::black_box(&mut spec_naive);
        },
        || {
            rfft.forward_with(&real, &mut spec_opt, Kernel::Optimized);
            std::hint::black_box(&mut spec_opt);
        },
    );
    // Traffic model: the z pass reads the real field and writes the
    // half-spectrum; the y and x passes each read and write the spectrum.
    let bytes = (n * n * n * 8 + nspec * 16 + 2 * 2 * nspec * 16) as u64;
    row(
        "rfft3d_forward",
        format!("{n}^3"),
        rfft3d_flops(n, n, n),
        bytes,
        ns_naive,
        ns_opt,
        machine,
    )
}

fn bench_lbm(machine: &Machine) -> KernelRow {
    let cfg = LbmConfig {
        nx: 256,
        ny: 128,
        u_inlet: 0.1,
        reynolds: 100.0,
        diameter: 12.0,
        ..Default::default()
    };
    let mut naive = CylinderFlow::new(cfg);
    let mut fused = CylinderFlow::new(cfg);
    let (ns_naive, ns_opt) = time_pair(
        || naive.step_with(Kernel::Naive),
        || fused.step_with(Kernel::Optimized),
    );
    // Traffic model: read 9 populations, write 9 populations per cell.
    let bytes = (cfg.nx * cfg.ny * 9 * 16) as u64;
    row(
        "lbm_step",
        format!("{}x{}", cfg.nx, cfg.ny),
        lbm_step_flops(cfg.nx, cfg.ny),
        bytes,
        ns_naive,
        ns_opt,
        machine,
    )
}

/// Two regimes: the enforced `histogram_fill` row bins one 16³ cube — the
/// shape the MaxEnt feature pass actually runs, right after cube extraction
/// while the data is cache-resident, so the kernel's compute speedup is
/// visible. The `histogram_stream` row covers a 1M-point pass where both
/// variants share the DRAM wall (reported for the roofline picture, not
/// budget-enforced: memory-bound speedup caps near the bandwidth ratio).
fn bench_histogram(name: &str, n: usize, size: &str, machine: &Machine) -> KernelRow {
    let data = signal(n, 2.2);
    let mut naive = Histogram::new(-5.0, 5.0, 64);
    let mut opt = Histogram::new(-5.0, 5.0, 64);
    let (ns_naive, ns_opt) = time_pair(
        || {
            naive.extend_with(&data, Kernel::Naive);
            std::hint::black_box(&mut naive);
        },
        || {
            opt.extend_with(&data, Kernel::Optimized);
            std::hint::black_box(&mut opt);
        },
    );
    row(
        name,
        size.into(),
        hist_flops(n),
        (n * 8) as u64,
        ns_naive,
        ns_opt,
        machine,
    )
}

fn bench_maxent_estimate(machine: &Machine) -> KernelRow {
    let n = 1 << 20;
    let k = 8;
    let values = signal(n, 6.1);
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    let (ns_naive, ns_opt) = time_pair(
        || {
            std::hint::black_box(ClusterDistributions::estimate_with(
                &values,
                &labels,
                k,
                64,
                Kernel::Naive,
            ));
        },
        || {
            std::hint::black_box(ClusterDistributions::estimate_with(
                &values,
                &labels,
                k,
                64,
                Kernel::Optimized,
            ));
        },
    );
    // 2 FLOPs/value for the min/max scan + 4 for binning; reads values
    // twice plus labels once.
    row(
        "maxent_estimate",
        format!("{n} pts x {k}"),
        6 * n as u64,
        (n * (8 + 8 + 8)) as u64,
        ns_naive,
        ns_opt,
        machine,
    )
}

fn bench_e2e(n: usize, steps: usize, meter: &EnergyMeter) -> E2eResult {
    let cfg = SpectralConfig {
        n,
        viscosity: 0.005,
        dt: 0.005,
        ..Default::default()
    };
    // Two persistent solvers (per-step cost is state-independent), timed as
    // six short alternating naive/optimized rounds keeping each side's best:
    // a transient machine slowdown hits both sides instead of landing on one
    // leg of the enforced speedup ratio.
    let mut naive = SpectralSolver::new(cfg);
    let mut opt = SpectralSolver::new(cfg);
    set_kernel(Kernel::Naive);
    naive.run(2); // warmup: touch every buffer once
    set_kernel(Kernel::Optimized);
    opt.run(2);
    let (mut secs_naive, mut secs_optimized) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..6 {
        set_kernel(Kernel::Naive);
        let start = Instant::now();
        naive.run(steps);
        secs_naive = secs_naive.min(start.elapsed().as_secs_f64());
        set_kernel(Kernel::Optimized);
        let start = Instant::now();
        opt.run(steps);
        secs_optimized = secs_optimized.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(naive.kinetic_energy());
    std::hint::black_box(opt.kinetic_energy());
    let flops = 30 * rfft3d_flops(n, n, n) * steps as u64;
    meter.record_flops(flops);
    let r = E2eResult {
        config: "spectral_dataset_gen".into(),
        n,
        steps,
        secs_naive,
        secs_optimized,
        speedup: secs_naive / secs_optimized,
        steps_per_sec_optimized: steps as f64 / secs_optimized,
        gflops_optimized: flops as f64 / secs_optimized / 1e9,
    };
    println!(
        "  e2e {}^3 x{steps}      naive {:.2} s  opt {:.2} s  {:.2}x  ({:.2} steps/s, {:.2} GF/s)",
        n, secs_naive, secs_optimized, r.speedup, r.steps_per_sec_optimized, r.gflops_optimized
    );
    r
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_roofline.json".into());

    let machine = Machine {
        avx2_fma: fma_available(),
        threads: rayon::current_num_threads(),
        peak_gflops: measure_peak_gflops(),
        peak_gbps: measure_peak_gbps(),
    };
    println!(
        "perf_roofline: {} threads, avx2+fma {}, peak {:.2} GFLOP/s, {:.2} GB/s",
        machine.threads, machine.avx2_fma, machine.peak_gflops, machine.peak_gbps
    );

    let meter = EnergyMeter::new(MachineModel::frontier_cpu_rank());
    // Budget-enforced rows get up to two re-measurements when they land
    // under budget (keeping the best attempt): the enforced claim is that
    // the optimized kernel *achieves* the speedup on this hardware, and a
    // single co-tenant noise burst on a shared machine shouldn't fail CI
    // when the kernel demonstrably reaches the bar moments later.
    let enforced = fma_available();
    let measure = |budget: f64, bench: &mut dyn FnMut() -> KernelRow| {
        let mut best = bench();
        for _ in 0..2 {
            if !enforced || best.speedup >= budget {
                break;
            }
            let again = bench();
            if again.speedup > best.speedup {
                best = again;
            }
        }
        best
    };
    let kernels = vec![
        measure(0.0, &mut || bench_rfft3d(32, &machine)),
        measure(2.0, &mut || bench_rfft3d(64, &machine)),
        measure(2.0, &mut || bench_lbm(&machine)),
        measure(2.0, &mut || {
            bench_histogram("histogram_fill", 4096, "16^3 cube", &machine)
        }),
        measure(0.0, &mut || {
            bench_histogram("histogram_stream", 1 << 20, "1048576 pts", &machine)
        }),
        measure(0.0, &mut || bench_maxent_estimate(&machine)),
    ];
    for k in &kernels {
        meter.record_flops(k.flops_per_call);
        meter.record_bytes(k.bytes_per_call);
    }
    let e2e = bench_e2e(64, 10, &meter);

    let budgets = Budgets {
        fft_min_speedup: 2.0,
        lbm_min_speedup: 2.0,
        hist_min_speedup: 2.0,
        e2e_min_speedup: 2.0,
        // The ≥2× contracts are AVX2-hardware claims; portable-fallback
        // hosts still run the suite for the JSON artifact but don't gate.
        enforced: fma_available(),
    };
    let mut violations = Vec::new();
    if budgets.enforced {
        let check = |name: &str, got: f64, min: f64, violations: &mut Vec<String>| {
            if got < min {
                violations.push(format!("{name} speedup {got:.2}x < required {min:.1}x"));
            }
        };
        let fft64 = kernels.iter().find(|k| k.size == "64^3").unwrap();
        let lbm = kernels.iter().find(|k| k.name == "lbm_step").unwrap();
        let hist = kernels.iter().find(|k| k.name == "histogram_fill").unwrap();
        check(
            "rfft3d 64^3",
            fft64.speedup,
            budgets.fft_min_speedup,
            &mut violations,
        );
        check(
            "lbm_step",
            lbm.speedup,
            budgets.lbm_min_speedup,
            &mut violations,
        );
        check(
            "histogram_fill",
            hist.speedup,
            budgets.hist_min_speedup,
            &mut violations,
        );
        check(
            "e2e 64^3",
            e2e.speedup,
            budgets.e2e_min_speedup,
            &mut violations,
        );
    }

    let report = Report {
        suite: "roofline".into(),
        machine,
        kernels,
        e2e,
        energy: meter.report(),
        budgets,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write roofline JSON");
    println!("  wrote {out_path}");

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("BUDGET VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
