//! Zero-copy serving data plane vs the legacy copying plane, emitted as
//! `BENCH_serve_path.json` (schema in DESIGN.md §16).
//!
//! Two identical in-process servers are measured over loopback on the
//! same identity-shard fixture store, differing only in
//! `ServeConfig::zero_copy`:
//!
//! - **legacy** — every `GetShard` does an uncached `fs::read`, re-hashes
//!   the bytes, clones them into a contiguous frame buffer, and writes
//!   with copying `write` calls;
//! - **zero_copy** — the shard is mapped (or positionally read) into the
//!   block cache once, hash-verified at residency, and served as iovec
//!   slices of the shared handle through `write_vectored`.
//!
//! Each mode serves a *cold* phase (fresh store, 4 concurrent clients
//! each fetching every shard once — so the legacy plane re-reads and
//! re-hashes every shard 4×, while the zero-copy plane verifies each
//! shard once per residency) and a *warm* phase (same sweep again, cache
//! resident). The instrumented copy shim (`shard_bytes::copytrace`)
//! counts every heap copy of shard payload bytes on the serve path.
//!
//! Acceptance budgets, enforced by exit code for CI:
//! - `cold_ratio >= 1.5` — zero-copy cold serving beats the `fs::read`
//!   plane by at least 1.5×;
//! - `copies_per_identity_byte <= 1.0` — at most one heap copy per
//!   served identity byte (0 when mmap is on; the `read_at` fallback
//!   costs exactly 1).

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sickle_bench::require_finite;
use sickle_store::client::{ClientConfig, StoreClient};
use sickle_store::manifest::ShardKey;
use sickle_store::server::{serve, ServeConfig};
use sickle_store::shard_bytes::copytrace;
use sickle_store::store::{ShardStore, StoreConfig};
use sickle_store::testutil::small_output;

const SNAPSHOTS: usize = 3;
const CUBES: usize = 16;
const POINTS: usize = 16384;
const CLIENTS: usize = 4;
const BUDGET_COLD_RATIO: f64 = 1.5;
const BUDGET_COPIES_PER_BYTE: f64 = 1.0;

#[derive(Serialize)]
struct Phase {
    secs: f64,
    mb_per_sec: f64,
}

#[derive(Serialize)]
struct Mode {
    cold: Phase,
    warm: Phase,
    /// Heap copies of shard payload bytes per payload byte served, over
    /// both phases (the copytrace shim / bytes-on-the-wire ledger).
    copies_per_identity_byte: f64,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    shards: usize,
    store_bytes: usize,
    clients: usize,
    legacy: Mode,
    zero_copy: Mode,
    /// zero_copy cold MB/s over legacy cold MB/s. Budget: >= 1.5.
    cold_ratio: f64,
    /// zero_copy warm MB/s over legacy warm MB/s.
    warm_ratio: f64,
    /// The zero-copy plane's copy ledger. Budget: <= 1.0.
    copies_per_identity_byte: f64,
    budget_cold_ratio: f64,
    budget_copies_per_identity_byte: f64,
    within_budget: bool,
}

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sickle_bench_serve_path_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One sweep: `CLIENTS` concurrent loopback clients each fetch every
/// shard once (staggered start offsets so requests interleave instead of
/// convoying). Returns (wall seconds, payload bytes received).
fn sweep(addr: SocketAddr, keys: &[ShardKey]) -> (f64, u64) {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let keys = keys.to_vec();
            std::thread::spawn(move || {
                let mut client = StoreClient::new(
                    addr.to_string(),
                    ClientConfig {
                        retries: 3,
                        backoff: Duration::from_millis(20),
                        timeout: Duration::from_secs(30),
                        seed: c as u64,
                        ..ClientConfig::default()
                    },
                );
                let start = c * keys.len() / CLIENTS;
                let mut bytes = 0u64;
                for i in 0..keys.len() {
                    let key = keys[(start + i) % keys.len()];
                    bytes += client.shard(key).expect("loopback shard").len() as u64;
                }
                bytes
            })
        })
        .collect();
    let mut total = 0u64;
    for w in workers {
        total += w.join().expect("client thread");
    }
    (t0.elapsed().as_secs_f64(), total)
}

/// Cold + warm sweeps against a fresh server in the given plane mode.
fn run_mode(root: &Path, zero_copy: bool) -> Mode {
    let store = ShardStore::open(root, StoreConfig::default()).expect("open store");
    let keys = store.keys();
    let handle = serve(
        Arc::new(store),
        ServeConfig {
            threads: 8,
            zero_copy,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    copytrace::reset();
    let (cold_secs, cold_bytes) = sweep(handle.addr(), &keys);
    let (warm_secs, warm_bytes) = sweep(handle.addr(), &keys);
    let copied = copytrace::copied_bytes();
    drop(handle);
    let mb = |b: u64| b as f64 / (1 << 20) as f64;
    Mode {
        cold: Phase {
            secs: cold_secs,
            mb_per_sec: mb(cold_bytes) / cold_secs,
        },
        warm: Phase {
            secs: warm_secs,
            mb_per_sec: mb(warm_bytes) / warm_secs,
        },
        copies_per_identity_byte: copied as f64 / (cold_bytes + warm_bytes) as f64,
    }
}

fn main() -> ExitCode {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve_path.json".into());

    let root = temp_root();
    let out = small_output(SNAPSHOTS, CUBES, POINTS);
    let store = ShardStore::ingest(&root, &out, StoreConfig::default()).expect("ingest");
    let store_bytes = store.manifest().total_bytes();
    let shards = store.manifest().len();
    drop(store);
    println!(
        "  store: {shards} identity shards, {:.1} MiB, {CLIENTS} clients",
        store_bytes as f64 / (1 << 20) as f64
    );

    let legacy = run_mode(&root, false);
    println!(
        "  legacy:    cold {:.0} MiB/s   warm {:.0} MiB/s   {:.2} copies/byte",
        legacy.cold.mb_per_sec, legacy.warm.mb_per_sec, legacy.copies_per_identity_byte
    );
    let zero_copy = run_mode(&root, true);
    println!(
        "  zero-copy: cold {:.0} MiB/s   warm {:.0} MiB/s   {:.2} copies/byte",
        zero_copy.cold.mb_per_sec, zero_copy.warm.mb_per_sec, zero_copy.copies_per_identity_byte
    );

    let cold_ratio = zero_copy.cold.mb_per_sec / legacy.cold.mb_per_sec;
    let warm_ratio = zero_copy.warm.mb_per_sec / legacy.warm.mb_per_sec;
    let copies_per_identity_byte = zero_copy.copies_per_identity_byte;
    println!(
        "  cold ratio: {cold_ratio:.2}x   warm ratio: {warm_ratio:.2}x   \
         zero-copy copies/byte: {copies_per_identity_byte:.3}"
    );

    require_finite(
        "serve_path",
        &[
            ("cold_ratio", cold_ratio),
            ("warm_ratio", warm_ratio),
            ("copies_per_identity_byte", copies_per_identity_byte),
        ],
    );

    let within_budget =
        cold_ratio >= BUDGET_COLD_RATIO && copies_per_identity_byte <= BUDGET_COPIES_PER_BYTE;
    let report = Report {
        suite: "serve_path".into(),
        shards,
        store_bytes,
        clients: CLIENTS,
        legacy,
        zero_copy,
        cold_ratio,
        warm_ratio,
        copies_per_identity_byte,
        budget_cold_ratio: BUDGET_COLD_RATIO,
        budget_copies_per_identity_byte: BUDGET_COPIES_PER_BYTE,
        within_budget,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report JSON");
    println!("  wrote {out_path}");
    std::fs::remove_dir_all(&root).ok();

    if !within_budget {
        eprintln!(
            "  BUDGET VIOLATION: cold_ratio {cold_ratio:.2} (need >= {BUDGET_COLD_RATIO}) \
             or copies/byte {copies_per_identity_byte:.3} (need <= {BUDGET_COPIES_PER_BYTE})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
