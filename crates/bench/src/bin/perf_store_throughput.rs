//! Serving-plane throughput, emitted as `BENCH_store_throughput.json`
//! (schema in DESIGN.md §10).
//!
//! Measures, on a synthetic fixture store:
//! - `cold_mb_per_sec` — first pass over every shard through a fresh
//!   cache (disk read + hash verify + SKLH decode per shard);
//! - `warm_mb_per_sec` — repeated passes once everything is resident
//!   (one lock + one `Arc` clone per shard);
//! - loopback `batches_per_sec` at 1, 4, and 16 concurrent clients, each
//!   streaming full epochs over real TCP.
//!
//! The acceptance budget is `warm_over_cold >= 5` — the block cache must
//! buy at least 5× over re-reading and re-decoding shards. The binary
//! exits nonzero when the budget is violated so CI catches regressions.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sickle_bench::require_finite;
use sickle_store::batching::{num_batches, BatchSpec};
use sickle_store::client::{ClientConfig, StoreClient};
use sickle_store::server::{serve, ServeConfig};
use sickle_store::store::{ShardStore, StoreConfig};
use sickle_store::testutil::small_output;

const SNAPSHOTS: usize = 4;
const CUBES: usize = 16;
const POINTS: usize = 2048;
const COLD_REPS: usize = 3;
const WARM_REPS: usize = 50;
const BATCH_SIZE: usize = 8;
const TOKENS: usize = 32;
const EPOCHS_PER_CLIENT: usize = 2;
const BUDGET_WARM_OVER_COLD: f64 = 5.0;

#[derive(Serialize)]
struct ClientScale {
    clients: usize,
    batches: usize,
    secs: f64,
    batches_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    shards: usize,
    store_bytes: usize,
    cold_secs: f64,
    warm_secs: f64,
    cold_mb_per_sec: f64,
    warm_mb_per_sec: f64,
    /// warm bandwidth / cold bandwidth. Budget: >= 5.
    warm_over_cold: f64,
    budget_warm_over_cold: f64,
    within_budget: bool,
    scaling: Vec<ClientScale>,
}

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sickle_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Best-of-`reps` seconds for one full pass over all shards through a
/// *fresh* cache (every shard is a miss).
fn bench_cold(root: &Path, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let store = ShardStore::open(root, StoreConfig::default()).expect("open store");
        let keys = store.keys();
        let t0 = Instant::now();
        for key in keys {
            store.get(key).expect("cold read");
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Mean seconds per pass over all shards once fully resident.
fn bench_warm(store: &ShardStore, reps: usize) -> f64 {
    let keys = store.keys();
    for &key in &keys {
        store.get(key).expect("warm-up read");
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        for &key in &keys {
            store.get(key).expect("warm read");
        }
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Aggregate batches/s with `clients` concurrent loopback streamers, each
/// fetching `EPOCHS_PER_CLIENT` full epochs under its own seed.
fn bench_clients(addr: std::net::SocketAddr, n: usize, clients: usize) -> ClientScale {
    let per_epoch = num_batches(n, BATCH_SIZE);
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = StoreClient::new(
                    addr.to_string(),
                    ClientConfig {
                        retries: 3,
                        backoff: Duration::from_millis(20),
                        timeout: Duration::from_secs(30),
                        seed: c as u64,
                        ..ClientConfig::default()
                    },
                );
                for epoch in 0..EPOCHS_PER_CLIENT {
                    let spec = BatchSpec {
                        seed: (c * 100 + epoch) as u64,
                        batch_size: BATCH_SIZE,
                        tokens: TOKENS,
                    };
                    for i in 0..per_epoch {
                        client.batch(spec, i).expect("loopback batch");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let secs = t0.elapsed().as_secs_f64();
    let batches = clients * EPOCHS_PER_CLIENT * per_epoch;
    ClientScale {
        clients,
        batches,
        secs,
        batches_per_sec: batches as f64 / secs,
    }
}

fn main() -> ExitCode {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store_throughput.json".into());

    let root = temp_root();
    let out = small_output(SNAPSHOTS, CUBES, POINTS);
    let store = ShardStore::ingest(&root, &out, StoreConfig::default()).expect("ingest");
    let store_bytes = store.manifest().total_bytes();
    let shards = store.manifest().len();
    println!(
        "  store: {shards} shards, {:.1} MiB",
        store_bytes as f64 / (1 << 20) as f64
    );

    let cold_secs = bench_cold(&root, COLD_REPS);
    let warm_secs = bench_warm(&store, WARM_REPS);
    let mb = store_bytes as f64 / (1 << 20) as f64;
    let cold_mb_per_sec = mb / cold_secs;
    let warm_mb_per_sec = mb / warm_secs;
    let warm_over_cold = warm_mb_per_sec / cold_mb_per_sec;
    println!("  cold: {cold_mb_per_sec:.1} MiB/s   warm: {warm_mb_per_sec:.1} MiB/s   ratio: {warm_over_cold:.1}x");

    let handle = serve(
        Arc::new(store),
        ServeConfig {
            threads: 16,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let scaling: Vec<ClientScale> = [1usize, 4, 16]
        .into_iter()
        .map(|clients| {
            let s = bench_clients(handle.addr(), shards, clients);
            println!(
                "  {:>2} clients: {:.0} batches/s ({} batches in {:.2}s)",
                s.clients, s.batches_per_sec, s.batches, s.secs
            );
            s
        })
        .collect();
    drop(handle);

    require_finite(
        "store_throughput",
        &[
            ("cold_mb_per_sec", cold_mb_per_sec),
            ("warm_mb_per_sec", warm_mb_per_sec),
            ("warm_over_cold", warm_over_cold),
            ("batches_per_sec_1", scaling[0].batches_per_sec),
            ("batches_per_sec_16", scaling[2].batches_per_sec),
        ],
    );

    let within_budget = warm_over_cold >= BUDGET_WARM_OVER_COLD;
    let report = Report {
        suite: "store_throughput".into(),
        shards,
        store_bytes,
        cold_secs,
        warm_secs,
        cold_mb_per_sec,
        warm_mb_per_sec,
        warm_over_cold,
        budget_warm_over_cold: BUDGET_WARM_OVER_COLD,
        within_budget,
        scaling,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report JSON");
    println!("  wrote {out_path}");
    std::fs::remove_dir_all(&root).ok();

    if !within_budget {
        eprintln!(
            "  BUDGET VIOLATION: warm_over_cold {warm_over_cold:.2} < {BUDGET_WARM_OVER_COLD}"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
