//! Machine-readable training-throughput baseline, emitted as
//! `BENCH_train_throughput.json` (see DESIGN.md §11 for the schema).
//!
//! Three measurements, each with an enforced budget (nonzero exit on
//! violation, so CI catches regressions):
//!
//! - **GEMM kernels**: naive serial vs blocked+packed on the model's real
//!   shapes and on the 256³ reference — blocked must be ≥ 2× at 256³.
//! - **End-to-end training step**: the fig8 MLP-Transformer config
//!   (64 sampled tokens → 16³ cube reconstruction, batch 4) stepped with
//!   the old path (naive GEMM + fresh tape per step) and the new path
//!   (blocked GEMM + arena-reused tape) — new must be ≥ 1.5× samples/sec.
//! - **Steady-state allocations**: a counting global allocator proves the
//!   new path performs zero tensor-sized heap allocations per step.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use serde::Serialize;
use sickle_nn::gemm::{self, Kernel};
use sickle_nn::optim::Adam;
use sickle_nn::{flops, Tape};
use sickle_train::models::Model;
use sickle_train::{Batch, BatchShape, TokenTransformer};

/// Tensor-sized allocation threshold: the smallest recurring activation in
/// the fig8 model is tokens × dim × 4 = 8 KiB; per-step bookkeeping
/// (rayon job headers, node-index groups) stays well under this.
const LARGE: usize = 4096;

static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) != 0 && layout.size() >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// fig8 reconstruction config: 64 sampled point tokens per 16³ cube.
const TOKENS: usize = 64;
const FEATURES: usize = 4;
const OUTPUTS: usize = 16 * 16 * 16;
const BATCH: usize = 4;

#[derive(Serialize)]
struct GemmResult {
    shape: String,
    layout: String,
    gflops_naive: f64,
    gflops_blocked: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct E2eResult {
    config: String,
    tokens: usize,
    features: usize,
    outputs: usize,
    batch: usize,
    steps: usize,
    samples_per_sec_old: f64,
    samples_per_sec_new: f64,
    speedup: f64,
    gflops_old: f64,
    gflops_new: f64,
    large_allocs_per_step: f64,
}

#[derive(Serialize)]
struct Budgets {
    gemm_256_min_speedup: f64,
    e2e_min_speedup: f64,
    max_large_allocs_per_step: usize,
}

#[derive(Serialize)]
struct Report {
    suite: String,
    threads: usize,
    gemm: Vec<GemmResult>,
    e2e: E2eResult,
    budgets: Budgets,
}

fn pseudo(seed: u64, len: usize, scale: f32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f32) / (1u64 << 31) as f32;
            (u - 0.5) * 2.0 * scale
        })
        .collect()
}

/// Mean ns/iter of `f` over enough iterations to fill ~0.25 s.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let iters = ((0.25 / once.max(1e-9)) as usize).clamp(3, 2000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e9
}

fn bench_gemm(m: usize, k: usize, n: usize, nt: bool) -> GemmResult {
    let a = pseudo(11, m * k, 0.1);
    let b = pseudo(13, k * n, 0.1);
    let mut c = vec![0.0f32; m * n];
    let fl = (2 * m * k * n) as f64;
    let (ns_naive, ns_blocked) = if nt {
        // B stored (n, k) for the NT layout.
        let bt = pseudo(13, n * k, 0.1);
        (
            time_ns(|| {
                gemm::naive_matmul_nt_into(&mut c, &a, &bt, m, k, n, false);
                std::hint::black_box(&mut c);
            }),
            time_ns(|| {
                gemm::matmul_nt_into(&mut c, &a, &bt, m, k, n, false);
                std::hint::black_box(&mut c);
            }),
        )
    } else {
        (
            time_ns(|| {
                gemm::naive_matmul_into(&mut c, &a, &b, m, k, n, false);
                std::hint::black_box(&mut c);
            }),
            time_ns(|| {
                gemm::matmul_into(&mut c, &a, &b, m, k, n, false);
                std::hint::black_box(&mut c);
            }),
        )
    };
    let layout = if nt { "NT" } else { "NN" };
    let r = GemmResult {
        shape: format!("{m}x{k}x{n}"),
        layout: layout.into(),
        gflops_naive: fl / ns_naive,
        gflops_blocked: fl / ns_blocked,
        speedup: ns_naive / ns_blocked,
    };
    println!(
        "  gemm {layout} {:<14} naive {:>7.2} GF/s  blocked {:>7.2} GF/s  {:>5.2}x",
        r.shape, r.gflops_naive, r.gflops_blocked, r.speedup
    );
    r
}

fn fig8_batch() -> Batch {
    let shape = BatchShape {
        batch: BATCH,
        tokens: TOKENS,
        features: FEATURES,
        outputs: OUTPUTS,
    };
    Batch {
        inputs: pseudo(17, BATCH * TOKENS * FEATURES, 1.0),
        targets: pseudo(19, BATCH * OUTPUTS, 1.0),
        shape,
    }
}

fn fig8_model(seed: u64) -> TokenTransformer {
    TokenTransformer::mlp_transformer(TOKENS, FEATURES, 32, 1, OUTPUTS, seed)
}

/// One optimizer step on `batch` through `tape` (reused or fresh-per-call).
fn train_step(tape: &mut Tape, model: &mut TokenTransformer, opt: &mut Adam, batch: &Batch) {
    tape.reset();
    let loss = model.loss_on_batch(tape, batch);
    std::hint::black_box(tape.value(loss)[0]);
    tape.backward(loss);
    tape.accumulate_grads(model.store_mut());
    opt.step(model.store_mut());
    model.store_mut().zero_grads();
}

/// Times `steps` full training steps, returning (samples/sec, GFLOP/s).
fn run_e2e(steps: usize, reuse_tape: bool, kernel: Kernel, batch: &Batch) -> (f64, f64) {
    gemm::set_kernel(kernel);
    let mut model = fig8_model(5);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    // Warmup: populate the arena and optimizer moments.
    for _ in 0..2 {
        train_step(&mut tape, &mut model, &mut opt, batch);
    }
    flops::reset();
    let start = Instant::now();
    for _ in 0..steps {
        if reuse_tape {
            train_step(&mut tape, &mut model, &mut opt, batch);
        } else {
            let mut fresh = Tape::new();
            train_step(&mut fresh, &mut model, &mut opt, batch);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let fl = flops::reset() as f64;
    gemm::set_kernel(Kernel::Blocked);
    ((steps * BATCH) as f64 / secs, fl / secs / 1e9)
}

/// Counts tensor-sized allocations per steady-state step on the new path.
fn count_allocs_per_step(steps: usize, batch: &Batch) -> f64 {
    gemm::set_kernel(Kernel::Blocked);
    let mut model = fig8_model(5);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    for _ in 0..2 {
        train_step(&mut tape, &mut model, &mut opt, batch);
    }
    LARGE_ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(1, Ordering::SeqCst);
    for _ in 0..steps {
        train_step(&mut tape, &mut model, &mut opt, batch);
    }
    TRACKING.store(0, Ordering::SeqCst);
    LARGE_ALLOCS.load(Ordering::SeqCst) as f64 / steps as f64
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train_throughput.json".into());
    println!(
        "perf_train: {} threads, fig8 config {TOKENS} tokens x {FEATURES} features -> {OUTPUTS} outputs, batch {BATCH}",
        rayon::current_num_threads()
    );

    let gemm_results = vec![
        bench_gemm(256, 256, 256, false),
        bench_gemm(256, 256, 256, true),
        bench_gemm(64, 32, 32, false),    // MLP hidden
        bench_gemm(64, 32, 64, false),    // MLP expand
        bench_gemm(64, 8, 64, true),      // attention scores (per head)
        bench_gemm(256, 32, 4096, false), // output projection (batch x tokens rows)
    ];

    let batch = fig8_batch();
    let steps = 40;
    let (sps_old, gf_old) = run_e2e(steps, false, Kernel::Naive, &batch);
    let (sps_new, gf_new) = run_e2e(steps, true, Kernel::Blocked, &batch);
    let allocs = count_allocs_per_step(8, &batch);
    let e2e = E2eResult {
        config: "fig8_mlp_transformer".into(),
        tokens: TOKENS,
        features: FEATURES,
        outputs: OUTPUTS,
        batch: BATCH,
        steps,
        samples_per_sec_old: sps_old,
        samples_per_sec_new: sps_new,
        speedup: sps_new / sps_old,
        gflops_old: gf_old,
        gflops_new: gf_new,
        large_allocs_per_step: allocs,
    };
    println!(
        "  e2e old {:.1} samples/s ({:.2} GF/s)  new {:.1} samples/s ({:.2} GF/s)  {:.2}x  allocs/step {:.2}",
        sps_old, gf_old, sps_new, gf_new, e2e.speedup, allocs
    );

    let budgets = Budgets {
        gemm_256_min_speedup: 2.0,
        e2e_min_speedup: 1.5,
        max_large_allocs_per_step: 0,
    };
    let mut violations = Vec::new();
    let g256 = &gemm_results[0];
    if g256.speedup < budgets.gemm_256_min_speedup {
        violations.push(format!(
            "gemm 256x256x256 NN speedup {:.2}x < required {:.1}x",
            g256.speedup, budgets.gemm_256_min_speedup
        ));
    }
    if e2e.speedup < budgets.e2e_min_speedup {
        violations.push(format!(
            "e2e training speedup {:.2}x < required {:.1}x",
            e2e.speedup, budgets.e2e_min_speedup
        ));
    }
    if allocs > budgets.max_large_allocs_per_step as f64 {
        violations.push(format!(
            "steady-state step makes {allocs:.2} allocation(s) >= {LARGE} bytes, budget 0"
        ));
    }

    let report = Report {
        suite: "train_throughput".into(),
        threads: rayon::current_num_threads(),
        gemm: gemm_results,
        e2e,
        budgets,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write baseline JSON");
    println!("  wrote {out_path}");

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("BUDGET VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
