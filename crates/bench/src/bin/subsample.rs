//! `subsample` — the Rust mirror of the artifact's `subsample.py`:
//!
//! ```sh
//! subsample <case.json> [--output-dir DIR]
//! subsample --builtin <case-name> [--output-dir DIR]   # e.g. Hmaxent-Xmaxent-16
//! subsample --list                                      # list built-in cases
//! ```
//!
//! Regenerates the case's dataset, runs the two-phase sampling pipeline,
//! writes one `.skls` file per (snapshot, hypercube), and prints the energy
//! block (`CPU Energy`, `Total Energy Consumed`, `Elapsed Time`) the
//! artifact's analysis instructions grep for.

use sickle_bench::{
    cases::{builtin_cases, CaseConfig},
    sampling_energy,
};
use sickle_core::pipeline::run_dataset;
use sickle_field::io::encode_sample_set;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: subsample <case.json> [--output-dir DIR]");
    eprintln!("       subsample --builtin <name> [--output-dir DIR]");
    eprintln!("       subsample --list");
    std::process::exit(2);
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        for c in builtin_cases() {
            println!("{}", c.name);
        }
        return;
    }
    let (case, rest) = if args[0] == "--builtin" {
        let name = args.get(1).cloned().unwrap_or_else(|| usage());
        let case = builtin_cases()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown builtin case '{name}' (try --list)");
                std::process::exit(2);
            });
        (case, &args[2..])
    } else {
        let case = CaseConfig::load(&PathBuf::from(&args[0])).unwrap_or_else(|e| {
            eprintln!("failed to load {}: {e}", args[0]);
            std::process::exit(2);
        });
        (case, &args[1..])
    };
    let mut output_dir = PathBuf::from("snapshots");
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--output-dir" => {
                output_dir = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }

    sickle_obs::info!(
        "subsample",
        "case: {} ({})",
        case.name,
        case.subsample.case_name()
    );
    sickle_obs::info!("subsample", "generating dataset...");
    let dataset = case.dataset.build();
    sickle_obs::info!(
        "subsample",
        "{}: {} snapshots x {} points ({})",
        dataset.meta.label,
        dataset.num_snapshots(),
        dataset.grid().len(),
        dataset.size_string()
    );

    sickle_obs::info!("subsample", "sampling...");
    let out = run_dataset(&dataset, &case.subsample);
    std::fs::create_dir_all(&output_dir).expect("create output dir");
    let mut bytes_written = 0usize;
    for (si, sets) in out.sets.iter().enumerate() {
        for set in sets {
            let bytes = encode_sample_set(set);
            bytes_written += bytes.len();
            let path = output_dir.join(format!(
                "{}_s{si}_c{}.skls",
                case.name,
                set.hypercube.unwrap_or(0)
            ));
            std::fs::write(&path, &bytes).expect("write sample set");
        }
    }
    sickle_obs::info!(
        "subsample",
        "kept {} / {} points ({:.1}%), {} cubes, {} bytes -> {}",
        out.stats.points_out,
        out.stats.points_in,
        100.0 * out.stats.retention(),
        out.stats.cubes_selected,
        bytes_written,
        output_dir.display()
    );
    let report = sampling_energy(&out.stats, &case.subsample);
    println!("CPU Energy: {:.6} kJ", report.total_kilojoules());
    println!("{}", report.log_lines());
}
