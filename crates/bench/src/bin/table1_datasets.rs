//! Regenerates **Table 1**: the dataset inventory (label, description,
//! grid, snapshots, size, cluster variable, inputs, outputs) at
//! reproduction scale.

use sickle_bench::{print_table, workloads, write_csv};
use sickle_cfd::datasets::table_row;

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!(
        "table1",
        "== Table 1: datasets used in the study (reproduction scale) =="
    );
    let of2d = workloads::of2d_small();
    let datasets = [
        workloads::tc2d_small(0),
        of2d.dataset,
        workloads::sst_p1f4_small(),
        workloads::sst_p1f100_small(),
        workloads::gests_small(),
    ];
    let header = vec![
        "Label",
        "Description",
        "Space",
        "Time",
        "Size",
        "KCV",
        "Input",
        "Output",
    ];
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|d| {
            let r = table_row(d);
            vec![
                r.label,
                r.description,
                r.space,
                r.time.to_string(),
                r.size,
                r.kcv,
                r.input,
                r.output,
            ]
        })
        .collect();
    print_table(&header, &rows);
    write_csv("table1_datasets.csv", &header, &rows);
    sickle_obs::info!(
        "table1",
        "Paper-scale originals range from 31 MB (TC2D) to 12 TB (GESTS-8192);"
    );
    sickle_obs::info!(
        "table1",
        "the physics, variables, and statistics are reproduced at laptop scale (DESIGN.md)."
    );
}
