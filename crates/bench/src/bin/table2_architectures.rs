//! Regenerates **Table 2**: the neural-network architectures, their I/O
//! shapes, and parameter counts at reproduction scale.

use sickle_bench::{print_table, write_csv};
use sickle_train::models::{LstmModel, MateyMini, Model, TokenTransformer};

fn main() {
    let _obs = sickle_bench::obs_init();
    sickle_obs::info!("table2", "== Table 2: neural network architectures ==");
    let lstm = LstmModel::new(64, 32, 1, 0);
    let mlp_t = TokenTransformer::mlp_transformer(64, 5, 32, 2, 4096, 0);
    let cnn_t = TokenTransformer::cnn_transformer(64, 256, 32, 2, 4096, 0);
    let matey = MateyMini::new(64, 256, 32, 2, 4096, 0.5, 0);

    let header = vec![
        "Architecture",
        "Input Shape",
        "Output Shape",
        "Description",
        "Input Data",
        "Params",
    ];
    let rows = vec![
        vec![
            lstm.name().to_string(),
            "[B, T, C]".to_string(),
            "[B, T', C']".to_string(),
            "Two LSTM layers, three dense layers".to_string(),
            "Subsampled points (unstructured)".to_string(),
            lstm.num_params().to_string(),
        ],
        vec![
            mlp_t.name().to_string(),
            "[B, T, C, N]".to_string(),
            "[B, T', C', H, W, D]".to_string(),
            "MLP encoder, Transformer encoder, dense decoder (pooled)".to_string(),
            "Subsampled points (unstructured)".to_string(),
            mlp_t.num_params().to_string(),
        ],
        vec![
            cnn_t.name().to_string(),
            "[B, T, C, H, W, D]".to_string(),
            "[B, T', C', H, W, D]".to_string(),
            "Patch encoder (Conv3D-equiv), Transformer encoder, patch decoder".to_string(),
            "Extracted hypercubes (structured)".to_string(),
            cnn_t.num_params().to_string(),
        ],
        vec![
            matey.name().to_string(),
            "[B, T, C, H, W, D]".to_string(),
            "[B, T', C', H, W, D]".to_string(),
            "Adaptive two-scale patch transformer (variance-gated tokens)".to_string(),
            "Extracted hypercubes (structured)".to_string(),
            matey.num_params().to_string(),
        ],
    ];
    print_table(&header, &rows);
    write_csv("table2_architectures.csv", &header, &rows);
    sickle_obs::info!(
        "table2",
        "B=batch, T=input window, T'=horizon, C/C'=in/out variables, N=points,"
    );
    sickle_obs::info!(
        "table2",
        "(H,W,D)=hypercube grid. Conv3D stride-p == patch-p embedding (DESIGN.md)."
    );
}
