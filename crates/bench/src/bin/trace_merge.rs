//! `trace_merge` — merges Chrome `trace_event` files from several
//! processes into one timeline:
//!
//! ```sh
//! trace_merge merged.json server_trace.json client_trace.json
//! ```
//!
//! Each input is a trace written via `SICKLE_TRACE` (or the exporter API).
//! Because every sickle trace uses absolute unix-microsecond timestamps
//! and real pids, concatenation is all that is needed: the merged file
//! loads in Perfetto as one aligned view with a track group per process,
//! and cross-process span parents (a server request under the client span
//! that issued it) resolve inside the single file. Run `trace_validate
//! --require-cross-process` on the output to check exactly that.

use sickle_obs::export::merge_chrome_traces;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_path) = args.next() else {
        eprintln!("usage: trace_merge <out.json> <in1.json> <in2.json> [...]");
        std::process::exit(2);
    };
    let inputs: Vec<String> = args.collect();
    if inputs.len() < 2 {
        eprintln!("trace_merge: need at least two input traces to merge");
        std::process::exit(2);
    }
    let texts: Vec<String> = inputs
        .iter()
        .map(|p| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("trace_merge: cannot read {p}: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    match merge_chrome_traces(&texts) {
        Ok(merged) => {
            if let Err(e) = std::fs::write(&out_path, merged) {
                eprintln!("trace_merge: cannot write {out_path}: {e}");
                std::process::exit(2);
            }
            println!("{out_path}: merged {} traces", inputs.len());
        }
        Err(e) => {
            eprintln!("trace_merge: {e}");
            std::process::exit(1);
        }
    }
}
