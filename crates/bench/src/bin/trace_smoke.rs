//! `trace_smoke` — small instrumented end-to-end run for trace validation:
//!
//! ```sh
//! SICKLE_TRACE=trace.json trace_smoke
//! ```
//!
//! Exercises all four instrumented layers at toy scale — one snapshot of
//! SST-P1F4 through the sampling pipeline, the same snapshot through the
//! 2-rank executor, a handful of pseudo-spectral steps, and a tiny LSTM
//! training run — so the emitted trace contains spans from
//! `sample.*`, `hpc.*`, `cfd.*`, and `train.*`. CI pipes the result into
//! `trace_validate`.

use sickle_bench::workloads;
use sickle_cfd::spectral::{SpectralConfig, SpectralSolver};
use sickle_core::pipeline::{run_dataset, CubeMethod, PointMethod};
use sickle_hpc::executor::run_with_ranks;
use sickle_train::data::TensorData;
use sickle_train::models::LstmModel;
use sickle_train::trainer::{train, TrainConfig};

fn main() {
    let _obs = sickle_bench::obs_init();

    // Sampling pipeline (sample.* spans, rayon phase-2 workers).
    let sst = workloads::sst_p1f4_small();
    let cfg = workloads::sampling_config(
        &sst,
        CubeMethod::MaxEnt,
        PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        4,
        8,
        7,
    );
    let out = run_dataset(&sst, &cfg);
    sickle_obs::info!(
        "trace_smoke",
        "sampled {} points from {} cubes",
        out.stats.points_out,
        out.stats.cubes_selected
    );

    // Rank executor (hpc.* spans across std::thread::scope threads).
    let snap = sst.snapshots.last().unwrap();
    let timing = run_with_ranks(snap, &cfg, 2);
    sickle_obs::info!(
        "trace_smoke",
        "2-rank run: {:.3}s, imbalance {:.2}",
        timing.elapsed_secs,
        timing.imbalance()
    );

    // Pseudo-spectral solver (cfd.* spans per substep).
    let mut solver = SpectralSolver::new(SpectralConfig {
        n: 16,
        ..Default::default()
    });
    solver.init_taylor_green(1.0);
    solver.run(3);
    sickle_obs::info!(
        "trace_smoke",
        "stepped spectral solver to t={:.2}",
        3.0 * 0.01
    );

    // Trainer (train.* spans with loss/grad-norm gauges).
    let tokens = 3;
    let features = 2;
    let n = 32;
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for i in 0..n {
        let mut sum = 0.0f32;
        for t in 0..tokens {
            for f in 0..features {
                let v = (((i * 7 + t * 3 + f) % 13) as f32) * 0.1 - 0.6;
                inputs.push(v);
                sum += v;
            }
        }
        targets.push(sum / (tokens * features) as f32);
    }
    let data = TensorData::new(inputs, targets, tokens, features, 1);
    let mut model = LstmModel::new(features, 8, 1, 0);
    let tcfg = TrainConfig {
        epochs: 3,
        batch: 8,
        ..Default::default()
    };
    let res = train(
        &mut model,
        &data,
        &tcfg,
        sickle_energy::MachineModel::frontier_gcd(),
    );
    sickle_obs::info!(
        "trace_smoke",
        "trained 3 epochs, final test loss {:.4}",
        res.final_test()
    );
}
