//! `trace_validate` — checks that a trace file emitted via `SICKLE_TRACE`
//! (or assembled by `trace_merge`) is well-formed:
//!
//! ```sh
//! trace_validate trace.json                       # Chrome trace_event format
//! trace_validate events.jsonl                     # JSONL event stream
//! trace_validate --require-cross-process merged.json
//! ```
//!
//! Validates (via `sickle_obs::export`): the file parses as JSON, every
//! span begin has a matching end, timestamps are monotone per (pid, tid)
//! track, required fields are present, and span parent links resolve
//! globally — across processes in a merged trace — without dangling ids
//! or cycles. `--require-cross-process` additionally demands that the
//! trace span at least two processes *and* contain at least one parent
//! link crossing a process boundary (the telemetry CI job runs this
//! against a merged client + server trace). Exits non-zero with a
//! diagnostic on the first violation.

use sickle_obs::export::{validate_chrome_trace, validate_jsonl};

fn main() {
    let mut path = None;
    let mut require_cross = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-cross-process" => require_cross = true,
            _ if path.is_none() => path = Some(arg),
            _ => path = None, // second positional → usage error below
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_validate [--require-cross-process] <trace.json | events.jsonl>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_validate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let result = if path.ends_with(".jsonl") {
        validate_jsonl(&text)
    } else {
        validate_chrome_trace(&text)
    };
    match result {
        Ok(stats) => {
            println!(
                "{path}: OK — {} events ({} spans, max depth {}, {} values, {} logs) \
                 across {} process(es), {} cross-process link(s)",
                stats.events,
                stats.spans,
                stats.max_depth,
                stats.values,
                stats.logs,
                stats.pids,
                stats.cross_process_links
            );
            if require_cross && (stats.pids < 2 || stats.cross_process_links == 0) {
                eprintln!(
                    "{path}: INVALID — expected a multi-process trace with cross-process \
                     span links, found {} process(es) and {} link(s)",
                    stats.pids, stats.cross_process_links
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
