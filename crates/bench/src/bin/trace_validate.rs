//! `trace_validate` — checks that a trace file emitted via `SICKLE_TRACE`
//! is well-formed:
//!
//! ```sh
//! trace_validate trace.json        # Chrome trace_event format
//! trace_validate events.jsonl      # JSONL event stream
//! ```
//!
//! Validates (via `sickle_obs::export`): the file parses as JSON, every
//! span begin has a matching end, timestamps are monotone per thread, and
//! required fields are present. Exits non-zero with a diagnostic on the
//! first violation — CI runs this against `trace_smoke`'s output.

use sickle_obs::export::{validate_chrome_trace, validate_jsonl};

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_validate <trace.json | events.jsonl>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_validate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let result = if path.ends_with(".jsonl") {
        validate_jsonl(&text)
    } else {
        validate_chrome_trace(&text)
    };
    match result {
        Ok(stats) => {
            println!(
                "{path}: OK — {} events ({} spans, max depth {}, {} values, {} logs)",
                stats.events, stats.spans, stats.max_depth, stats.values, stats.logs
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
