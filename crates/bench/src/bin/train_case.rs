//! `train_case` — the Rust mirror of the artifact's `train.py`:
//!
//! ```sh
//! train_case <case.json> [--ranks N]
//! train_case --builtin <case-name> [--ranks N]
//! ```
//!
//! Regenerates the case's dataset, reruns its sampling phase (the pipeline
//! is deterministic, so this matches whatever `subsample` wrote), builds
//! the architecture the config names, trains — with the thread-DDP
//! analogue when `--ranks > 1` — and prints the `Evaluation on test set`
//! and `Total Energy Consumed` lines the artifact's analysis greps.

use sickle_bench::cases::{builtin_cases, CaseConfig};
use sickle_core::pipeline::{run_dataset, PointMethod};
use sickle_energy::MachineModel;
use sickle_field::SampleSet;
use sickle_train::data::{dense_cube_data, reconstruction_data};
use sickle_train::ddp::train_ddp;
use sickle_train::models::{MateyMini, TokenTransformer};
use sickle_train::trainer::{train, TrainConfig};

fn usage() -> ! {
    eprintln!("usage: train_case <case.json> [--ranks N]");
    eprintln!("       train_case --builtin <name> [--ranks N]");
    std::process::exit(2);
}

fn main() {
    let _obs = sickle_bench::obs_init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let (case, rest) = if args[0] == "--builtin" {
        let name = args.get(1).cloned().unwrap_or_else(|| usage());
        let case = builtin_cases()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown builtin case '{name}'");
                std::process::exit(2);
            });
        (case, &args[2..])
    } else {
        let case = CaseConfig::load(&std::path::PathBuf::from(&args[0])).unwrap_or_else(|e| {
            eprintln!("failed to load {}: {e}", args[0]);
            std::process::exit(2);
        });
        (case, &args[1..])
    };
    let mut ranks = 1usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" => {
                ranks = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    sickle_obs::info!(
        "train_case",
        "case: {} (arch {})",
        case.name,
        case.train.arch
    );
    let dataset = case.dataset.build();
    let out = run_dataset(&dataset, &case.subsample);
    let sets: Vec<SampleSet> = out.sets.iter().flatten().cloned().collect();
    let target = case
        .train
        .target
        .clone()
        .or_else(|| dataset.meta.output_vars.first().cloned())
        .expect("case has no target variable");

    let structured =
        matches!(case.subsample.method, PointMethod::Full) || case.train.arch != "mlp_transformer";
    let mut tensor = if structured {
        dense_cube_data(
            &sets,
            &dataset.snapshots,
            case.subsample.cube_edge,
            &dataset.meta.input_vars,
            &target,
            case.train.patch,
        )
    } else {
        reconstruction_data(
            &sets,
            &dataset.snapshots,
            case.subsample.cube_edge,
            &target,
            case.train.tokens,
        )
    };
    tensor.standardize();
    sickle_obs::info!(
        "train_case",
        "tensors: {} samples x {} tokens x {} features -> {} outputs",
        tensor.n,
        tensor.tokens,
        tensor.features,
        tensor.outputs
    );

    let cfg = TrainConfig {
        epochs: case.train.epochs,
        batch: case.train.batch,
        lr: 1e-3,
        patience: 20,
        test_frac: 0.1,
        seed: case.subsample.seed,
        ..Default::default()
    };
    let dim = case.train.dim;
    let res = match case.train.arch.as_str() {
        "mlp_transformer" => {
            let mut m = TokenTransformer::mlp_transformer(
                tensor.tokens,
                tensor.features,
                dim,
                1,
                tensor.outputs,
                0,
            );
            if ranks > 1 {
                train_ddp(&mut m, &tensor, &cfg, ranks, MachineModel::frontier_gcd())
            } else {
                train(&mut m, &tensor, &cfg, MachineModel::frontier_gcd())
            }
        }
        "cnn_transformer" => {
            let mut m = TokenTransformer::cnn_transformer(
                tensor.tokens,
                tensor.features,
                dim,
                1,
                tensor.outputs,
                0,
            );
            if ranks > 1 {
                train_ddp(&mut m, &tensor, &cfg, ranks, MachineModel::frontier_gcd())
            } else {
                train(&mut m, &tensor, &cfg, MachineModel::frontier_gcd())
            }
        }
        "matey" => {
            let mut m = MateyMini::new(
                tensor.tokens,
                tensor.features,
                dim,
                1,
                tensor.outputs,
                0.25,
                0,
            );
            if ranks > 1 {
                train_ddp(&mut m, &tensor, &cfg, ranks, MachineModel::frontier_gcd())
            } else {
                train(&mut m, &tensor, &cfg, MachineModel::frontier_gcd())
            }
        }
        other => {
            eprintln!("unknown architecture '{other}'");
            std::process::exit(2);
        }
    };
    sickle_bench::require_finite(
        &format!("train_case {}", case.name),
        &[("test loss", res.best_test as f64)],
    );
    println!("params: {}", res.params);
    println!("Evaluation on test set: {:.6}", res.best_test);
    println!("{}", res.energy.log_lines());
}
