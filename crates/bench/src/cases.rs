//! Config-driven cases: the Rust mirror of the artifact's YAML workflow
//! (`srun -n 32 python subsample.py case.yaml` → `train.py case.yaml`).
//!
//! A [`CaseConfig`] JSON names the dataset *generator* (this reproduction
//! regenerates data instead of downloading the Zenodo archive), the
//! sampling configuration, and the training job. The `subsample` binary
//! executes the sampling phase and writes `.skls` sample sets plus the
//! energy log; the `train` binary executes the training phase and prints
//! the same `Evaluation on test set` / `Total Energy Consumed` lines the
//! paper's scripts grep for.

use serde::{Deserialize, Serialize};
use sickle_cfd::datasets::{self, GestsParams, Of2dParams, SstParams};
use sickle_cfd::{CombustionConfig, LbmConfig};
use sickle_core::pipeline::SamplingConfig;
use sickle_field::Dataset;

/// Which substrate generates the case's data, with its scale knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum DatasetSpec {
    /// LBM cylinder flow.
    Of2d {
        /// Lattice extent x.
        nx: usize,
        /// Lattice extent y.
        ny: usize,
        /// Recorded snapshots.
        snapshots: usize,
    },
    /// Combustion surrogate.
    Tc2d {
        /// Grid edge (square).
        n: usize,
    },
    /// Decaying stratified Taylor–Green.
    SstP1f4 {
        /// Grid points per side.
        n: usize,
        /// Snapshots.
        snapshots: usize,
    },
    /// Forced stratified turbulence.
    SstP1f100 {
        /// Grid points per side.
        n: usize,
        /// Snapshots.
        snapshots: usize,
    },
    /// Forced isotropic turbulence.
    Gests {
        /// Grid points per side.
        n: usize,
    },
}

impl DatasetSpec {
    /// Generates the dataset (deterministic).
    pub fn build(&self) -> Dataset {
        match *self {
            DatasetSpec::Of2d { nx, ny, snapshots } => {
                datasets::of2d(&Of2dParams {
                    lbm: LbmConfig {
                        nx,
                        ny,
                        diameter: (ny / 6) as f64,
                        ..Default::default()
                    },
                    warmup: 1200,
                    snapshots,
                    interval: 40,
                })
                .dataset
            }
            DatasetSpec::Tc2d { n } => datasets::tc2d(
                &CombustionConfig {
                    nx: n,
                    ny: n,
                    ..Default::default()
                },
                0,
            ),
            DatasetSpec::SstP1f4 { n, snapshots } => datasets::sst_p1f4(&SstParams {
                n,
                snapshots,
                interval: 6,
                warmup: 12,
                ..Default::default()
            }),
            DatasetSpec::SstP1f100 { n, snapshots } => datasets::sst_p1f100(&SstParams {
                n,
                snapshots,
                interval: 6,
                warmup: 12,
                ..Default::default()
            }),
            DatasetSpec::Gests { n } => datasets::gests(
                &GestsParams {
                    n,
                    spinup: 20,
                    ..Default::default()
                },
                42,
            ),
        }
    }
}

/// Training-phase settings (the config's `train:` block).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainSpec {
    /// Architecture: `"mlp_transformer"`, `"cnn_transformer"`, or `"matey"`.
    pub arch: String,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Target variable (defaults to the dataset's first output).
    #[serde(default)]
    pub target: Option<String>,
    /// Token count for unstructured (sampled) inputs.
    #[serde(default = "default_tokens")]
    pub tokens: usize,
    /// Patch edge for structured (dense) inputs.
    #[serde(default = "default_patch")]
    pub patch: usize,
    /// Model width.
    #[serde(default = "default_dim")]
    pub dim: usize,
}

fn default_tokens() -> usize {
    64
}
fn default_patch() -> usize {
    2
}
fn default_dim() -> usize {
    32
}

/// One complete case file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseConfig {
    /// Case name (used for output file prefixes).
    pub name: String,
    /// Dataset generator.
    pub dataset: DatasetSpec,
    /// Sampling phase (the `subsample:` block).
    pub subsample: SamplingConfig,
    /// Training phase (the `train:` block).
    pub train: TrainSpec,
}

impl CaseConfig {
    /// Parses a case from JSON.
    ///
    /// # Errors
    /// Returns the serde error message on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Loads a case from a file path.
    ///
    /// # Errors
    /// Returns I/O or parse errors as strings.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&text)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }
}

/// The built-in case library, mirroring the artifact's
/// `contrib/configs/SST/P1/*.yaml` set at reproduction scale.
pub fn builtin_cases() -> Vec<CaseConfig> {
    use sickle_core::pipeline::{CubeMethod, PointMethod};
    let sst = DatasetSpec::SstP1f4 {
        n: 32,
        snapshots: 4,
    };
    let combos = [
        (
            "Hmaxent-Xmaxent-16",
            CubeMethod::MaxEnt,
            PointMethod::MaxEnt {
                num_clusters: 20,
                bins: 100,
            },
        ),
        (
            "Hmaxent-Xuips-16",
            CubeMethod::MaxEnt,
            PointMethod::Uips { bins_per_dim: 10 },
        ),
        ("Hrandom-Xfull-16", CubeMethod::Random, PointMethod::Full),
        (
            "Hrandom-Xmaxent-16",
            CubeMethod::Random,
            PointMethod::MaxEnt {
                num_clusters: 20,
                bins: 100,
            },
        ),
        (
            "Hrandom-Xuips-16",
            CubeMethod::Random,
            PointMethod::Uips { bins_per_dim: 10 },
        ),
    ];
    combos
        .into_iter()
        .map(|(name, h, x)| CaseConfig {
            name: name.to_string(),
            dataset: sst.clone(),
            subsample: SamplingConfig {
                hypercubes: h,
                num_hypercubes: 8,
                cube_edge: 16,
                method: x,
                num_samples: 410,
                cluster_var: "pv".into(),
                feature_vars: vec!["u".into(), "v".into(), "w".into(), "r".into()],
                seed: 0,
                temporal: sickle_core::pipeline::TemporalMethod::All,
            },
            train: TrainSpec {
                arch: if matches!(x, PointMethod::Full) {
                    "cnn_transformer".into()
                } else {
                    "mlp_transformer".into()
                },
                epochs: 20,
                batch: 4,
                target: Some("p".into()),
                tokens: 64,
                patch: 2,
                dim: 32,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_cases_match_paper_slurm_list() {
        let names: Vec<String> = builtin_cases().iter().map(|c| c.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "Hmaxent-Xmaxent-16",
                "Hmaxent-Xuips-16",
                "Hrandom-Xfull-16",
                "Hrandom-Xmaxent-16",
                "Hrandom-Xuips-16"
            ]
        );
    }

    #[test]
    fn case_json_roundtrip() {
        for case in builtin_cases() {
            let json = case.to_json();
            let back = CaseConfig::from_json(&json).unwrap();
            assert_eq!(back.name, case.name);
            assert_eq!(back.subsample.case_name(), case.subsample.case_name());
            assert_eq!(back.train.arch, case.train.arch);
        }
    }

    #[test]
    fn tiny_dataset_specs_build() {
        let d = DatasetSpec::Tc2d { n: 32 }.build();
        assert_eq!(d.meta.label, "TC2D");
        let d = DatasetSpec::SstP1f4 {
            n: 16,
            snapshots: 2,
        }
        .build();
        assert_eq!(d.num_snapshots(), 2);
    }

    #[test]
    fn malformed_json_is_a_clean_error() {
        assert!(CaseConfig::from_json("{not json").is_err());
        assert!(CaseConfig::from_json("{}").is_err());
    }
}
