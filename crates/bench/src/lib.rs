//! # sickle-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (see `src/bin/`), plus Criterion micro-benchmarks
//! (`benches/`). This library holds the shared experiment plumbing so the
//! binaries stay thin and the logic is unit-testable.
//!
//! | Binary | Paper element |
//! |---|---|
//! | `table1_datasets` | Table 1 (dataset inventory) |
//! | `table2_architectures` | Table 2 (architectures, parameter counts) |
//! | `fig1_of2d_sampling` | Figs. 1 & 3 (OF2D sampling visualisation + wake coverage) |
//! | `fig4_uips_clumping` | Fig. 4 (UIPS uniform on TC2D vs clumping on SST) |
//! | `fig5_pdf_comparison` | Fig. 5 (PDF/tail fidelity across methods) |
//! | `fig6_drag_surrogate` | Fig. 6 (drag surrogate accuracy, MaxEnt vs random, 3 seeds) |
//! | `fig7_scalability` | Fig. 7 (strong scaling 1–512 ranks, knee) |
//! | `fig8_loss_vs_energy` | Fig. 8 (training loss vs energy, 5 configs × 3 datasets) |
//! | `fig9_matey` | Fig. 9 (MATEY-mini, uniform/random/maxent at 10%) |
//! | `eq3_cost_model` | Eq. 3 (cost-model validation sweep) |

use std::io::Write;
use std::path::PathBuf;

use sickle_core::pipeline::{SamplingConfig, SamplingStats};
use sickle_energy::{EnergyMeter, EnergyReport, MachineModel};

pub mod cases;
pub mod workloads;

/// RAII observability session for the figure binaries: flushes the
/// `SICKLE_TRACE` file (if any) when dropped at the end of `main`.
pub struct ObsSession;

impl Drop for ObsSession {
    fn drop(&mut self) {
        sickle_obs::finish();
    }
}

/// Reads `SICKLE_TRACE` / `SICKLE_LOG` and returns the guard every binary
/// holds for the duration of `main`:
///
/// ```ignore
/// let _obs = sickle_bench::obs_init();
/// ```
pub fn obs_init() -> ObsSession {
    sickle_obs::init_from_env();
    ObsSession
}

/// Directory where figure binaries drop their CSV outputs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SICKLE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("failed to create results directory");
    path
}

/// Writes a CSV result table and echoes the path.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("failed to create CSV");
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    println!("  wrote {}", path.display());
    path
}

/// Prints an aligned ASCII table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:<w$}  "));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Models the energy of a sampling run from its pipeline statistics: the
/// dominant kernels are the k-means/binning passes (≈ `2 · clusters` FLOPs
/// per scanned point per feature) and reading the dense points once.
/// Matches the paper's accounting, where sampling energy comes from the CPU
/// counters of `subsample.py`.
pub fn sampling_energy(stats: &SamplingStats, cfg: &SamplingConfig) -> EnergyReport {
    let meter = EnergyMeter::new(MachineModel::frontier_cpu_rank());
    let nvars = cfg.feature_vars.len().max(1) as u64;
    let clusters = match cfg.method {
        sickle_core::pipeline::PointMethod::MaxEnt { num_clusters, .. } => num_clusters as u64,
        _ => 4, // binning/stride methods touch each point a few times
    };
    // Phase 2: clustering/binning over the selected cubes' points.
    meter.record_flops(stats.points_in as u64 * nvars * 2 * clusters);
    meter.record_bytes(stats.points_in as u64 * nvars * 8);
    // Phase 1: one full scan of the dense snapshots for cube scoring.
    meter.record_flops(stats.phase1_points as u64 * 4);
    meter.record_bytes(stats.phase1_points as u64 * 8);
    meter.report()
}

/// True when every named value is finite — the testable core of
/// [`require_finite`].
pub fn all_finite(values: &[(&str, f64)]) -> bool {
    values.iter().all(|(_, v)| v.is_finite())
}

/// Aborts the benchmark binary with exit code 1 when any named value is
/// non-finite. Training-loss NaNs must fail the run loudly, not flow into
/// CSVs and JSON reports as `NaN` cells that plot as gaps.
pub fn require_finite(context: &str, values: &[(&str, f64)]) {
    if all_finite(values) {
        return;
    }
    for (name, v) in values {
        if !v.is_finite() {
            eprintln!("error: {context}: {name} is {v} (non-finite)");
        }
    }
    std::process::exit(1);
}

/// Convenience: mean and (population) standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_core::pipeline::{CubeMethod, PointMethod};

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn all_finite_flags_nan_and_infinity() {
        assert!(all_finite(&[("loss", 0.5), ("val", 1.0e9)]));
        assert!(!all_finite(&[("loss", f64::NAN)]));
        assert!(!all_finite(&[("loss", 0.5), ("val", f64::INFINITY)]));
        assert!(!all_finite(&[("loss", f64::NEG_INFINITY)]));
        assert!(all_finite(&[]));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(12345.0).contains('e'));
        assert_eq!(fmt(1.5), "1.5000");
    }

    #[test]
    fn sampling_energy_scales_with_points() {
        let cfg = SamplingConfig {
            hypercubes: CubeMethod::Random,
            num_hypercubes: 1,
            cube_edge: 8,
            method: PointMethod::MaxEnt {
                num_clusters: 10,
                bins: 50,
            },
            num_samples: 10,
            cluster_var: "q".into(),
            feature_vars: vec!["q".into()],
            seed: 0,
            temporal: sickle_core::pipeline::TemporalMethod::All,
        };
        let small = SamplingStats {
            points_in: 1000,
            points_out: 100,
            cubes_selected: 1,
            phase1_points: 0,
            elapsed_secs: 0.1,
        };
        let big = SamplingStats {
            points_in: 100_000,
            points_out: 100,
            cubes_selected: 1,
            phase1_points: 0,
            elapsed_secs: 0.1,
        };
        let e_small = sampling_energy(&small, &cfg).total_joules();
        let e_big = sampling_energy(&big, &cfg).total_joules();
        assert!((e_big / e_small - 100.0).abs() < 1.0);
    }
}
