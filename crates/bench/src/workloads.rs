//! Canned reproduction-scale workloads shared by the figure binaries.
//!
//! The paper's datasets span 31 MB – 12 TB; each figure here uses the same
//! physics at a size that regenerates in minutes on CPU. Grids and budgets
//! keep the paper's *ratios* (10% sampling, 32³-style cubes scaled to 16³,
//! ~10 : 1 full-to-sampled energy gaps).

use sickle_cfd::datasets::{self, GestsParams, Of2dData, Of2dParams, SstParams};
use sickle_cfd::{CombustionConfig, LbmConfig};
use sickle_core::pipeline::{CubeMethod, PointMethod, SamplingConfig};
use sickle_field::Dataset;

/// OF2D at bench scale: 160×64 lattice, 60 shedding-resolved snapshots.
pub fn of2d_small() -> Of2dData {
    datasets::of2d(&Of2dParams {
        lbm: LbmConfig {
            nx: 160,
            ny: 64,
            diameter: 10.0,
            reynolds: 150.0,
            ..Default::default()
        },
        warmup: 1500,
        snapshots: 60,
        interval: 40,
    })
}

/// TC2D at bench scale: 128² combustion surrogate.
pub fn tc2d_small(seed: u64) -> Dataset {
    datasets::tc2d(&CombustionConfig::default(), seed)
}

/// SST-P1F4 at bench scale: 32³ decaying stratified Taylor–Green, 6 snaps.
pub fn sst_p1f4_small() -> Dataset {
    datasets::sst_p1f4(&SstParams {
        n: 32,
        snapshots: 6,
        interval: 8,
        warmup: 16,
        ..Default::default()
    })
}

/// SST-P1F100 at bench scale: 32³ forced stratified turbulence, 6 snaps.
pub fn sst_p1f100_small() -> Dataset {
    datasets::sst_p1f100(&SstParams {
        n: 32,
        snapshots: 6,
        interval: 8,
        warmup: 16,
        ..Default::default()
    })
}

/// GESTS at bench scale: 32³ forced isotropic turbulence, one snapshot.
pub fn gests_small() -> Dataset {
    datasets::gests(
        &GestsParams {
            n: 32,
            spinup: 20,
            ..Default::default()
        },
        42,
    )
}

/// SST-P1F4 at figure-8 scale: 64³ so the 16³ tiling yields 64 hypercubes
/// and phase-1 selection (8 of 64) genuinely differentiates Hmaxent from
/// Hrandom.
pub fn sst_p1f4_medium() -> Dataset {
    datasets::sst_p1f4(&SstParams {
        n: 64,
        snapshots: 4,
        interval: 5,
        warmup: 10,
        ..Default::default()
    })
}

/// SST-P1F100 at figure-8 scale (64³ forced stratified).
pub fn sst_p1f100_medium() -> Dataset {
    datasets::sst_p1f100(&SstParams {
        n: 64,
        snapshots: 4,
        interval: 5,
        warmup: 10,
        ..Default::default()
    })
}

/// GESTS at figure-8 scale (64³ forced isotropic, one snapshot).
pub fn gests_medium() -> Dataset {
    datasets::gests(
        &GestsParams {
            n: 64,
            spinup: 15,
            ..Default::default()
        },
        42,
    )
}

/// Builds a `H<h>-X<x>` sampling configuration for a dataset at a 10% point
/// budget over `cube_edge`-sized cubes (the paper's standard setup).
pub fn sampling_config(
    dataset: &Dataset,
    hypercubes: CubeMethod,
    method: PointMethod,
    cube_edge: usize,
    num_hypercubes: usize,
    seed: u64,
) -> SamplingConfig {
    let dims: u32 = if dataset.grid().nz == 1 { 2 } else { 3 };
    let cube_points = cube_edge.pow(dims);
    let mut feature_vars = dataset.meta.input_vars.clone();
    for v in &dataset.meta.output_vars {
        if !feature_vars.contains(v) {
            feature_vars.push(v.clone());
        }
    }
    SamplingConfig {
        hypercubes,
        num_hypercubes,
        cube_edge,
        method,
        num_samples: (cube_points / 10).max(1),
        cluster_var: dataset.meta.cluster_var.clone(),
        feature_vars,
        seed,
        temporal: sickle_core::pipeline::TemporalMethod::All,
    }
}

/// The five Fig.-7/8 case names and their (H, X) methods.
pub fn fig8_cases() -> Vec<(&'static str, CubeMethod, PointMethod)> {
    vec![
        (
            "Hmaxent-Xmaxent",
            CubeMethod::MaxEnt,
            PointMethod::MaxEnt {
                num_clusters: 20,
                bins: 100,
            },
        ),
        (
            "Hmaxent-Xuips",
            CubeMethod::MaxEnt,
            PointMethod::Uips { bins_per_dim: 10 },
        ),
        ("Hrandom-Xfull", CubeMethod::Random, PointMethod::Full),
        (
            "Hrandom-Xmaxent",
            CubeMethod::Random,
            PointMethod::MaxEnt {
                num_clusters: 20,
                bins: 100,
            },
        ),
        (
            "Hrandom-Xuips",
            CubeMethod::Random,
            PointMethod::Uips { bins_per_dim: 10 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_config_uses_table1_metadata() {
        let d = tc2d_small(0);
        let cfg = sampling_config(&d, CubeMethod::Random, PointMethod::Random, 16, 4, 0);
        assert_eq!(cfg.cluster_var, "C");
        assert_eq!(cfg.num_samples, 25); // 16^2 / 10 (2D)
        assert!(cfg.feature_vars.contains(&"Cvar".to_string()));
    }

    #[test]
    fn fig8_cases_match_paper_slurm_script() {
        let names: Vec<&str> = fig8_cases().iter().map(|c| c.0).collect();
        assert_eq!(
            names,
            vec![
                "Hmaxent-Xmaxent",
                "Hmaxent-Xuips",
                "Hrandom-Xfull",
                "Hrandom-Xmaxent",
                "Hrandom-Xuips"
            ]
        );
    }
}
