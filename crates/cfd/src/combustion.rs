//! Surrogate for the **TC2D** 2D turbulent-combustion dataset.
//!
//! The original (Hassanaly et al.'s phase-space-sampling test case) is a
//! downsampled premixed-flame DNS providing a progress variable `C` and its
//! filtered variance `Cvar`. Its defining property for sampling studies is a
//! *bimodal* joint PDF: most points sit in burnt (`C ≈ 1`) or unburnt
//! (`C ≈ 0`) regions with a thin, rare, high-variance flame front between —
//! exactly the structure UIPS samples well (paper Fig. 4, left).
//!
//! The surrogate reproduces that structure from first principles: a
//! synthetic turbulent mixture-fraction field is passed through a flamelet
//! manifold `C = (1 + tanh((Z − Z_st)/δ))/2`, and the subgrid variance is a
//! box-filtered second moment.

use rayon::prelude::*;
use sickle_field::{Grid3, Snapshot};

use crate::synth::{self, SynthConfig};

/// Configuration for the TC2D surrogate.
#[derive(Clone, Copy, Debug)]
pub struct CombustionConfig {
    /// Grid points along x (power of two).
    pub nx: usize,
    /// Grid points along y (power of two).
    pub ny: usize,
    /// Stoichiometric mixture fraction (flame-front location in Z space).
    pub z_st: f64,
    /// Flame-front thickness in Z space; smaller = thinner front = more
    /// bimodal.
    pub delta: f64,
    /// Half-width of the box filter used for the subgrid variance.
    pub filter_radius: usize,
}

impl Default for CombustionConfig {
    fn default() -> Self {
        CombustionConfig {
            nx: 128,
            ny: 128,
            z_st: 0.0,
            delta: 0.25,
            filter_radius: 2,
        }
    }
}

/// Box filter with periodic wrapping (separable two-pass).
fn box_filter(grid: &Grid3, f: &[f64], radius: usize) -> Vec<f64> {
    let (nx, ny) = (grid.nx, grid.ny);
    let r = radius as isize;
    let count = (2 * radius + 1) as f64;
    // Pass 1: along y.
    let mut tmp = vec![0.0; f.len()];
    tmp.par_chunks_mut(ny).enumerate().for_each(|(x, row)| {
        for (y, o) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for dy in -r..=r {
                let yy = (y as isize + dy).rem_euclid(ny as isize) as usize;
                acc += f[x * ny + yy];
            }
            *o = acc / count;
        }
    });
    // Pass 2: along x.
    let mut out = vec![0.0; f.len()];
    out.par_chunks_mut(ny).enumerate().for_each(|(x, row)| {
        for (y, o) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for dx in -r..=r {
                let xx = (x as isize + dx).rem_euclid(nx as isize) as usize;
                acc += tmp[xx * ny + y];
            }
            *o = acc / count;
        }
    });
    out
}

/// Generates a TC2D-like snapshot with variables `C` (progress variable) and
/// `Cvar` (filtered subgrid variance of `C`). Deterministic under `seed`.
pub fn generate(cfg: &CombustionConfig, seed: u64) -> Snapshot {
    // Synthetic 2D mixture-fraction field: use the 3D generator with nz = 1.
    let synth_cfg = SynthConfig {
        nx: cfg.nx,
        ny: cfg.ny,
        nz: 1,
        urms: 1.0,
        anisotropy: 0.0,
        ..Default::default()
    };
    let zfield_snap = synth::generate(&synth_cfg, seed);
    let z = zfield_snap.expect_var("u");
    let grid = Grid3::new(cfg.nx, cfg.ny, 1, 1.0, 1.0, 1.0);

    let c: Vec<f64> = z
        .par_iter()
        .map(|&zv| 0.5 * (1.0 + ((zv - cfg.z_st) / cfg.delta).tanh()))
        .collect();
    let c2: Vec<f64> = c.par_iter().map(|&v| v * v).collect();
    let c_f = box_filter(&grid, &c, cfg.filter_radius);
    let c2_f = box_filter(&grid, &c2, cfg.filter_radius);
    let cvar: Vec<f64> = c2_f
        .par_iter()
        .zip(c_f.par_iter())
        .map(|(&m2, &m1)| (m2 - m1 * m1).max(0.0))
        .collect();

    Snapshot::new(grid, 0.0)
        .with_var("C", c)
        .with_var("Cvar", cvar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_field::Histogram;

    #[test]
    fn progress_variable_in_unit_interval() {
        let snap = generate(&CombustionConfig::default(), 1);
        let c = snap.expect_var("C");
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn progress_variable_is_bimodal() {
        // Most mass near 0 and 1, little in the middle — the defining TC2D
        // property the surrogate must reproduce.
        let cfg = CombustionConfig {
            delta: 0.1,
            ..Default::default()
        };
        let snap = generate(&cfg, 2);
        let h = Histogram::of(snap.expect_var("C"), 10);
        let p = h.pmf();
        let edges = p[0] + p[9];
        let middle: f64 = p[4] + p[5];
        assert!(edges > 4.0 * middle, "edges {edges} middle {middle}");
    }

    #[test]
    fn variance_peaks_at_flame_front() {
        let snap = generate(&CombustionConfig::default(), 3);
        let c = snap.expect_var("C");
        let cvar = snap.expect_var("Cvar");
        // Average variance where C ~ 0.5 must exceed variance where C ~ 0 or 1.
        let mut front = (0.0, 0);
        let mut burnt = (0.0, 0);
        for (ci, vi) in c.iter().zip(cvar.iter()) {
            if (ci - 0.5).abs() < 0.2 {
                front = (front.0 + vi, front.1 + 1);
            } else if *ci > 0.95 || *ci < 0.05 {
                burnt = (burnt.0 + vi, burnt.1 + 1);
            }
        }
        assert!(front.1 > 0 && burnt.1 > 0);
        let front_mean = front.0 / front.1 as f64;
        let burnt_mean = burnt.0 / burnt.1 as f64;
        assert!(
            front_mean > 5.0 * burnt_mean,
            "front {front_mean} vs burnt {burnt_mean}"
        );
    }

    #[test]
    fn variance_nonnegative() {
        let snap = generate(&CombustionConfig::default(), 4);
        assert!(snap.expect_var("Cvar").iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn box_filter_preserves_constant() {
        let grid = Grid3::new(8, 8, 1, 1.0, 1.0, 1.0);
        let f = vec![2.0; 64];
        let out = box_filter(&grid, &f, 2);
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn box_filter_smooths_impulse() {
        let grid = Grid3::new(16, 16, 1, 1.0, 1.0, 1.0);
        let mut f = vec![0.0; 256];
        f[grid.idx(8, 8, 0)] = 1.0;
        let out = box_filter(&grid, &f, 1);
        // Impulse spreads over a 3x3 neighborhood with weight 1/9.
        assert!((out[grid.idx(8, 8, 0)] - 1.0 / 9.0).abs() < 1e-12);
        assert!((out[grid.idx(7, 8, 0)] - 1.0 / 9.0).abs() < 1e-12);
        assert!((out[grid.idx(10, 8, 0)]).abs() < 1e-12);
        // Mass conserved.
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
