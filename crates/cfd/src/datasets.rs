//! Canned dataset constructors mirroring the paper's Table 1.
//!
//! Each constructor returns a [`Dataset`] whose metadata row (label, K-means
//! cluster variable, input/output variables) matches Table 1, built at
//! *reproduction scale* — the grids are smaller than the originals (which
//! range to 12 TB), but every variable, derived quantity, and statistical
//! property the samplers consume is present. `scale` parameters let the
//! benchmarks grow the datasets for scaling studies.

use rayon::prelude::*;
use sickle_field::derived::{dissipation, enstrophy, potential_vorticity, vorticity_3d};
use sickle_field::{Axis, Dataset, DatasetMeta, Snapshot};

use crate::combustion::{self, CombustionConfig};
use crate::lbm2d::{CylinderFlow, LbmConfig};
use crate::spectral::{Forcing, SpectralConfig, SpectralSolver, Stratification};
use crate::synth::{self, SpectrumKind, SynthConfig};

/// OF2D generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct Of2dParams {
    /// Lattice configuration.
    pub lbm: LbmConfig,
    /// Steps to discard before recording (wake spin-up).
    pub warmup: usize,
    /// Number of recorded snapshots.
    pub snapshots: usize,
    /// Lattice steps between snapshots.
    pub interval: usize,
}

impl Default for Of2dParams {
    fn default() -> Self {
        Of2dParams {
            lbm: LbmConfig::default(),
            warmup: 2000,
            snapshots: 100,
            interval: 50,
        }
    }
}

/// The OF2D dataset plus its per-snapshot drag/lift targets (the paper's
/// global-prediction `sample-single` task maps field samples to drag).
#[derive(Clone, Debug)]
pub struct Of2dData {
    /// Field snapshots with `u, v, p, wz`.
    pub dataset: Dataset,
    /// Drag coefficient at each snapshot.
    pub drag: Vec<f64>,
    /// Lift force at each snapshot.
    pub lift: Vec<f64>,
}

/// Generates the OF2D analogue: unsteady LBM cylinder flow with vortex
/// shedding, recording `u, v, p, wz` snapshots and the drag signal.
pub fn of2d(params: &Of2dParams) -> Of2dData {
    let mut sim = CylinderFlow::new(params.lbm);
    sim.run(params.warmup);
    let meta = DatasetMeta::new(
        "OF2D",
        "2D flow over cylinder (LBM analogue of the OpenFOAM case)",
        "wz",
        &["u", "v"],
        &["D"],
    );
    let mut dataset = Dataset::new(meta);
    let mut drag = Vec::with_capacity(params.snapshots);
    let mut lift = Vec::with_capacity(params.snapshots);
    for s in 0..params.snapshots {
        sim.run(params.interval);
        dataset.push(sim.snapshot((params.warmup + (s + 1) * params.interval) as f64));
        drag.push(sim.drag_coefficient());
        lift.push(sim.lift());
    }
    Of2dData {
        dataset,
        drag,
        lift,
    }
}

/// Generates the TC2D analogue: one snapshot of progress variable `C` and
/// filtered variance `Cvar`.
pub fn tc2d(cfg: &CombustionConfig, seed: u64) -> Dataset {
    let meta = DatasetMeta::new(
        "TC2D",
        "2D turbulent combustion (flamelet-manifold surrogate)",
        "C",
        &["C", "Cvar"],
        &[],
    );
    let mut d = Dataset::new(meta);
    d.push(combustion::generate(cfg, seed));
    d
}

/// SST generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SstParams {
    /// Grid points per side.
    pub n: usize,
    /// Brunt–Väisälä frequency (stratification strength).
    pub n_bv: f64,
    /// Recorded snapshots.
    pub snapshots: usize,
    /// Solver steps between snapshots.
    pub interval: usize,
    /// Solver steps before the first snapshot.
    pub warmup: usize,
    /// Time step.
    pub dt: f64,
    /// Kinematic viscosity.
    pub viscosity: f64,
}

impl Default for SstParams {
    fn default() -> Self {
        SstParams {
            n: 32,
            n_bv: 2.0,
            snapshots: 8,
            interval: 10,
            warmup: 20,
            dt: 0.01,
            viscosity: 0.02,
        }
    }
}

fn add_sst_derived(snap: &mut Snapshot) {
    let grid = snap.grid;
    let u = snap.expect_var("u").to_vec();
    let v = snap.expect_var("v").to_vec();
    let w = snap.expect_var("w").to_vec();
    let r = snap.expect_var("r").to_vec();
    let pv = potential_vorticity(&grid, &u, &v, &w, &r);
    snap.push_var("pv", pv);
}

/// Generates the SST-P1F4 analogue: decaying Taylor–Green flow under
/// Boussinesq stratification, with snapshots of `u, v, w, p, r` plus the
/// derived potential vorticity `pv` (the Table-1 cluster variable).
pub fn sst_p1f4(params: &SstParams) -> Dataset {
    let cfg = SpectralConfig {
        n: params.n,
        viscosity: params.viscosity,
        diffusivity: params.viscosity,
        dt: params.dt,
        stratification: Stratification::Boussinesq {
            n_bv: params.n_bv,
            gravity: Axis::Z,
        },
        forcing: None,
    };
    let mut solver = SpectralSolver::new(cfg);
    solver.init_taylor_green(1.0);
    solver.run(params.warmup);
    let meta = DatasetMeta::new(
        "SST-P1F4",
        "3D Taylor-Green time-evolving stratified turbulence (Pr = 1)",
        "pv",
        &["u", "v", "w", "r"],
        &["p"],
    )
    .with_gravity(Axis::Z);
    let mut d = Dataset::new(meta);
    for _ in 0..params.snapshots {
        solver.run(params.interval);
        let mut snap = solver.snapshot();
        add_sst_derived(&mut snap);
        d.push(snap);
    }
    d
}

/// Generates the SST-P1F100 analogue: *forced* stratified turbulence, with
/// snapshots of `u, v, w, p, r` plus the dissipation rate `ee` (the Table-1
/// output variable) and density as the cluster variable.
pub fn sst_p1f100(params: &SstParams) -> Dataset {
    let cfg = SpectralConfig {
        n: params.n,
        viscosity: params.viscosity,
        diffusivity: params.viscosity,
        dt: params.dt,
        stratification: Stratification::Boussinesq {
            n_bv: params.n_bv,
            gravity: Axis::Y,
        },
        forcing: Some(Forcing { k_f: 2.0 }),
    };
    let mut solver = SpectralSolver::new(cfg);
    solver.init_taylor_green(1.0);
    solver.run(params.warmup);
    let meta = DatasetMeta::new(
        "SST-P1F100",
        "3D forced stratified turbulence",
        "r",
        &["u", "v", "w", "r"],
        &["ee"],
    )
    .with_gravity(Axis::Y);
    let mut d = Dataset::new(meta);
    let nu = params.viscosity;
    for _ in 0..params.snapshots {
        solver.run(params.interval);
        let mut snap = solver.snapshot();
        let grid = snap.grid;
        let ee = dissipation(
            &grid,
            snap.expect_var("u"),
            snap.expect_var("v"),
            snap.expect_var("w"),
            nu,
        );
        snap.push_var("ee", ee);
        d.push(snap);
    }
    d
}

/// GESTS generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GestsParams {
    /// Grid points per side.
    pub n: usize,
    /// Spin-up steps of forced evolution before the snapshot.
    pub spinup: usize,
    /// Time step.
    pub dt: f64,
    /// Kinematic viscosity.
    pub viscosity: f64,
}

impl Default for GestsParams {
    fn default() -> Self {
        GestsParams {
            n: 32,
            spinup: 30,
            dt: 0.01,
            viscosity: 0.02,
        }
    }
}

/// Generates the GESTS analogue: forced isotropic turbulence, one snapshot
/// with `u, v, w, p` plus dissipation `eps` (input) and enstrophy `omega`
/// (the Table-1 cluster variable Ω).
pub fn gests(params: &GestsParams, seed: u64) -> Dataset {
    let cfg = SpectralConfig {
        n: params.n,
        viscosity: params.viscosity,
        diffusivity: params.viscosity,
        dt: params.dt,
        stratification: Stratification::None,
        forcing: Some(Forcing { k_f: 2.5 }),
    };
    let mut solver = SpectralSolver::new(cfg);
    // Start from a synthetic isotropic field for faster spin-up to
    // statistically developed turbulence.
    let syn = synth::generate(
        &SynthConfig {
            nx: params.n,
            ny: params.n,
            nz: params.n,
            spectrum: SpectrumKind::PeakedK4 { k_peak: 3.0 },
            urms: 1.0,
            anisotropy: 0.0,
            ..Default::default()
        },
        seed,
    );
    solver.set_velocity(
        syn.expect_var("u"),
        syn.expect_var("v"),
        syn.expect_var("w"),
    );
    solver.run(params.spinup);
    let mut snap = solver.snapshot();
    let grid = snap.grid;
    let u = snap.expect_var("u").to_vec();
    let v = snap.expect_var("v").to_vec();
    let w = snap.expect_var("w").to_vec();
    let eps = dissipation(&grid, &u, &v, &w, params.viscosity);
    let (wx, wy, wz) = vorticity_3d(&grid, &u, &v, &w);
    let omega = enstrophy(&wx, &wy, &wz);
    snap.push_var("eps", eps);
    snap.push_var("omega", omega);
    let meta = DatasetMeta::new(
        "GESTS",
        "3D forced isotropic turbulence (GESTS analogue)",
        "omega",
        &["u", "v", "w", "eps"],
        &["p"],
    );
    let mut d = Dataset::new(meta);
    d.push(snap);
    d
}

/// Generates a large *synthetic* stratified snapshot (no time stepping) for
/// scalability studies: `u, v, w, r` plus potential vorticity `pv`.
/// This stands in for SST-P1F100's bulk data volume.
pub fn synthetic_sst_snapshot(n: usize, anisotropy: f64, seed: u64) -> Snapshot {
    let cfg = SynthConfig {
        nx: n,
        ny: n,
        nz: n,
        spectrum: SpectrumKind::PeakedK4 { k_peak: 4.0 },
        urms: 1.0,
        anisotropy,
        gravity: Axis::Z,
    };
    let mut snap = synth::generate(&cfg, seed);
    add_sst_derived(&mut snap);
    snap
}

/// Summary row matching the paper's Table 1 layout.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Dataset label.
    pub label: String,
    /// Description.
    pub description: String,
    /// Grid extents.
    pub space: String,
    /// Number of snapshots.
    pub time: usize,
    /// Human-readable size.
    pub size: String,
    /// Cluster variable.
    pub kcv: String,
    /// Input variables.
    pub input: String,
    /// Output variables.
    pub output: String,
}

/// Formats a dataset as a Table-1 row.
pub fn table_row(d: &Dataset) -> TableRow {
    let g = d.grid();
    let space = if g.nz == 1 {
        format!("{}x{}", g.nx, g.ny)
    } else {
        format!("{}x{}x{}", g.nx, g.ny, g.nz)
    };
    TableRow {
        label: d.meta.label.clone(),
        description: d.meta.description.clone(),
        space,
        time: d.num_snapshots(),
        size: d.size_string(),
        kcv: d.meta.cluster_var.clone(),
        input: d.meta.input_vars.join(","),
        output: d.meta.output_vars.join(","),
    }
}

/// Computes per-snapshot mean kinetic energy, a quick sanity diagnostic used
/// by examples and tests.
pub fn mean_kinetic_energy(snap: &Snapshot) -> f64 {
    let u = snap.expect_var("u");
    let ke: f64 = match (snap.var("v"), snap.var("w")) {
        (Some(v), Some(w)) => u
            .par_iter()
            .zip(v.par_iter().zip(w.par_iter()))
            .map(|(a, (b, c))| a * a + b * b + c * c)
            .sum(),
        (Some(v), None) => u
            .par_iter()
            .zip(v.par_iter())
            .map(|(a, b)| a * a + b * b)
            .sum(),
        _ => u.par_iter().map(|a| a * a).sum(),
    };
    0.5 * ke / u.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_of2d() -> Of2dParams {
        Of2dParams {
            lbm: LbmConfig {
                nx: 60,
                ny: 32,
                diameter: 6.0,
                reynolds: 60.0,
                ..Default::default()
            },
            warmup: 100,
            snapshots: 4,
            interval: 20,
        }
    }

    #[test]
    fn of2d_has_drag_per_snapshot() {
        let data = of2d(&tiny_of2d());
        assert_eq!(data.dataset.num_snapshots(), 4);
        assert_eq!(data.drag.len(), 4);
        assert!(data.drag.iter().all(|d| d.is_finite() && *d > 0.0));
        assert_eq!(data.dataset.meta.label, "OF2D");
    }

    #[test]
    fn tc2d_metadata() {
        let d = tc2d(
            &CombustionConfig {
                nx: 32,
                ny: 32,
                ..Default::default()
            },
            1,
        );
        assert_eq!(d.meta.label, "TC2D");
        assert_eq!(d.num_snapshots(), 1);
        assert!(d.snapshots[0].var("C").is_some());
        assert!(d.snapshots[0].var("Cvar").is_some());
    }

    #[test]
    fn sst_p1f4_has_cluster_variable() {
        let params = SstParams {
            n: 16,
            snapshots: 2,
            interval: 3,
            warmup: 3,
            ..Default::default()
        };
        let d = sst_p1f4(&params);
        assert_eq!(d.meta.cluster_var, "pv");
        for s in &d.snapshots {
            assert!(s.var("pv").is_some(), "pv missing");
            assert!(s.var("r").is_some(), "density missing");
        }
        assert_eq!(d.meta.gravity, Some(Axis::Z));
    }

    #[test]
    fn sst_p1f100_has_dissipation_output() {
        let params = SstParams {
            n: 16,
            snapshots: 2,
            interval: 3,
            warmup: 3,
            ..Default::default()
        };
        let d = sst_p1f100(&params);
        assert_eq!(d.meta.output_vars, vec!["ee"]);
        for s in &d.snapshots {
            let ee = s.expect_var("ee");
            assert!(ee.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn gests_snapshot_is_isotropic_with_enstrophy() {
        let d = gests(
            &GestsParams {
                n: 16,
                spinup: 5,
                ..Default::default()
            },
            2,
        );
        assert_eq!(d.num_snapshots(), 1);
        let s = &d.snapshots[0];
        assert!(s.var("omega").is_some());
        assert!(s.expect_var("omega").iter().all(|&v| v >= 0.0));
        assert_eq!(d.meta.cluster_var, "omega");
    }

    #[test]
    fn synthetic_sst_has_pv() {
        let snap = synthetic_sst_snapshot(16, 3.0, 9);
        assert!(snap.var("pv").is_some());
        assert_eq!(snap.grid.nx, 16);
    }

    #[test]
    fn table_row_formats() {
        let d = tc2d(
            &CombustionConfig {
                nx: 32,
                ny: 32,
                ..Default::default()
            },
            1,
        );
        let row = table_row(&d);
        assert_eq!(row.space, "32x32");
        assert_eq!(row.time, 1);
        assert_eq!(row.input, "C,Cvar");
    }

    #[test]
    fn kinetic_energy_positive_for_turbulent_fields() {
        let snap = synthetic_sst_snapshot(16, 2.0, 1);
        assert!(mean_kinetic_energy(&snap) > 0.0);
    }
}
