//! D2Q9 lattice-Boltzmann solver for unsteady flow over a cylinder.
//!
//! This is the substrate for the paper's **OF2D** dataset (OpenFOAM 2D
//! laminar flow over a cylinder at Re ≈ 1267). The solver uses BGK collision,
//! half-way bounce-back on the cylinder, an equilibrium velocity inlet, a
//! zero-gradient outlet, and periodic crosswise boundaries; drag and lift on
//! the cylinder are measured by momentum exchange, giving the scalar
//! regression target the paper's LSTM surrogate predicts.
//!
//! The default Reynolds number is 150 — comfortably in the periodic
//! vortex-shedding regime that makes the dataset interesting for sampling
//! (a strongly anisotropic wake over a quiescent free stream), while staying
//! stable for the single-relaxation-time collision operator at modest grid
//! sizes. The paper's conclusions depend on the wake/free-stream contrast,
//! not the precise Re (see DESIGN.md).
//!
//! Distribution functions are stored cell-major (`f[cell * 9 + dir]`) so
//! collision is a perfectly parallel pass over cells and streaming reads are
//! local per cell.

use rayon::prelude::*;
use sickle_field::derived::vorticity_2d;
use sickle_field::{Grid3, Snapshot};
use sickle_simd::Kernel;

/// D2Q9 lattice x-velocities.
pub const EX: [i32; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
/// D2Q9 lattice y-velocities.
pub const EY: [i32; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
/// D2Q9 quadrature weights.
pub const W: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
/// Index of the direction opposite to `i`.
pub const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// Configuration for the cylinder-flow solver.
#[derive(Clone, Copy, Debug)]
pub struct LbmConfig {
    /// Lattice points along the streamwise (x) direction.
    pub nx: usize,
    /// Lattice points along the crosswise (y) direction.
    pub ny: usize,
    /// Inlet velocity in lattice units (keep ≤ 0.15 for accuracy).
    pub u_inlet: f64,
    /// Reynolds number based on cylinder diameter.
    pub reynolds: f64,
    /// Cylinder diameter in lattice units.
    pub diameter: f64,
    /// Cylinder center as a fraction of the domain, e.g. (0.25, 0.5).
    pub center_frac: (f64, f64),
}

impl Default for LbmConfig {
    fn default() -> Self {
        LbmConfig {
            nx: 240,
            ny: 96,
            u_inlet: 0.1,
            reynolds: 150.0,
            diameter: 12.0,
            center_frac: (0.25, 0.5),
        }
    }
}

/// A running lattice-Boltzmann cylinder-flow simulation.
pub struct CylinderFlow {
    cfg: LbmConfig,
    /// Distribution functions, cell-major: `f[cell * 9 + dir]`.
    f: Vec<f64>,
    /// Scratch buffer for the streamed state.
    f_new: Vec<f64>,
    /// Solid mask (true inside the cylinder).
    solid: Vec<bool>,
    /// BGK relaxation time.
    tau: f64,
    /// Periodic `y - 1` neighbor per row (the fused kernel's replacement for
    /// per-population `rem_euclid`).
    ym: Vec<usize>,
    /// Periodic `y + 1` neighbor per row.
    yp: Vec<usize>,
    /// Per-x-slab momentum-exchange partials, reused every step so the fused
    /// pass allocates nothing; summed serially in x order, which keeps the
    /// reduction order identical to the naive path's per-slab collect.
    slab_forces: Vec<(f64, f64)>,
    /// True where column `x` contains at least one solid cell: columns whose
    /// 3-column neighborhood is all-fluid stream via branch-free rotated
    /// column copies.
    col_solid: Vec<bool>,
    step_count: usize,
    drag: f64,
    lift: f64,
}

/// BGK equilibrium distribution for direction `i`.
#[inline]
fn equilibrium(i: usize, rho: f64, u: f64, v: f64) -> f64 {
    let eu = EX[i] as f64 * u + EY[i] as f64 * v;
    let usq = u * u + v * v;
    W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

/// Analytic flop estimate for one collide+stream step on an `nx × ny`
/// lattice: moments (~27), velocity divides, nine equilibrium evaluations
/// and BGK relaxations (~15 each) per cell, ignoring the copy-dominated
/// streaming pass.
pub fn lbm_step_flops(nx: usize, ny: usize) -> u64 {
    (nx * ny) as u64 * 170
}

/// Collides one x-slab of `f` into a direction-major (SoA) window slab
/// (`w[i * ny + y]`), leaving solid cells untouched (their window entries
/// are never read — solid sources stream via bounce-back). Quads of four
/// consecutive all-fluid cells go through the AVX2 path, which evaluates
/// the same FP expression sequence per lane and is therefore bit-identical
/// to the scalar collision.
fn collide_slab_into(f: &[f64], solid: &[bool], tau_inv: f64, ny: usize, x: usize, w: &mut [f64]) {
    let base = x * ny;
    let mut y = 0;
    #[cfg(target_arch = "x86_64")]
    if sickle_simd::fma_available() {
        while y + 4 <= ny {
            if solid[base + y..base + y + 4].iter().any(|&s| s) {
                for q in y..y + 4 {
                    if !solid[base + q] {
                        collide_cell_into(f, base + q, tau_inv, w, ny, q);
                    }
                }
            } else {
                // SAFETY: avx2 verified; cells base+y .. base+y+4 are in
                // bounds and all fluid; w holds 9*ny values.
                unsafe { collide_quad_avx2(f, base + y, tau_inv, w, ny, y) };
            }
            y += 4;
        }
    }
    for q in y..ny {
        if !solid[base + q] {
            collide_cell_into(f, base + q, tau_inv, w, ny, q);
        }
    }
}

/// Scalar BGK collision of cell `idx` into window row `y` (exact naive
/// expressions).
#[inline]
fn collide_cell_into(f: &[f64], idx: usize, tau_inv: f64, w: &mut [f64], ny: usize, y: usize) {
    let fc = &f[idx * 9..idx * 9 + 9];
    let mut rho = 0.0;
    let mut mu = 0.0;
    let mut mv = 0.0;
    for i in 0..9 {
        rho += fc[i];
        mu += fc[i] * EX[i] as f64;
        mv += fc[i] * EY[i] as f64;
    }
    let u = mu / rho;
    let v = mv / rho;
    for i in 0..9 {
        let fi = fc[i];
        w[i * ny + y] = fi + tau_inv * (equilibrium(i, rho, u, v) - fi);
    }
}

/// Four-cell BGK collision: cells `idx .. idx+4` (cell-major `f`) collide
/// into window rows `y .. y+4`. Every vector op mirrors the scalar
/// expression order — separate mul/add (no FMA contraction), the same
/// 9-term moment chains including the multiply-by-zero terms — so each lane
/// reproduces the scalar collision bit for bit. The gains come from doing
/// four cells per instruction and from the contiguous SoA stores.
///
/// # Safety
/// Caller must have verified `avx2` support; `f` must hold cells
/// `idx..idx+4` and `w` at least `9 * ny` values with `y + 4 <= ny`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn collide_quad_avx2(
    f: &[f64],
    idx: usize,
    tau_inv: f64,
    w: &mut [f64],
    ny: usize,
    y: usize,
) {
    use std::arch::x86_64::*;
    let p = f.as_ptr().add(idx * 9);
    // Direction i of cells 0..4 sits at f64 offsets i, i+9, i+18, i+27
    // (set_pd takes lanes high-to-low).
    let ld = |i: usize| _mm256_set_pd(*p.add(27 + i), *p.add(18 + i), *p.add(9 + i), *p.add(i));
    let fv = [
        ld(0),
        ld(1),
        ld(2),
        ld(3),
        ld(4),
        ld(5),
        ld(6),
        ld(7),
        ld(8),
    ];
    let zero = _mm256_setzero_pd();
    let mut rho = zero;
    let mut mu = zero;
    let mut mv = zero;
    for i in 0..9 {
        rho = _mm256_add_pd(rho, fv[i]);
        mu = _mm256_add_pd(mu, _mm256_mul_pd(fv[i], _mm256_set1_pd(EX[i] as f64)));
        mv = _mm256_add_pd(mv, _mm256_mul_pd(fv[i], _mm256_set1_pd(EY[i] as f64)));
    }
    let u = _mm256_div_pd(mu, rho);
    let v = _mm256_div_pd(mv, rho);
    let usq = _mm256_add_pd(_mm256_mul_pd(u, u), _mm256_mul_pd(v, v));
    let one = _mm256_set1_pd(1.0);
    let c3 = _mm256_set1_pd(3.0);
    let c45 = _mm256_set1_pd(4.5);
    let c15 = _mm256_set1_pd(1.5);
    let tinv = _mm256_set1_pd(tau_inv);
    let wp = w.as_mut_ptr();
    for i in 0..9 {
        let eu = _mm256_add_pd(
            _mm256_mul_pd(_mm256_set1_pd(EX[i] as f64), u),
            _mm256_mul_pd(_mm256_set1_pd(EY[i] as f64), v),
        );
        // ((1 + 3*eu) + (4.5*eu)*eu) - 1.5*usq, matching scalar associativity.
        let inner = _mm256_sub_pd(
            _mm256_add_pd(
                _mm256_add_pd(one, _mm256_mul_pd(c3, eu)),
                _mm256_mul_pd(_mm256_mul_pd(c45, eu), eu),
            ),
            _mm256_mul_pd(c15, usq),
        );
        let feq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(W[i]), rho), inner);
        let fi = fv[i];
        let res = _mm256_add_pd(fi, _mm256_mul_pd(tinv, _mm256_sub_pd(feq, fi)));
        _mm256_storeu_pd(wp.add(i * ny + y), res);
    }
}

impl CylinderFlow {
    /// Initializes the flow field at uniform inlet velocity with a tiny
    /// deterministic crosswise perturbation that triggers vortex shedding.
    ///
    /// # Panics
    /// Panics if the configuration yields an unstable relaxation time.
    pub fn new(cfg: LbmConfig) -> Self {
        let n = cfg.nx * cfg.ny;
        let nu = cfg.u_inlet * cfg.diameter / cfg.reynolds;
        let tau = 3.0 * nu + 0.5;
        assert!(
            tau > 0.505,
            "relaxation time {tau:.4} too close to 1/2; increase diameter or lower Re"
        );
        let cx = cfg.center_frac.0 * cfg.nx as f64;
        let cy = cfg.center_frac.1 * cfg.ny as f64;
        let r = cfg.diameter / 2.0;
        let mut solid = vec![false; n];
        for x in 0..cfg.nx {
            for y in 0..cfg.ny {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy <= r * r {
                    solid[x * cfg.ny + y] = true;
                }
            }
        }
        let mut f = vec![0.0; n * 9];
        for x in 0..cfg.nx {
            for y in 0..cfg.ny {
                let idx = x * cfg.ny + y;
                let pert = 1e-3 * ((y as f64 / cfg.ny as f64) * std::f64::consts::TAU).sin();
                for i in 0..9 {
                    f[idx * 9 + i] = equilibrium(i, 1.0, cfg.u_inlet, pert);
                }
            }
        }
        let f_new = f.clone();
        let col_solid: Vec<bool> = (0..cfg.nx)
            .map(|x| solid[x * cfg.ny..(x + 1) * cfg.ny].iter().any(|&s| s))
            .collect();
        CylinderFlow {
            cfg,
            f,
            f_new,
            solid,
            tau,
            ym: (0..cfg.ny).map(|y| (y + cfg.ny - 1) % cfg.ny).collect(),
            yp: (0..cfg.ny).map(|y| (y + 1) % cfg.ny).collect(),
            slab_forces: vec![(0.0, 0.0); cfg.nx],
            col_solid,
            step_count: 0,
            drag: 0.0,
            lift: 0.0,
        }
    }

    /// Configuration used to build this simulation.
    pub fn config(&self) -> &LbmConfig {
        &self.cfg
    }

    /// Number of completed time steps.
    pub fn steps(&self) -> usize {
        self.step_count
    }

    /// Kinematic viscosity implied by the configuration (lattice units).
    pub fn viscosity(&self) -> f64 {
        (self.tau - 0.5) / 3.0
    }

    /// Most recent drag force on the cylinder (lattice units).
    pub fn drag(&self) -> f64 {
        self.drag
    }

    /// Most recent lift force on the cylinder (lattice units).
    pub fn lift(&self) -> f64 {
        self.lift
    }

    /// Drag coefficient `2 F_x / (ρ u² D)` with `ρ = 1`.
    pub fn drag_coefficient(&self) -> f64 {
        2.0 * self.drag / (self.cfg.u_inlet * self.cfg.u_inlet * self.cfg.diameter)
    }

    /// Advances one time step: collide, stream with bounce-back (recording
    /// momentum exchange with the cylinder), then apply inlet/outlet.
    pub fn step(&mut self) {
        self.step_with(sickle_simd::kernel());
    }

    /// [`Self::step`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch). Both variants produce
    /// bit-identical fields: the fused kernel preserves the exact FP
    /// expression order of the naive collision, streaming, and force
    /// reduction.
    #[doc(hidden)]
    pub fn step_with(&mut self, kernel: Kernel) {
        match kernel {
            Kernel::Naive => self.collide_stream_naive(),
            Kernel::Optimized => self.collide_stream_fused(),
        }
        self.apply_inlet_outlet();
        self.step_count += 1;
    }

    /// Inlet (x = 0): equilibrium at `(u_inlet, 0)`, unit density;
    /// outlet (x = nx-1): zero-gradient copy from x = nx-2.
    fn apply_inlet_outlet(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        for y in 0..ny {
            let idx = y; // x = 0
            for i in 0..9 {
                self.f[idx * 9 + i] = equilibrium(i, 1.0, self.cfg.u_inlet, 0.0);
            }
        }
        for y in 0..ny {
            let dst = (nx - 1) * ny + y;
            let src = (nx - 2) * ny + y;
            for i in 0..9 {
                self.f[dst * 9 + i] = self.f[src * 9 + i];
            }
        }
    }

    /// The pre-optimization two-pass kernel: collide in place, then a
    /// separate streaming pass (kept as the measured baseline).
    fn collide_stream_naive(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let tau_inv = 1.0 / self.tau;
        let solid = &self.solid;

        // --- Collision (parallel over cells). ---
        self.f.par_chunks_mut(9).enumerate().for_each(|(idx, fc)| {
            if solid[idx] {
                return;
            }
            let mut rho = 0.0;
            let mut mu = 0.0;
            let mut mv = 0.0;
            for i in 0..9 {
                rho += fc[i];
                mu += fc[i] * EX[i] as f64;
                mv += fc[i] * EY[i] as f64;
            }
            let u = mu / rho;
            let v = mv / rho;
            for (i, fi) in fc.iter_mut().enumerate() {
                *fi += tau_inv * (equilibrium(i, rho, u, v) - *fi);
            }
        });

        // --- Streaming (pull) with bounce-back; accumulate body force. ---
        let f = &self.f;
        let forces: Vec<(f64, f64)> = self
            .f_new
            .par_chunks_mut(ny * 9)
            .enumerate()
            .map(|(x, slab)| {
                let mut fx = 0.0;
                let mut fy = 0.0;
                for y in 0..ny {
                    let idx = x * ny + y;
                    let out = &mut slab[y * 9..y * 9 + 9];
                    if solid[idx] {
                        // Populations inside the solid are irrelevant; keep
                        // them at equilibrium rest for numerical hygiene.
                        out.copy_from_slice(&f[idx * 9..idx * 9 + 9]);
                        continue;
                    }
                    for (i, o) in out.iter_mut().enumerate() {
                        let sx = x as i32 - EX[i];
                        let sy = (y as i32 - EY[i]).rem_euclid(ny as i32) as usize;
                        if sx < 0 || sx >= nx as i32 {
                            // Off-grid along x: keep post-collision value;
                            // the boundary pass overwrites the whole column.
                            *o = f[idx * 9 + i];
                            continue;
                        }
                        let sidx = sx as usize * ny + sy;
                        if solid[sidx] {
                            // Half-way bounce-back: the population arriving
                            // from the solid is this cell's own opposite
                            // post-collision population. Momentum-exchange
                            // force on the body: 2 f_opp e_opp.
                            let fopp = f[idx * 9 + OPP[i]];
                            *o = fopp;
                            fx += 2.0 * fopp * EX[OPP[i]] as f64;
                            fy += 2.0 * fopp * EY[OPP[i]] as f64;
                        } else {
                            *o = f[sidx * 9 + i];
                        }
                    }
                }
                (fx, fy)
            })
            .collect();
        self.drag = forces.iter().map(|p| p.0).sum();
        self.lift = forces.iter().map(|p| p.1).sum();
        std::mem::swap(&mut self.f, &mut self.f_new);
    }

    /// The fused collide+stream kernel: bands of x-slabs collide into a
    /// band-local direction-major (SoA) window — quads of four fluid cells
    /// at a time through the AVX2 path — and the streaming pull reads
    /// post-collision values straight from the window. One read of `f` and
    /// one write of `f_new` replace the naive kernel's two full passes, and
    /// the precomputed `ym`/`yp` tables replace per-population `rem_euclid`.
    /// Band boundary slabs are collided redundantly by both neighbors, which
    /// is deterministic and therefore harmless.
    fn collide_stream_fused(&mut self) {
        /// X-slabs per band: window of `BAND + 2` SoA slabs stays L2-resident
        /// at the grid sizes used (ny ≤ 128) with 12.5% redundant collisions.
        const BAND: usize = 16;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let tau_inv = 1.0 / self.tau;
        let solid = &self.solid;
        let f = &self.f;
        let ym = &self.ym;
        let yp = &self.yp;
        let col_solid = &self.col_solid;

        // Per-slab force partials land in the preallocated buffer through a
        // raw pointer: each band writes only its own slab range.
        struct SendPtr(*mut (f64, f64));
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            #[inline]
            fn get(&self) -> *mut (f64, f64) {
                self.0
            }
        }
        let fptr = SendPtr(self.slab_forces.as_mut_ptr());

        self.f_new
            .par_chunks_mut(BAND * ny * 9)
            .enumerate()
            .for_each_init(
                || vec![0.0f64; (BAND + 2) * 9 * ny],
                |wnd, (bi, band)| {
                    let x0 = bi * BAND;
                    let nslab = band.len() / (ny * 9);
                    let w_lo = x0.saturating_sub(1);
                    let w_hi = (x0 + nslab + 1).min(nx);
                    for x in w_lo..w_hi {
                        let wslab = &mut wnd[(x - w_lo) * 9 * ny..(x - w_lo + 1) * 9 * ny];
                        collide_slab_into(f, solid, tau_inv, ny, x, wslab);
                    }
                    for dx in 0..nslab {
                        let x = x0 + dx;
                        let out_slab = &mut band[dx * ny * 9..(dx + 1) * ny * 9];
                        let mut fx_acc = 0.0;
                        let mut fy_acc = 0.0;
                        let wx = x - w_lo;
                        // Fast path: no solid cell in this column or either
                        // x-neighbor — every population streams from fluid,
                        // so the pull is nine branch-free rotated column
                        // copies out of the SoA window (and no force terms,
                        // exactly as the per-cell loop would produce).
                        let near_solid = col_solid[x.max(1) - 1]
                            || col_solid[x]
                            || col_solid[(x + 1).min(nx - 1)];
                        if !near_solid {
                            for i in 0..9 {
                                let sx = x as i32 - EX[i];
                                let src_col = if sx < 0 || sx >= nx as i32 {
                                    // Off-grid along x: keep own
                                    // post-collision value (no y shift).
                                    &wnd[(wx * 9 + i) * ny..(wx * 9 + i + 1) * ny]
                                } else {
                                    &wnd[((sx as usize - w_lo) * 9 + i) * ny
                                        ..((sx as usize - w_lo) * 9 + i + 1) * ny]
                                };
                                let shift = if sx < 0 || sx >= nx as i32 { 0 } else { EY[i] };
                                match shift {
                                    // Pull from y-1 (periodic).
                                    1 => {
                                        out_slab[i] = src_col[ny - 1];
                                        for y in 1..ny {
                                            out_slab[y * 9 + i] = src_col[y - 1];
                                        }
                                    }
                                    // Pull from y+1 (periodic).
                                    -1 => {
                                        for y in 0..ny - 1 {
                                            out_slab[y * 9 + i] = src_col[y + 1];
                                        }
                                        out_slab[(ny - 1) * 9 + i] = src_col[0];
                                    }
                                    _ => {
                                        for y in 0..ny {
                                            out_slab[y * 9 + i] = src_col[y];
                                        }
                                    }
                                }
                            }
                            // SAFETY: slab x belongs to exactly one band.
                            unsafe { *fptr.get().add(x) = (0.0, 0.0) };
                            continue;
                        }
                        for y in 0..ny {
                            let idx = x * ny + y;
                            let out = &mut out_slab[y * 9..y * 9 + 9];
                            if solid[idx] {
                                // Populations inside the solid are irrelevant;
                                // keep the (un-collided) stored values, matching
                                // the naive pass.
                                out.copy_from_slice(&f[idx * 9..idx * 9 + 9]);
                                continue;
                            }
                            for (i, o) in out.iter_mut().enumerate() {
                                let sx = x as i32 - EX[i];
                                let sy = match EY[i] {
                                    1 => ym[y],
                                    -1 => yp[y],
                                    _ => y,
                                };
                                if sx < 0 || sx >= nx as i32 {
                                    // Off-grid along x: keep own post-collision
                                    // value; the boundary pass overwrites the
                                    // whole column.
                                    *o = wnd[(wx * 9 + i) * ny + y];
                                    continue;
                                }
                                let sxu = sx as usize;
                                if solid[sxu * ny + sy] {
                                    // Half-way bounce-back with momentum
                                    // exchange, reading own post-collision
                                    // opposite population from the window.
                                    let fopp = wnd[(wx * 9 + OPP[i]) * ny + y];
                                    *o = fopp;
                                    fx_acc += 2.0 * fopp * EX[OPP[i]] as f64;
                                    fy_acc += 2.0 * fopp * EY[OPP[i]] as f64;
                                } else {
                                    *o = wnd[((sxu - w_lo) * 9 + i) * ny + sy];
                                }
                            }
                        }
                        // SAFETY: slab x belongs to exactly one band.
                        unsafe { *fptr.get().add(x) = (fx_acc, fy_acc) };
                    }
                },
            );
        self.drag = self.slab_forces.iter().map(|p| p.0).sum();
        self.lift = self.slab_forces.iter().map(|p| p.1).sum();
        std::mem::swap(&mut self.f, &mut self.f_new);
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Computes the macroscopic fields `(rho, u, v)`.
    pub fn macroscopic(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.cfg.nx * self.cfg.ny;
        let mut rho = vec![1.0; n];
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        rho.par_iter_mut()
            .zip(u.par_iter_mut().zip(v.par_iter_mut()))
            .enumerate()
            .for_each(|(idx, (r, (uu, vv)))| {
                if self.solid[idx] {
                    *r = 1.0;
                    *uu = 0.0;
                    *vv = 0.0;
                    return;
                }
                let fc = &self.f[idx * 9..idx * 9 + 9];
                let mut rr = 0.0;
                let mut mu = 0.0;
                let mut mv = 0.0;
                for i in 0..9 {
                    rr += fc[i];
                    mu += fc[i] * EX[i] as f64;
                    mv += fc[i] * EY[i] as f64;
                }
                *r = rr;
                *uu = mu / rr;
                *vv = mv / rr;
            });
        (rho, u, v)
    }

    /// Returns `true` if the cell at `(x, y)` is inside the cylinder.
    pub fn is_solid(&self, x: usize, y: usize) -> bool {
        self.solid[x * self.cfg.ny + y]
    }

    /// Builds a [`Snapshot`] of the current state with variables
    /// `u, v, p, wz` (pressure from the lattice equation of state
    /// `p = ρ c_s² = ρ/3`, vorticity from central differences).
    pub fn snapshot(&self, time: f64) -> Snapshot {
        let grid = Grid3::new(
            self.cfg.nx,
            self.cfg.ny,
            1,
            self.cfg.nx as f64,
            self.cfg.ny as f64,
            1.0,
        );
        let (rho, u, v) = self.macroscopic();
        let p: Vec<f64> = rho.iter().map(|&r| r / 3.0).collect();
        let wz = vorticity_2d(&grid, &u, &v);
        Snapshot::new(grid, time)
            .with_var("u", u)
            .with_var("v", v)
            .with_var("p", p)
            .with_var("wz", wz)
    }

    /// Returns the total mass on the lattice (conserved by collision and
    /// interior streaming; boundaries exchange mass with the exterior).
    pub fn total_mass(&self) -> f64 {
        self.f.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LbmConfig {
        LbmConfig {
            nx: 60,
            ny: 32,
            u_inlet: 0.1,
            reynolds: 60.0,
            diameter: 6.0,
            ..Default::default()
        }
    }

    #[test]
    fn equilibrium_moments_are_consistent() {
        // Zeroth and first moments of f_eq must recover rho and momentum.
        let (rho, u, v) = (1.1, 0.07, -0.03);
        let mut m0 = 0.0;
        let mut m1x = 0.0;
        let mut m1y = 0.0;
        for i in 0..9 {
            let fi = equilibrium(i, rho, u, v);
            m0 += fi;
            m1x += fi * EX[i] as f64;
            m1y += fi * EY[i] as f64;
        }
        assert!((m0 - rho).abs() < 1e-12);
        assert!((m1x - rho * u).abs() < 1e-12);
        assert!((m1y - rho * v).abs() < 1e-12);
    }

    #[test]
    fn opposite_directions_are_consistent() {
        for i in 0..9 {
            assert_eq!(EX[OPP[i]], -EX[i]);
            assert_eq!(EY[OPP[i]], -EY[i]);
            assert_eq!(OPP[OPP[i]], i);
        }
        assert!((W.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn simulation_stays_finite_and_positive_drag() {
        let mut sim = CylinderFlow::new(tiny_config());
        sim.run(300);
        let (rho, u, _) = sim.macroscopic();
        assert!(rho.iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(u.iter().all(|v| v.is_finite()));
        // After spin-up, the cylinder must feel a downstream (positive) drag.
        assert!(sim.drag() > 0.0, "drag {}", sim.drag());
    }

    #[test]
    fn wake_is_slower_than_free_stream() {
        let cfg = tiny_config();
        let mut sim = CylinderFlow::new(cfg);
        sim.run(400);
        let (_, u, _) = sim.macroscopic();
        let cx = (cfg.center_frac.0 * cfg.nx as f64) as usize;
        let cy = (cfg.center_frac.1 * cfg.ny as f64) as usize;
        let wake = u[(cx + 5) * cfg.ny + cy];
        let free = u[(cx + 5) * cfg.ny + 2];
        assert!(wake < free, "wake u {wake} should lag free-stream u {free}");
    }

    #[test]
    fn snapshot_has_expected_variables() {
        let mut sim = CylinderFlow::new(tiny_config());
        sim.run(10);
        let snap = sim.snapshot(1.0);
        assert_eq!(snap.names, vec!["u", "v", "p", "wz"]);
        assert_eq!(snap.grid.nz, 1);
        assert_eq!(snap.num_points(), 60 * 32);
    }

    #[test]
    fn vortex_shedding_produces_oscillating_lift() {
        // At Re = 150 the wake goes unsteady; lift must change sign over a
        // long window. This is the physical feature (periodic snapshots) the
        // paper's temporal-sampling discussion relies on.
        let cfg = LbmConfig {
            nx: 160,
            ny: 64,
            u_inlet: 0.1,
            reynolds: 150.0,
            diameter: 10.0,
            ..Default::default()
        };
        let mut sim = CylinderFlow::new(cfg);
        sim.run(2000);
        let mut lifts = Vec::new();
        for _ in 0..2000 {
            sim.step();
            lifts.push(sim.lift());
        }
        let max = lifts.iter().cloned().fold(f64::MIN, f64::max);
        let min = lifts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 0.0 && min < 0.0,
            "lift range [{min}, {max}] not oscillating"
        );
    }

    #[test]
    fn interior_collision_conserves_mass() {
        // One collision pass must conserve total mass exactly (streaming and
        // boundaries exchange mass, so test via two sims differing by one
        // collision only is impractical; instead verify moments directly).
        let mut sim = CylinderFlow::new(tiny_config());
        let before: f64 = sim.total_mass();
        // A single step changes mass only through inlet/outlet cells.
        sim.step();
        let after = sim.total_mass();
        let rel = ((after - before) / before).abs();
        assert!(rel < 0.05, "mass drifted {rel}");
    }
}
