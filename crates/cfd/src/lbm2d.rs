//! D2Q9 lattice-Boltzmann solver for unsteady flow over a cylinder.
//!
//! This is the substrate for the paper's **OF2D** dataset (OpenFOAM 2D
//! laminar flow over a cylinder at Re ≈ 1267). The solver uses BGK collision,
//! half-way bounce-back on the cylinder, an equilibrium velocity inlet, a
//! zero-gradient outlet, and periodic crosswise boundaries; drag and lift on
//! the cylinder are measured by momentum exchange, giving the scalar
//! regression target the paper's LSTM surrogate predicts.
//!
//! The default Reynolds number is 150 — comfortably in the periodic
//! vortex-shedding regime that makes the dataset interesting for sampling
//! (a strongly anisotropic wake over a quiescent free stream), while staying
//! stable for the single-relaxation-time collision operator at modest grid
//! sizes. The paper's conclusions depend on the wake/free-stream contrast,
//! not the precise Re (see DESIGN.md).
//!
//! Distribution functions are stored cell-major (`f[cell * 9 + dir]`) so
//! collision is a perfectly parallel pass over cells and streaming reads are
//! local per cell.

use rayon::prelude::*;
use sickle_field::derived::vorticity_2d;
use sickle_field::{Grid3, Snapshot};

/// D2Q9 lattice x-velocities.
pub const EX: [i32; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
/// D2Q9 lattice y-velocities.
pub const EY: [i32; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
/// D2Q9 quadrature weights.
pub const W: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
/// Index of the direction opposite to `i`.
pub const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// Configuration for the cylinder-flow solver.
#[derive(Clone, Copy, Debug)]
pub struct LbmConfig {
    /// Lattice points along the streamwise (x) direction.
    pub nx: usize,
    /// Lattice points along the crosswise (y) direction.
    pub ny: usize,
    /// Inlet velocity in lattice units (keep ≤ 0.15 for accuracy).
    pub u_inlet: f64,
    /// Reynolds number based on cylinder diameter.
    pub reynolds: f64,
    /// Cylinder diameter in lattice units.
    pub diameter: f64,
    /// Cylinder center as a fraction of the domain, e.g. (0.25, 0.5).
    pub center_frac: (f64, f64),
}

impl Default for LbmConfig {
    fn default() -> Self {
        LbmConfig {
            nx: 240,
            ny: 96,
            u_inlet: 0.1,
            reynolds: 150.0,
            diameter: 12.0,
            center_frac: (0.25, 0.5),
        }
    }
}

/// A running lattice-Boltzmann cylinder-flow simulation.
pub struct CylinderFlow {
    cfg: LbmConfig,
    /// Distribution functions, cell-major: `f[cell * 9 + dir]`.
    f: Vec<f64>,
    /// Scratch buffer for the streamed state.
    f_new: Vec<f64>,
    /// Solid mask (true inside the cylinder).
    solid: Vec<bool>,
    /// BGK relaxation time.
    tau: f64,
    step_count: usize,
    drag: f64,
    lift: f64,
}

/// BGK equilibrium distribution for direction `i`.
#[inline]
fn equilibrium(i: usize, rho: f64, u: f64, v: f64) -> f64 {
    let eu = EX[i] as f64 * u + EY[i] as f64 * v;
    let usq = u * u + v * v;
    W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

impl CylinderFlow {
    /// Initializes the flow field at uniform inlet velocity with a tiny
    /// deterministic crosswise perturbation that triggers vortex shedding.
    ///
    /// # Panics
    /// Panics if the configuration yields an unstable relaxation time.
    pub fn new(cfg: LbmConfig) -> Self {
        let n = cfg.nx * cfg.ny;
        let nu = cfg.u_inlet * cfg.diameter / cfg.reynolds;
        let tau = 3.0 * nu + 0.5;
        assert!(
            tau > 0.505,
            "relaxation time {tau:.4} too close to 1/2; increase diameter or lower Re"
        );
        let cx = cfg.center_frac.0 * cfg.nx as f64;
        let cy = cfg.center_frac.1 * cfg.ny as f64;
        let r = cfg.diameter / 2.0;
        let mut solid = vec![false; n];
        for x in 0..cfg.nx {
            for y in 0..cfg.ny {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy <= r * r {
                    solid[x * cfg.ny + y] = true;
                }
            }
        }
        let mut f = vec![0.0; n * 9];
        for x in 0..cfg.nx {
            for y in 0..cfg.ny {
                let idx = x * cfg.ny + y;
                let pert = 1e-3 * ((y as f64 / cfg.ny as f64) * std::f64::consts::TAU).sin();
                for i in 0..9 {
                    f[idx * 9 + i] = equilibrium(i, 1.0, cfg.u_inlet, pert);
                }
            }
        }
        let f_new = f.clone();
        CylinderFlow {
            cfg,
            f,
            f_new,
            solid,
            tau,
            step_count: 0,
            drag: 0.0,
            lift: 0.0,
        }
    }

    /// Configuration used to build this simulation.
    pub fn config(&self) -> &LbmConfig {
        &self.cfg
    }

    /// Number of completed time steps.
    pub fn steps(&self) -> usize {
        self.step_count
    }

    /// Kinematic viscosity implied by the configuration (lattice units).
    pub fn viscosity(&self) -> f64 {
        (self.tau - 0.5) / 3.0
    }

    /// Most recent drag force on the cylinder (lattice units).
    pub fn drag(&self) -> f64 {
        self.drag
    }

    /// Most recent lift force on the cylinder (lattice units).
    pub fn lift(&self) -> f64 {
        self.lift
    }

    /// Drag coefficient `2 F_x / (ρ u² D)` with `ρ = 1`.
    pub fn drag_coefficient(&self) -> f64 {
        2.0 * self.drag / (self.cfg.u_inlet * self.cfg.u_inlet * self.cfg.diameter)
    }

    /// Advances one time step: collide, stream with bounce-back (recording
    /// momentum exchange with the cylinder), then apply inlet/outlet.
    pub fn step(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let tau_inv = 1.0 / self.tau;
        let solid = &self.solid;

        // --- Collision (parallel over cells). ---
        self.f.par_chunks_mut(9).enumerate().for_each(|(idx, fc)| {
            if solid[idx] {
                return;
            }
            let mut rho = 0.0;
            let mut mu = 0.0;
            let mut mv = 0.0;
            for i in 0..9 {
                rho += fc[i];
                mu += fc[i] * EX[i] as f64;
                mv += fc[i] * EY[i] as f64;
            }
            let u = mu / rho;
            let v = mv / rho;
            for (i, fi) in fc.iter_mut().enumerate() {
                *fi += tau_inv * (equilibrium(i, rho, u, v) - *fi);
            }
        });

        // --- Streaming (pull) with bounce-back; accumulate body force. ---
        let f = &self.f;
        let forces: Vec<(f64, f64)> = self
            .f_new
            .par_chunks_mut(ny * 9)
            .enumerate()
            .map(|(x, slab)| {
                let mut fx = 0.0;
                let mut fy = 0.0;
                for y in 0..ny {
                    let idx = x * ny + y;
                    let out = &mut slab[y * 9..y * 9 + 9];
                    if solid[idx] {
                        // Populations inside the solid are irrelevant; keep
                        // them at equilibrium rest for numerical hygiene.
                        out.copy_from_slice(&f[idx * 9..idx * 9 + 9]);
                        continue;
                    }
                    for (i, o) in out.iter_mut().enumerate() {
                        let sx = x as i32 - EX[i];
                        let sy = (y as i32 - EY[i]).rem_euclid(ny as i32) as usize;
                        if sx < 0 || sx >= nx as i32 {
                            // Off-grid along x: keep post-collision value;
                            // the boundary pass overwrites the whole column.
                            *o = f[idx * 9 + i];
                            continue;
                        }
                        let sidx = sx as usize * ny + sy;
                        if solid[sidx] {
                            // Half-way bounce-back: the population arriving
                            // from the solid is this cell's own opposite
                            // post-collision population. Momentum-exchange
                            // force on the body: 2 f_opp e_opp.
                            let fopp = f[idx * 9 + OPP[i]];
                            *o = fopp;
                            fx += 2.0 * fopp * EX[OPP[i]] as f64;
                            fy += 2.0 * fopp * EY[OPP[i]] as f64;
                        } else {
                            *o = f[sidx * 9 + i];
                        }
                    }
                }
                (fx, fy)
            })
            .collect();
        self.drag = forces.iter().map(|p| p.0).sum();
        self.lift = forces.iter().map(|p| p.1).sum();
        std::mem::swap(&mut self.f, &mut self.f_new);

        // --- Inlet (x = 0): equilibrium at (u_inlet, 0), unit density. ---
        for y in 0..ny {
            let idx = y; // x = 0
            for i in 0..9 {
                self.f[idx * 9 + i] = equilibrium(i, 1.0, self.cfg.u_inlet, 0.0);
            }
        }
        // --- Outlet (x = nx-1): zero-gradient copy from x = nx-2. ---
        for y in 0..ny {
            let dst = (nx - 1) * ny + y;
            let src = (nx - 2) * ny + y;
            for i in 0..9 {
                self.f[dst * 9 + i] = self.f[src * 9 + i];
            }
        }
        self.step_count += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Computes the macroscopic fields `(rho, u, v)`.
    pub fn macroscopic(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.cfg.nx * self.cfg.ny;
        let mut rho = vec![1.0; n];
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        rho.par_iter_mut()
            .zip(u.par_iter_mut().zip(v.par_iter_mut()))
            .enumerate()
            .for_each(|(idx, (r, (uu, vv)))| {
                if self.solid[idx] {
                    *r = 1.0;
                    *uu = 0.0;
                    *vv = 0.0;
                    return;
                }
                let fc = &self.f[idx * 9..idx * 9 + 9];
                let mut rr = 0.0;
                let mut mu = 0.0;
                let mut mv = 0.0;
                for i in 0..9 {
                    rr += fc[i];
                    mu += fc[i] * EX[i] as f64;
                    mv += fc[i] * EY[i] as f64;
                }
                *r = rr;
                *uu = mu / rr;
                *vv = mv / rr;
            });
        (rho, u, v)
    }

    /// Returns `true` if the cell at `(x, y)` is inside the cylinder.
    pub fn is_solid(&self, x: usize, y: usize) -> bool {
        self.solid[x * self.cfg.ny + y]
    }

    /// Builds a [`Snapshot`] of the current state with variables
    /// `u, v, p, wz` (pressure from the lattice equation of state
    /// `p = ρ c_s² = ρ/3`, vorticity from central differences).
    pub fn snapshot(&self, time: f64) -> Snapshot {
        let grid = Grid3::new(
            self.cfg.nx,
            self.cfg.ny,
            1,
            self.cfg.nx as f64,
            self.cfg.ny as f64,
            1.0,
        );
        let (rho, u, v) = self.macroscopic();
        let p: Vec<f64> = rho.iter().map(|&r| r / 3.0).collect();
        let wz = vorticity_2d(&grid, &u, &v);
        Snapshot::new(grid, time)
            .with_var("u", u)
            .with_var("v", v)
            .with_var("p", p)
            .with_var("wz", wz)
    }

    /// Returns the total mass on the lattice (conserved by collision and
    /// interior streaming; boundaries exchange mass with the exterior).
    pub fn total_mass(&self) -> f64 {
        self.f.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LbmConfig {
        LbmConfig {
            nx: 60,
            ny: 32,
            u_inlet: 0.1,
            reynolds: 60.0,
            diameter: 6.0,
            ..Default::default()
        }
    }

    #[test]
    fn equilibrium_moments_are_consistent() {
        // Zeroth and first moments of f_eq must recover rho and momentum.
        let (rho, u, v) = (1.1, 0.07, -0.03);
        let mut m0 = 0.0;
        let mut m1x = 0.0;
        let mut m1y = 0.0;
        for i in 0..9 {
            let fi = equilibrium(i, rho, u, v);
            m0 += fi;
            m1x += fi * EX[i] as f64;
            m1y += fi * EY[i] as f64;
        }
        assert!((m0 - rho).abs() < 1e-12);
        assert!((m1x - rho * u).abs() < 1e-12);
        assert!((m1y - rho * v).abs() < 1e-12);
    }

    #[test]
    fn opposite_directions_are_consistent() {
        for i in 0..9 {
            assert_eq!(EX[OPP[i]], -EX[i]);
            assert_eq!(EY[OPP[i]], -EY[i]);
            assert_eq!(OPP[OPP[i]], i);
        }
        assert!((W.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn simulation_stays_finite_and_positive_drag() {
        let mut sim = CylinderFlow::new(tiny_config());
        sim.run(300);
        let (rho, u, _) = sim.macroscopic();
        assert!(rho.iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(u.iter().all(|v| v.is_finite()));
        // After spin-up, the cylinder must feel a downstream (positive) drag.
        assert!(sim.drag() > 0.0, "drag {}", sim.drag());
    }

    #[test]
    fn wake_is_slower_than_free_stream() {
        let cfg = tiny_config();
        let mut sim = CylinderFlow::new(cfg);
        sim.run(400);
        let (_, u, _) = sim.macroscopic();
        let cx = (cfg.center_frac.0 * cfg.nx as f64) as usize;
        let cy = (cfg.center_frac.1 * cfg.ny as f64) as usize;
        let wake = u[(cx + 5) * cfg.ny + cy];
        let free = u[(cx + 5) * cfg.ny + 2];
        assert!(wake < free, "wake u {wake} should lag free-stream u {free}");
    }

    #[test]
    fn snapshot_has_expected_variables() {
        let mut sim = CylinderFlow::new(tiny_config());
        sim.run(10);
        let snap = sim.snapshot(1.0);
        assert_eq!(snap.names, vec!["u", "v", "p", "wz"]);
        assert_eq!(snap.grid.nz, 1);
        assert_eq!(snap.num_points(), 60 * 32);
    }

    #[test]
    fn vortex_shedding_produces_oscillating_lift() {
        // At Re = 150 the wake goes unsteady; lift must change sign over a
        // long window. This is the physical feature (periodic snapshots) the
        // paper's temporal-sampling discussion relies on.
        let cfg = LbmConfig {
            nx: 160,
            ny: 64,
            u_inlet: 0.1,
            reynolds: 150.0,
            diameter: 10.0,
            ..Default::default()
        };
        let mut sim = CylinderFlow::new(cfg);
        sim.run(2000);
        let mut lifts = Vec::new();
        for _ in 0..2000 {
            sim.step();
            lifts.push(sim.lift());
        }
        let max = lifts.iter().cloned().fold(f64::MIN, f64::max);
        let min = lifts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 0.0 && min < 0.0,
            "lift range [{min}, {max}] not oscillating"
        );
    }

    #[test]
    fn interior_collision_conserves_mass() {
        // One collision pass must conserve total mass exactly (streaming and
        // boundaries exchange mass, so test via two sims differing by one
        // collision only is impractical; instead verify moments directly).
        let mut sim = CylinderFlow::new(tiny_config());
        let before: f64 = sim.total_mass();
        // A single step changes mass only through inlet/outlet cells.
        sim.step();
        let after = sim.total_mass();
        let rel = ((after - before) / before).abs();
        assert!(rel < 0.05, "mass drifted {rel}");
    }
}
