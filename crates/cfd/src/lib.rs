//! # sickle-cfd
//!
//! CFD substrates that regenerate analogues of every dataset in the paper's
//! Table 1, entirely in Rust:
//!
//! - [`lbm2d`] — a D2Q9 lattice-Boltzmann solver for unsteady flow over a
//!   cylinder (the **OF2D** dataset: `u, v` inputs, drag `D` target,
//!   vorticity cluster variable).
//! - [`spectral`] — a 3D incompressible pseudo-spectral Navier–Stokes solver
//!   with Boussinesq buoyancy and isotropic forcing (the **SST-P1F4**,
//!   **SST-P1F100**, and **GESTS** datasets at reproduction scale).
//! - [`synth`] — a spectral synthetic-turbulence generator with prescribed
//!   (an)isotropic spectra, for cheaply making arbitrarily large fields for
//!   scaling studies.
//! - [`combustion`] — a flamelet-manifold surrogate for the **TC2D**
//!   2D turbulent-combustion dataset (progress variable and its filtered
//!   variance).
//! - [`resim`] — local re-simulation by Jacobi diffusion relaxation, the
//!   read-path solver behind the `sickle-codec` coarse+re-simulate shard
//!   codec.
//! - [`datasets`] — canned constructors with Table-1 metadata.
//!
//! See DESIGN.md §1 for the substitution argument: the sampling pipeline only
//! observes point-feature distributions, and each substrate reproduces the
//! distributional character (anisotropy, intermittency, bimodality) of the
//! original data at laptop scale.

pub mod combustion;
pub mod datasets;
pub mod lbm2d;
pub mod resim;
pub mod spectral;
pub mod synth;

pub use combustion::CombustionConfig;
pub use lbm2d::{lbm_step_flops, CylinderFlow, LbmConfig};
pub use spectral::{Forcing, SpectralConfig, SpectralSolver, Stratification};
pub use synth::{SpectrumKind, SynthConfig};
