//! Local re-simulation by diffusion relaxation.
//!
//! The "coarse + re-simulate" shard codec (see `sickle-codec`) persists only
//! a strided subset of each cube's rows and reconstructs the rest on read.
//! Reconstruction is a small boundary-value solve: the stored rows are
//! Dirichlet data, the missing rows are unknowns of a steady diffusion
//! (Laplace) problem on the cube's lattice, and a few Jacobi sweeps relax
//! the unknowns toward the harmonic interpolant. This mirrors Wu, Zaki &
//! Meneveau's database compression by local re-simulation, reduced to the
//! cheapest solver that still couples every spatial neighbor: the codec's
//! read path must cost microseconds, not solver time steps.
//!
//! Two topologies cover every sample set:
//!
//! - [`relax_lattice`] — full 3-D stencil for dense raster-ordered cubes
//!   (`PointMethod::Full` shards), where row `r` sits at lattice coordinate
//!   `(r / (ey*ez), (r / ez) % ey, r % ez)`.
//! - [`relax_chain`] — 1-D stencil along row order for sparse sets, where
//!   raster adjacency does not hold but neighboring rows are still the most
//!   correlated data available.
//!
//! Both are deterministic: same inputs, same sweeps, same bits out.

/// One Jacobi sweep's neighbor average on a chain: unknown `i` relaxes
/// toward the mean of `i-1` and `i+1` (one-sided at the ends).
fn chain_sweep(cur: &[f64], next: &mut [f64], known: &[bool]) {
    let n = cur.len();
    for i in 0..n {
        if known[i] {
            next[i] = cur[i];
            continue;
        }
        let mut sum = 0.0;
        let mut cnt = 0.0;
        if i > 0 {
            sum += cur[i - 1];
            cnt += 1.0;
        }
        if i + 1 < n {
            sum += cur[i + 1];
            cnt += 1.0;
        }
        next[i] = if cnt > 0.0 { sum / cnt } else { cur[i] };
    }
}

/// Relaxes the unknown entries of `values` along the 1-D chain of row
/// order, holding `known` entries fixed as Dirichlet data. Callers seed
/// the unknowns (e.g. with a linear interpolant); `sweeps` Jacobi
/// iterations then smooth them toward the harmonic solution.
///
/// # Panics
/// Panics if `values` and `known` lengths differ.
pub fn relax_chain(values: &mut [f64], known: &[bool], sweeps: usize) {
    assert_eq!(values.len(), known.len(), "value/known length mismatch");
    if values.is_empty() || sweeps == 0 {
        return;
    }
    let mut next = values.to_vec();
    for _ in 0..sweeps {
        chain_sweep(values, &mut next, known);
        values.copy_from_slice(&next);
    }
}

/// Relaxes the unknown entries of `values` on a dense `(ex, ey, ez)`
/// raster-ordered lattice (x-major, z innermost — the order
/// `Hypercube::point_indices` emits), holding `known` entries fixed.
/// Each sweep replaces every unknown with the mean of its face neighbors
/// (3–6 of them at faces/edges/corners), the classic Jacobi iteration for
/// the discrete Laplace equation with Dirichlet boundary data.
///
/// # Panics
/// Panics if `ex * ey * ez != values.len()` or the mask length differs.
pub fn relax_lattice(
    (ex, ey, ez): (usize, usize, usize),
    values: &mut [f64],
    known: &[bool],
    sweeps: usize,
) {
    assert_eq!(ex * ey * ez, values.len(), "lattice/value size mismatch");
    assert_eq!(values.len(), known.len(), "value/known length mismatch");
    if values.is_empty() || sweeps == 0 {
        return;
    }
    let mut next = values.to_vec();
    let idx = |x: usize, y: usize, z: usize| (x * ey + y) * ez + z;
    for _ in 0..sweeps {
        for x in 0..ex {
            for y in 0..ey {
                for z in 0..ez {
                    let i = idx(x, y, z);
                    if known[i] {
                        next[i] = values[i];
                        continue;
                    }
                    let mut sum = 0.0;
                    let mut cnt = 0.0;
                    if x > 0 {
                        sum += values[idx(x - 1, y, z)];
                        cnt += 1.0;
                    }
                    if x + 1 < ex {
                        sum += values[idx(x + 1, y, z)];
                        cnt += 1.0;
                    }
                    if y > 0 {
                        sum += values[idx(x, y - 1, z)];
                        cnt += 1.0;
                    }
                    if y + 1 < ey {
                        sum += values[idx(x, y + 1, z)];
                        cnt += 1.0;
                    }
                    if z > 0 {
                        sum += values[idx(x, y, z - 1)];
                        cnt += 1.0;
                    }
                    if z + 1 < ez {
                        sum += values[idx(x, y, z + 1)];
                        cnt += 1.0;
                    }
                    next[i] = if cnt > 0.0 { sum / cnt } else { values[i] };
                }
            }
        }
        values.copy_from_slice(&next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_converges_to_linear_interpolant() {
        // Knowns at the ends of a 9-point chain; the harmonic solution in
        // 1-D is the straight line between them.
        let mut v = vec![0.0; 9];
        v[0] = 1.0;
        v[8] = 9.0;
        let mut known = vec![false; 9];
        known[0] = true;
        known[8] = true;
        relax_chain(&mut v, &known, 400);
        for (i, &x) in v.iter().enumerate() {
            assert!((x - (1.0 + i as f64)).abs() < 1e-6, "v[{i}] = {x}");
        }
    }

    #[test]
    fn knowns_are_never_touched() {
        let mut v = vec![5.0, 0.0, -3.0, 0.0, 7.0];
        let known = vec![true, false, true, false, true];
        relax_chain(&mut v, &known, 10);
        assert_eq!(v[0], 5.0);
        assert_eq!(v[2], -3.0);
        assert_eq!(v[4], 7.0);
    }

    #[test]
    fn lattice_respects_maximum_principle() {
        // Harmonic interpolants take values between the Dirichlet extremes.
        let e = 6;
        let n = e * e * e;
        let mut v = vec![0.0; n];
        let mut known = vec![false; n];
        for i in (0..n).step_by(7) {
            known[i] = true;
            v[i] = if i % 2 == 0 { -2.0 } else { 3.0 };
        }
        // Seed unknowns mid-range, then relax.
        for i in 0..n {
            if !known[i] {
                v[i] = 0.5;
            }
        }
        relax_lattice((e, e, e), &mut v, &known, 25);
        for (i, &x) in v.iter().enumerate() {
            assert!((-2.0..=3.0).contains(&x), "v[{i}] = {x} escaped bounds");
        }
    }

    #[test]
    fn lattice_reconstruction_beats_seed_error() {
        // Reconstruct a smooth field from a 7-strided subset: relaxation
        // must reduce the error of a constant-seed reconstruction a lot.
        // The stride is deliberately coprime with the edge so the knowns
        // scatter through the volume instead of aliasing onto one face.
        let e = 8;
        let n = e * e * e;
        let truth: Vec<f64> = (0..n)
            .map(|i| {
                let z = (i % e) as f64;
                let y = ((i / e) % e) as f64;
                let x = (i / (e * e)) as f64;
                (0.4 * x).sin() + (0.3 * y).cos() + 0.2 * z
            })
            .collect();
        let mut known = vec![false; n];
        for i in (0..n).step_by(7) {
            known[i] = true;
        }
        known[n - 1] = true;
        let mean = truth.iter().sum::<f64>() / n as f64;
        let mut recon: Vec<f64> = (0..n)
            .map(|i| if known[i] { truth[i] } else { mean })
            .collect();
        let seed_err: f64 = recon
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        relax_lattice((e, e, e), &mut recon, &known, 40);
        let relaxed_err: f64 = recon
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(
            relaxed_err < 0.2 * seed_err,
            "relaxation {relaxed_err} vs seed {seed_err}"
        );
    }

    #[test]
    fn deterministic_bits() {
        let mut a = vec![1.0, 0.0, 0.0, 4.0, 0.0, 2.0];
        let mut b = a.clone();
        let known = vec![true, false, false, true, false, true];
        relax_chain(&mut a, &known, 5);
        relax_chain(&mut b, &known, 5);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
