//! 3D incompressible pseudo-spectral Navier–Stokes solver.
//!
//! This is the reproduction-scale substrate for the paper's stratified
//! (**SST-P1F4**, **SST-P1F100**) and isotropic (**GESTS**) DNS datasets.
//! Like the GESTS code suite it mirrors, nonlinear terms are evaluated in
//! physical space and differentiation/time-evolution in wavenumber space,
//! with 2/3-rule dealiasing. Buoyancy follows the Boussinesq approximation:
//! a buoyancy scalar `b` is evolved with the flow, feeds back on the
//! gravity-aligned momentum component, and its restoring strength is set by
//! the Brunt–Väisälä frequency `N`.
//!
//! Time stepping is second-order Runge–Kutta (Heun) with explicit viscosity;
//! the solver enforces `ν k_max² Δt < 2` and an advective CFL check on
//! construction so misconfigured runs fail loudly instead of blowing up.
//!
//! ## Half-spectrum storage and scratch arenas
//!
//! All evolved fields are real, so their spectra are Hermitian and only the
//! `kz >= 0` half is stored: each spectral field holds `n * n * (n/2 + 1)`
//! coefficients laid out as `(x * n + y) * nzc + z` with `nzc = n/2 + 1`
//! (see [`sickle_fft::RealFft3d`]). This halves the memory footprint and
//! roughly halves the transform cost per right-hand-side evaluation.
//!
//! The steady-state [`SpectralSolver::step`] performs **no field-sized heap
//! allocation**: the two RK stages, the midpoint state, and all
//! physical-space work buffers are preallocated once in
//! [`SpectralSolver::new`] and threaded through the right-hand-side
//! evaluation as a scratch arena (see `Scratch`). Diagnostics like
//! [`SpectralSolver::snapshot`] still allocate freely — they run once per
//! recorded frame, not once per step.
//!
//! Derivatives use a Nyquist-zeroed wavenumber line (`kd[n/2] = 0`): for a
//! real field the `+n/2` and `-n/2` contributions of an odd-order derivative
//! cancel under the real-part projection, so zeroing the bin reproduces the
//! full-complex pipeline exactly while keeping the stored half-spectrum
//! Hermitian-consistent.

#![allow(clippy::needless_range_loop)] // y/z index wavenumber tables in lockstep with chunks

use rayon::prelude::*;
use sickle_fft::{Complex, Kernel, RealFft3d};
use sickle_field::{Axis, Grid3, Snapshot};

/// Buoyancy treatment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Stratification {
    /// No active scalar: pure incompressible NS (isotropic turbulence).
    None,
    /// Boussinesq buoyancy with Brunt–Väisälä frequency `n_bv`, gravity
    /// along `gravity`.
    Boussinesq {
        /// Brunt–Väisälä frequency (restoring strength).
        n_bv: f64,
        /// Gravity axis.
        gravity: Axis,
    },
}

/// Deterministic large-scale forcing: modes with `|k| <= k_f` are rescaled
/// every step to hold their total energy at the initial value, the standard
/// trick for statistically stationary isotropic turbulence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Forcing {
    /// Forcing shell radius (in integer wavenumbers).
    pub k_f: f64,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpectralConfig {
    /// Grid points per side (power of two; the domain is `[0, 2π)³`).
    pub n: usize,
    /// Kinematic viscosity.
    pub viscosity: f64,
    /// Buoyancy diffusivity (used when stratified).
    pub diffusivity: f64,
    /// Time step.
    pub dt: f64,
    /// Buoyancy treatment.
    pub stratification: Stratification,
    /// Optional large-scale forcing.
    pub forcing: Option<Forcing>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            n: 32,
            viscosity: 0.02,
            diffusivity: 0.02,
            dt: 0.01,
            stratification: Stratification::None,
            forcing: None,
        }
    }
}

/// Half-spectrum velocity (+ buoyancy) state: `n * n * (n/2 + 1)` complex
/// coefficients per component, laid out `(x * n + y) * nzc + z`.
#[derive(Clone)]
struct State {
    u: Vec<Complex>,
    v: Vec<Complex>,
    w: Vec<Complex>,
    b: Option<Vec<Complex>>,
}

impl State {
    fn zeros(slen: usize, stratified: bool) -> Self {
        State {
            u: vec![Complex::ZERO; slen],
            v: vec![Complex::ZERO; slen],
            w: vec![Complex::ZERO; slen],
            b: if stratified {
                Some(vec![Complex::ZERO; slen])
            } else {
                None
            },
        }
    }

    fn axpy(&mut self, a: f64, rhs: &State) {
        let f = |dst: &mut [Complex], src: &[Complex]| {
            dst.par_iter_mut()
                .zip(src.par_iter())
                .for_each(|(d, s)| *d += s.scale(a));
        };
        f(&mut self.u, &rhs.u);
        f(&mut self.v, &rhs.v);
        f(&mut self.w, &rhs.w);
        if let (Some(b), Some(rb)) = (self.b.as_mut(), rhs.b.as_ref()) {
            f(b, rb);
        }
    }

    fn copy_from(&mut self, src: &State) {
        self.u.copy_from_slice(&src.u);
        self.v.copy_from_slice(&src.v);
        self.w.copy_from_slice(&src.w);
        if let (Some(b), Some(sb)) = (self.b.as_mut(), src.b.as_ref()) {
            b.copy_from_slice(sb);
        }
    }
}

/// Preallocated work buffers threaded through the right-hand-side
/// evaluation so that steady-state stepping never allocates field-sized
/// memory. Seven physical-space reals (three velocities, three gradient
/// components, one nonlinear product) plus one half-spectrum complex buffer
/// that doubles as the inverse-transform workspace.
struct Scratch {
    up: Vec<f64>,
    vp: Vec<f64>,
    wp: Vec<f64>,
    gx: Vec<f64>,
    gy: Vec<f64>,
    gz: Vec<f64>,
    nl: Vec<f64>,
    cspec: Vec<Complex>,
}

impl Scratch {
    fn new(plen: usize, slen: usize) -> Self {
        Scratch {
            up: vec![0.0; plen],
            vp: vec![0.0; plen],
            wp: vec![0.0; plen],
            gx: vec![0.0; plen],
            gy: vec![0.0; plen],
            gz: vec![0.0; plen],
            nl: vec![0.0; plen],
            cspec: vec![Complex::ZERO; slen],
        }
    }
}

/// Immutable per-run context: configuration, transform plans, wavenumber
/// tables, and the dealiasing mask. Split from the mutable state so the
/// borrow checker can hand `rhs_into` the context, one state, the scratch
/// arena, and an output state simultaneously.
struct SolverCtx {
    cfg: SpectralConfig,
    rfft: RealFft3d,
    /// Integer wavenumber along each axis for each 1D index (`+n/2` at the
    /// Nyquist bin); used for `k²` magnitudes and shell masks.
    kline: Vec<f64>,
    /// Derivative wavenumbers: same as `kline` but zero at the Nyquist bin,
    /// so odd-order spectral derivatives of real fields stay Hermitian.
    kd: Vec<f64>,
    /// Dealiasing mask over the half-spectrum (true = keep).
    keep: Vec<bool>,
}

impl SolverCtx {
    #[inline]
    fn n(&self) -> usize {
        self.cfg.n
    }

    #[inline]
    fn nzc(&self) -> usize {
        self.cfg.n / 2 + 1
    }

    /// Copies `spec` into `work` and inverse-transforms into `out`
    /// (the inverse destroys its spectral input).
    fn to_physical_into(&self, spec: &[Complex], work: &mut [Complex], out: &mut [f64]) {
        work.copy_from_slice(spec);
        self.rfft.inverse(work, out);
    }

    /// Spectral derivative of `spec` along `axis`, written to `out` in
    /// physical space; `work` is the half-spectrum workspace.
    ///
    /// The optimized kernel hoists the axis dispatch out of the inner loop
    /// into three specialized contiguous sweeps (`i·k` is the same scalar
    /// expression either way, so the two kernels are bit-identical).
    fn deriv_into(
        &self,
        spec: &[Complex],
        axis: Axis,
        work: &mut [Complex],
        out: &mut [f64],
        kernel: Kernel,
    ) {
        let n = self.n();
        let nzc = self.nzc();
        let kd = &self.kd;
        match kernel {
            Kernel::Naive => {
                work.par_chunks_mut(n * nzc)
                    .enumerate()
                    .for_each(|(x, chunk)| {
                        for y in 0..n {
                            for z in 0..nzc {
                                let k = match axis {
                                    Axis::X => kd[x],
                                    Axis::Y => kd[y],
                                    Axis::Z => kd[z],
                                };
                                chunk[y * nzc + z] = spec[(x * n + y) * nzc + z].mul_i().scale(k);
                            }
                        }
                    });
            }
            Kernel::Optimized => {
                work.par_chunks_mut(n * nzc)
                    .enumerate()
                    .for_each(|(x, chunk)| {
                        let base = x * n * nzc;
                        match axis {
                            Axis::X => {
                                let k = kd[x];
                                for (c, s) in chunk.iter_mut().zip(&spec[base..base + n * nzc]) {
                                    *c = s.mul_i().scale(k);
                                }
                            }
                            Axis::Y => {
                                for y in 0..n {
                                    let k = kd[y];
                                    let row = &spec[base + y * nzc..base + (y + 1) * nzc];
                                    for (c, s) in chunk[y * nzc..(y + 1) * nzc].iter_mut().zip(row)
                                    {
                                        *c = s.mul_i().scale(k);
                                    }
                                }
                            }
                            Axis::Z => {
                                for y in 0..n {
                                    let row = &spec[base + y * nzc..base + (y + 1) * nzc];
                                    let dst = &mut chunk[y * nzc..(y + 1) * nzc];
                                    for z in 0..nzc {
                                        dst[z] = row[z].mul_i().scale(kd[z]);
                                    }
                                }
                            }
                        }
                    });
            }
        }
        self.rfft.inverse(work, out);
    }

    /// Adds the viscous/diffusive term and applies the dealiasing mask:
    /// `r -= coeff * k² * f` on kept modes, `r = 0` elsewhere.
    ///
    /// The optimized kernel exploits the structure of the 2/3-rule mask: per
    /// `(x, y)` row the kept modes form the prefix `z <= cut`, so it replaces
    /// the per-element mask load and branch with one branchless prefix sweep
    /// plus a tail fill. `k²` keeps the naive `(kx² + ky²) + kz²` association
    /// so the two kernels stay bit-identical.
    fn damp(&self, r: &mut [Complex], f: &[Complex], coeff: f64, kernel: Kernel) {
        let n = self.n();
        let nzc = self.nzc();
        let kline = &self.kline;
        let keep = &self.keep;
        if kernel == Kernel::Naive {
            r.par_chunks_mut(n * nzc)
                .enumerate()
                .for_each(|(x, chunk)| {
                    let kx = kline[x];
                    for y in 0..n {
                        let ky = kline[y];
                        for z in 0..nzc {
                            let kz = z as f64;
                            let i = y * nzc + z;
                            let gi = (x * n + y) * nzc + z;
                            if !keep[gi] {
                                chunk[i] = Complex::ZERO;
                                continue;
                            }
                            let k2 = kx * kx + ky * ky + kz * kz;
                            chunk[i] -= f[gi].scale(coeff * k2);
                        }
                    }
                });
            return;
        }
        // Kept z's per row are exactly `z as f64 <= n/3` (see `new`); the
        // row itself is kept iff its z = 0 mode is kept.
        let cut = n as f64 / 3.0;
        let zkeep = nzc.min(cut.floor() as usize + 1);
        let zsq: Vec<f64> = (0..zkeep).map(|z| (z as f64) * (z as f64)).collect();
        r.par_chunks_mut(n * nzc)
            .enumerate()
            .for_each(|(x, chunk)| {
                let kx = kline[x];
                for y in 0..n {
                    let ky = kline[y];
                    let gi0 = (x * n + y) * nzc;
                    let row = &mut chunk[y * nzc..(y + 1) * nzc];
                    if !keep[gi0] {
                        row.fill(Complex::ZERO);
                        continue;
                    }
                    let kxy2 = kx * kx + ky * ky;
                    let src = &f[gi0..gi0 + zkeep];
                    for z in 0..zkeep {
                        row[z] -= src[z].scale(coeff * (kxy2 + zsq[z]));
                    }
                    row[zkeep..].fill(Complex::ZERO);
                }
            });
    }

    /// Leray projection onto divergence-free fields, all three components.
    /// Uses the derivative wavenumbers so the projected field is exactly
    /// divergence-free under the solver's own gradient operator.
    /// The optimized kernel hoists `kx² + ky²` per row; rows where that
    /// partial sum is positive can never hit `k² == 0`, so their inner loop
    /// drops the singular-mode branch entirely (bit-identical arithmetic —
    /// the association `(kx² + ky²) + kz²` matches the naive path).
    ///
    /// `dealiased` asserts the caller just ran [`Self::damp`], so every mode
    /// outside the 2/3 mask is exactly zero. The optimized kernel then skips
    /// those modes outright: zero inputs make the projection a no-op there
    /// (`dot = 0`, update subtracts `±0`, and `x - 0.0 == x` bitwise for the
    /// kept sign conventions), keeping the output bit-identical. The naive
    /// kernel ignores the hint.
    fn project3(
        &self,
        u: &mut [Complex],
        v: &mut [Complex],
        w: &mut [Complex],
        kernel: Kernel,
        dealiased: bool,
    ) {
        let n = self.n();
        let nzc = self.nzc();
        let kd = &self.kd;
        if kernel == Kernel::Naive {
            u.par_chunks_mut(n * nzc)
                .zip(v.par_chunks_mut(n * nzc).zip(w.par_chunks_mut(n * nzc)))
                .enumerate()
                .for_each(|(x, (us, (vs, ws)))| {
                    let kx = kd[x];
                    for y in 0..n {
                        let ky = kd[y];
                        for z in 0..nzc {
                            let kz = kd[z];
                            let k2 = kx * kx + ky * ky + kz * kz;
                            if k2 == 0.0 {
                                continue;
                            }
                            let i = y * nzc + z;
                            let dot = us[i].scale(kx) + vs[i].scale(ky) + ws[i].scale(kz);
                            let s = dot.scale(1.0 / k2);
                            us[i] -= s.scale(kx);
                            vs[i] -= s.scale(ky);
                            ws[i] -= s.scale(kz);
                        }
                    }
                });
            return;
        }
        let kdsq: Vec<f64> = kd[..nzc].iter().map(|&k| k * k).collect();
        // Prefix bound of the kept modes per row (see `damp`); `nzc` when the
        // caller gave no dealiasing guarantee.
        let zlim = if dealiased {
            nzc.min((self.cfg.n as f64 / 3.0).floor() as usize + 1)
        } else {
            nzc
        };
        let keep = &self.keep;
        u.par_chunks_mut(n * nzc)
            .zip(v.par_chunks_mut(n * nzc).zip(w.par_chunks_mut(n * nzc)))
            .enumerate()
            .for_each(|(x, (us, (vs, ws)))| {
                let kx = kd[x];
                for y in 0..n {
                    if dealiased && !keep[(x * n + y) * nzc] {
                        continue;
                    }
                    let ky = kd[y];
                    let kxy2 = kx * kx + ky * ky;
                    let i0 = y * nzc;
                    if kxy2 > 0.0 {
                        // No singular mode in this row: branch-free sweep.
                        for z in 0..zlim {
                            let kz = kd[z];
                            let i = i0 + z;
                            let dot = us[i].scale(kx) + vs[i].scale(ky) + ws[i].scale(kz);
                            let s = dot.scale(1.0 / (kxy2 + kdsq[z]));
                            us[i] -= s.scale(kx);
                            vs[i] -= s.scale(ky);
                            ws[i] -= s.scale(kz);
                        }
                        continue;
                    }
                    // kx = ky = 0 row (mean/Nyquist lines): kz carries the
                    // whole projection and the kz = 0 modes are skipped.
                    for z in 0..zlim {
                        let kz = kd[z];
                        if kdsq[z] == 0.0 {
                            continue;
                        }
                        let i = i0 + z;
                        let dot = us[i].scale(kx) + vs[i].scale(ky) + ws[i].scale(kz);
                        let s = dot.scale(1.0 / (kxy2 + kdsq[z]));
                        us[i] -= s.scale(kx);
                        vs[i] -= s.scale(ky);
                        ws[i] -= s.scale(kz);
                    }
                }
            });
    }
}

/// The pseudo-spectral solver.
pub struct SpectralSolver {
    ctx: SolverCtx,
    state: State,
    /// RK2 stage buffers and midpoint state, preallocated once.
    k1: State,
    k2: State,
    mid: State,
    scratch: Scratch,
    time: f64,
    /// Target band energy for forcing (captured at init when forcing is on).
    band_energy: Option<f64>,
    steps: usize,
}

impl SpectralSolver {
    /// Creates a solver with zero initial velocity.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or the explicit time step is
    /// unstable for the configured viscosity.
    pub fn new(cfg: SpectralConfig) -> Self {
        assert!(
            sickle_fft::is_power_of_two(cfg.n),
            "grid size must be a power of two"
        );
        let n = cfg.n;
        let kmax = (n as f64) / 3.0; // post-dealias maximum wavenumber
        let visc_limit = cfg.viscosity * kmax * kmax * cfg.dt;
        assert!(
            visc_limit < 2.0,
            "explicit viscous step unstable: nu*kmax^2*dt = {visc_limit:.3} >= 2"
        );
        let kline: Vec<f64> = (0..n)
            .map(|i| {
                if i <= n / 2 {
                    i as f64
                } else {
                    i as f64 - n as f64
                }
            })
            .collect();
        let kd: Vec<f64> = kline
            .iter()
            .enumerate()
            .map(|(i, &k)| if i == n / 2 { 0.0 } else { k })
            .collect();
        let nzc = n / 2 + 1;
        let cut = n as f64 / 3.0;
        let mut keep = vec![true; n * n * nzc];
        for x in 0..n {
            for y in 0..n {
                for z in 0..nzc {
                    if kline[x].abs() > cut || kline[y].abs() > cut || z as f64 > cut {
                        keep[(x * n + y) * nzc + z] = false;
                    }
                }
            }
        }
        let plen = n * n * n;
        let slen = n * n * nzc;
        let stratified = matches!(cfg.stratification, Stratification::Boussinesq { .. });
        SpectralSolver {
            ctx: SolverCtx {
                cfg,
                rfft: RealFft3d::new(n, n, n),
                kline,
                kd,
                keep,
            },
            state: State::zeros(slen, stratified),
            k1: State::zeros(slen, stratified),
            k2: State::zeros(slen, stratified),
            mid: State::zeros(slen, stratified),
            scratch: Scratch::new(plen, slen),
            time: 0.0,
            band_energy: None,
            steps: 0,
        }
    }

    /// Grid describing the physical domain.
    pub fn grid(&self) -> Grid3 {
        Grid3::cube_2pi(self.ctx.cfg.n)
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Configuration.
    pub fn config(&self) -> &SpectralConfig {
        &self.ctx.cfg
    }

    /// Initializes the classic Taylor–Green vortex (the SST ensemble's
    /// initial condition): `u = sin x cos y cos z`, `v = -cos x sin y cos z`,
    /// `w = 0`, optionally with a sinusoidal buoyancy perturbation.
    pub fn init_taylor_green(&mut self, amplitude: f64) {
        let n = self.ctx.cfg.n;
        let grid = self.grid();
        let fill = |buf: &mut [f64], f: &(dyn Fn(f64, f64, f64) -> f64 + Sync)| {
            buf.par_chunks_mut(n * n).enumerate().for_each(|(x, slab)| {
                for y in 0..n {
                    for z in 0..n {
                        let (px, py, pz) = grid.position(x, y, z);
                        slab[y * n + z] = f(px, py, pz);
                    }
                }
            });
        };
        fill(&mut self.scratch.up, &|px, py, pz| {
            amplitude * px.sin() * py.cos() * pz.cos()
        });
        fill(&mut self.scratch.vp, &|px, py, pz| {
            -amplitude * px.cos() * py.sin() * pz.cos()
        });
        self.ctx.rfft.forward(&self.scratch.up, &mut self.state.u);
        self.ctx.rfft.forward(&self.scratch.vp, &mut self.state.v);
        self.state.w.fill(Complex::ZERO);
        if let Some(b) = self.state.b.as_mut() {
            // Small buoyancy perturbation at the largest scale so the
            // stratified dynamics have something to act on.
            fill(&mut self.scratch.wp, &|px, _, _| 0.1 * amplitude * px.sin());
            self.ctx.rfft.forward(&self.scratch.wp, b);
        }
        self.capture_band_energy();
    }

    /// Sets velocity directly from physical-space fields (e.g. from the
    /// synthetic-turbulence generator); the field is projected to be
    /// divergence-free.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_velocity(&mut self, u: &[f64], v: &[f64], w: &[f64]) {
        let len = self.grid().len();
        assert!(
            u.len() == len && v.len() == len && w.len() == len,
            "field length mismatch"
        );
        self.ctx.rfft.forward(u, &mut self.state.u);
        self.ctx.rfft.forward(v, &mut self.state.v);
        self.ctx.rfft.forward(w, &mut self.state.w);
        let Self { ctx, state, .. } = self;
        ctx.project3(
            &mut state.u,
            &mut state.v,
            &mut state.w,
            sickle_fft::kernel(),
            false,
        );
        self.capture_band_energy();
    }

    /// Sets the buoyancy field from physical space (stratified runs only).
    ///
    /// # Panics
    /// Panics if the solver is not stratified or on length mismatch.
    pub fn set_buoyancy(&mut self, b: &[f64]) {
        assert_eq!(b.len(), self.grid().len(), "field length mismatch");
        self.ctx
            .rfft
            .forward(b, self.state.b.as_mut().expect("solver is not stratified"));
    }

    fn capture_band_energy(&mut self) {
        if let Some(forcing) = self.ctx.cfg.forcing {
            self.band_energy = Some(self.band_energy_value(forcing.k_f));
        }
    }

    /// Energy in modes `0 < |k| <= k_f`, summed over the half-spectrum with
    /// conjugate weights (interior `kz` bins stand for two full-spectrum
    /// modes).
    fn band_energy_value(&self, k_f: f64) -> f64 {
        let n = self.ctx.cfg.n;
        let nzc = self.ctx.nzc();
        let norm = (n as f64).powi(6);
        let kf2 = k_f * k_f;
        let (u, v, w) = (&self.state.u, &self.state.v, &self.state.w);
        let kline = &self.ctx.kline;
        let e: f64 = (0..n)
            .into_par_iter()
            .map(|x| {
                let kx = kline[x];
                let mut acc = 0.0;
                for y in 0..n {
                    let ky = kline[y];
                    for z in 0..nzc {
                        let kz = z as f64;
                        let k2 = kx * kx + ky * ky + kz * kz;
                        if k2 > 0.0 && k2 <= kf2 {
                            let wgt = if z == 0 || z == n / 2 { 1.0 } else { 2.0 };
                            let idx = (x * n + y) * nzc + z;
                            acc +=
                                wgt * (u[idx].norm_sqr() + v[idx].norm_sqr() + w[idx].norm_sqr());
                        }
                    }
                }
                acc
            })
            .sum();
        0.5 * e / norm
    }

    /// Inverse-transforms a half-spectrum field to physical space
    /// (diagnostic path; allocates).
    fn to_physical(&self, spec: &[Complex]) -> Vec<f64> {
        let mut work = spec.to_vec();
        let mut out = vec![0.0; self.grid().len()];
        self.ctx.rfft.inverse(&mut work, &mut out);
        out
    }

    /// Spectral derivative along `axis`, returned in physical space
    /// (diagnostic path; allocates).
    fn deriv_physical(&self, spec: &[Complex], axis: Axis) -> Vec<f64> {
        let mut work = vec![Complex::ZERO; spec.len()];
        let mut out = vec![0.0; self.grid().len()];
        self.ctx
            .deriv_into(spec, axis, &mut work, &mut out, sickle_fft::kernel());
        out
    }

    /// Computes the full right-hand side of the (projected) momentum and
    /// buoyancy equations for `s`, writing into the preallocated `out` state
    /// without any field-sized allocation.
    fn rhs_into(ctx: &SolverCtx, s: &State, scr: &mut Scratch, out: &mut State, kernel: Kernel) {
        // Physical-space velocities.
        {
            let _fft = sickle_obs::span!("cfd.fft_inverse");
            ctx.to_physical_into(&s.u, &mut scr.cspec, &mut scr.up);
            ctx.to_physical_into(&s.v, &mut scr.cspec, &mut scr.vp);
            ctx.to_physical_into(&s.w, &mut scr.cspec, &mut scr.wp);
        }

        // Advection, one component at a time: N_i = -(u . grad) u_i needs
        // only the three gradients of u_i, so the gradient buffers recycle.
        let nl_span = sickle_obs::span!("cfd.nonlinear");
        for comp in 0..3 {
            let src = match comp {
                0 => &s.u,
                1 => &s.v,
                _ => &s.w,
            };
            ctx.deriv_into(src, Axis::X, &mut scr.cspec, &mut scr.gx, kernel);
            ctx.deriv_into(src, Axis::Y, &mut scr.cspec, &mut scr.gy, kernel);
            ctx.deriv_into(src, Axis::Z, &mut scr.cspec, &mut scr.gz, kernel);
            let (up, vp, wp) = (&scr.up, &scr.vp, &scr.wp);
            let (gx, gy, gz) = (&scr.gx, &scr.gy, &scr.gz);
            scr.nl.par_iter_mut().enumerate().for_each(|(i, o)| {
                *o = -(up[i] * gx[i] + vp[i] * gy[i] + wp[i] * gz[i]);
            });
            let dst = match comp {
                0 => &mut out.u,
                1 => &mut out.v,
                _ => &mut out.w,
            };
            ctx.rfft.forward(&scr.nl, dst);
        }
        drop(nl_span);

        // Buoyancy terms.
        let buoy_span = sickle_obs::span!("cfd.buoyancy");
        if let (Some(bh), Stratification::Boussinesq { n_bv, gravity }) =
            (s.b.as_ref(), ctx.cfg.stratification)
        {
            ctx.deriv_into(bh, Axis::X, &mut scr.cspec, &mut scr.gx, kernel);
            ctx.deriv_into(bh, Axis::Y, &mut scr.cspec, &mut scr.gy, kernel);
            ctx.deriv_into(bh, Axis::Z, &mut scr.cspec, &mut scr.gz, kernel);
            let ug: &[f64] = match gravity {
                Axis::X => &scr.up,
                Axis::Y => &scr.vp,
                Axis::Z => &scr.wp,
            };
            let (up, vp, wp) = (&scr.up, &scr.vp, &scr.wp);
            let (gx, gy, gz) = (&scr.gx, &scr.gy, &scr.gz);
            // db/dt = -(u . grad b) - N^2 u_g + kappa laplacian b
            scr.nl.par_iter_mut().enumerate().for_each(|(i, o)| {
                *o = -(up[i] * gx[i] + vp[i] * gy[i] + wp[i] * gz[i]) - n_bv * n_bv * ug[i];
            });
            ctx.rfft
                .forward(&scr.nl, out.b.as_mut().expect("output state is stratified"));
            // Momentum feedback: + b along gravity.
            let target: &mut Vec<Complex> = match gravity {
                Axis::X => &mut out.u,
                Axis::Y => &mut out.v,
                Axis::Z => &mut out.w,
            };
            target
                .par_iter_mut()
                .zip(bh.par_iter())
                .for_each(|(t, &b)| *t += b);
        }

        drop(buoy_span);

        // Viscous terms, dealiasing, projection (spectral space).
        let nu = ctx.cfg.viscosity;
        let kappa = ctx.cfg.diffusivity;
        {
            let _damp = sickle_obs::span!("cfd.damp");
            ctx.damp(&mut out.u, &s.u, nu, kernel);
            ctx.damp(&mut out.v, &s.v, nu, kernel);
            ctx.damp(&mut out.w, &s.w, nu, kernel);
            if let (Some(rb), Some(bh)) = (out.b.as_mut(), s.b.as_ref()) {
                ctx.damp(rb, bh, kappa, kernel);
            }
        }
        let _proj = sickle_obs::span!("cfd.projection");
        // `damp` just zeroed every mode outside the 2/3 mask, so the
        // optimized projection may skip them (bit-identical no-ops).
        ctx.project3(&mut out.u, &mut out.v, &mut out.w, kernel, true);
    }

    /// Advances one RK2 (Heun) step and applies forcing if configured.
    /// Steady-state calls perform no field-sized heap allocation.
    pub fn step(&mut self) {
        let _step = sickle_obs::span!("cfd.step", step = self.steps);
        let dt = self.ctx.cfg.dt;
        // One kernel read per step: the pointwise spectral operators below
        // honor the same global switch as the FFTs they interleave with.
        let kernel = sickle_fft::kernel();
        Self::rhs_into(
            &self.ctx,
            &self.state,
            &mut self.scratch,
            &mut self.k1,
            kernel,
        );
        self.mid.copy_from(&self.state);
        self.mid.axpy(dt, &self.k1);
        Self::rhs_into(
            &self.ctx,
            &self.mid,
            &mut self.scratch,
            &mut self.k2,
            kernel,
        );
        self.state.axpy(0.5 * dt, &self.k1);
        self.state.axpy(0.5 * dt, &self.k2);
        if let (Some(f), Some(target)) = (self.ctx.cfg.forcing, self.band_energy) {
            let _forcing = sickle_obs::span!("cfd.forcing");
            let current = self.band_energy_value(f.k_f);
            if current > 1e-30 {
                let scale = (target / current).sqrt();
                let n = self.ctx.cfg.n;
                let nzc = self.ctx.nzc();
                let kline = &self.ctx.kline;
                let kf2 = f.k_f * f.k_f;
                let apply = |arr: &mut Vec<Complex>| {
                    arr.par_chunks_mut(n * nzc)
                        .enumerate()
                        .for_each(|(x, chunk)| {
                            let kx = kline[x];
                            for y in 0..n {
                                let ky = kline[y];
                                for z in 0..nzc {
                                    let kz = z as f64;
                                    let k2 = kx * kx + ky * ky + kz * kz;
                                    if k2 > 0.0 && k2 <= kf2 {
                                        let i = y * nzc + z;
                                        chunk[i] = chunk[i].scale(scale);
                                    }
                                }
                            }
                        });
                };
                apply(&mut self.state.u);
                apply(&mut self.state.v);
                apply(&mut self.state.w);
            }
        }
        self.time += dt;
        self.steps += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Total kinetic energy `0.5 <|u|²>` (volume-averaged), summed over the
    /// half-spectrum with conjugate weights.
    pub fn kinetic_energy(&self) -> f64 {
        let n = self.ctx.cfg.n;
        let nzc = self.ctx.nzc();
        let norm = (n as f64).powi(6);
        let (u, v, w) = (&self.state.u, &self.state.v, &self.state.w);
        let e: f64 = (0..n * n)
            .into_par_iter()
            .map(|row| {
                let mut acc = 0.0;
                for z in 0..nzc {
                    let wgt = if z == 0 || z == n / 2 { 1.0 } else { 2.0 };
                    let idx = row * nzc + z;
                    acc += wgt * (u[idx].norm_sqr() + v[idx].norm_sqr() + w[idx].norm_sqr());
                }
                acc
            })
            .sum();
        0.5 * e / norm
    }

    /// Maximum divergence magnitude in physical space (should be ~0).
    pub fn max_divergence(&self) -> f64 {
        let dudx = self.deriv_physical(&self.state.u, Axis::X);
        let dvdy = self.deriv_physical(&self.state.v, Axis::Y);
        let dwdz = self.deriv_physical(&self.state.w, Axis::Z);
        (0..dudx.len())
            .map(|i| (dudx[i] + dvdy[i] + dwdz[i]).abs())
            .fold(0.0, f64::max)
    }

    /// Builds a snapshot with `u, v, w, p` (+ `r` when stratified). The
    /// pressure solves `∇²p = ∇·F` for the unprojected RHS `F`, exactly the
    /// diagnostic pressure of a spectral DNS.
    pub fn snapshot(&self) -> Snapshot {
        let grid = self.grid();
        let up = self.to_physical(&self.state.u);
        let vp = self.to_physical(&self.state.v);
        let wp = self.to_physical(&self.state.w);

        // Pressure from the divergence of advection + buoyancy.
        let n = self.ctx.cfg.n;
        let nzc = self.ctx.nzc();
        // Recompute the unprojected advection spectrum cheaply.
        let grads = [
            [
                self.deriv_physical(&self.state.u, Axis::X),
                self.deriv_physical(&self.state.u, Axis::Y),
                self.deriv_physical(&self.state.u, Axis::Z),
            ],
            [
                self.deriv_physical(&self.state.v, Axis::X),
                self.deriv_physical(&self.state.v, Axis::Y),
                self.deriv_physical(&self.state.v, Axis::Z),
            ],
            [
                self.deriv_physical(&self.state.w, Axis::X),
                self.deriv_physical(&self.state.w, Axis::Y),
                self.deriv_physical(&self.state.w, Axis::Z),
            ],
        ];
        let len = grid.len();
        let slen = self.ctx.rfft.spectrum_len();
        let advect = |g: &[Vec<f64>; 3]| -> Vec<Complex> {
            let prod: Vec<f64> = (0..len)
                .into_par_iter()
                .map(|i| -(up[i] * g[0][i] + vp[i] * g[1][i] + wp[i] * g[2][i]))
                .collect();
            let mut c = vec![Complex::ZERO; slen];
            self.ctx.rfft.forward(&prod, &mut c);
            c
        };
        let mut fu = advect(&grads[0]);
        let mut fv = advect(&grads[1]);
        let mut fw = advect(&grads[2]);
        if let (Some(bh), Stratification::Boussinesq { gravity, .. }) =
            (self.state.b.as_ref(), self.ctx.cfg.stratification)
        {
            let target = match gravity {
                Axis::X => &mut fu,
                Axis::Y => &mut fv,
                Axis::Z => &mut fw,
            };
            target
                .par_iter_mut()
                .zip(bh.par_iter())
                .for_each(|(t, &b)| *t += b);
        }
        let kd = &self.ctx.kd;
        let kline = &self.ctx.kline;
        let mut phat = vec![Complex::ZERO; slen];
        phat.par_chunks_mut(n * nzc)
            .enumerate()
            .for_each(|(x, chunk)| {
                let kx = kd[x];
                for y in 0..n {
                    let ky = kd[y];
                    for z in 0..nzc {
                        let kz = kd[z];
                        let km = kline[x] * kline[x] + kline[y] * kline[y] + (z * z) as f64;
                        if km == 0.0 {
                            continue;
                        }
                        let gi = (x * n + y) * nzc + z;
                        let div = fu[gi].scale(kx) + fv[gi].scale(ky) + fw[gi].scale(kz);
                        // -k^2 p_hat = i k . F  =>  p_hat = -i (k . F) / k^2
                        chunk[y * nzc + z] = div.mul_i().scale(-1.0 / km);
                    }
                }
            });
        let p = self.to_physical(&phat);

        let mut snap = Snapshot::new(grid, self.time)
            .with_var("u", up)
            .with_var("v", vp)
            .with_var("w", wp)
            .with_var("p", p);
        if let Some(bh) = self.state.b.as_ref() {
            snap.push_var("r", self.to_physical(bh));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_fft::Fft3d;

    fn tg_solver(n: usize) -> SpectralSolver {
        let mut s = SpectralSolver::new(SpectralConfig {
            n,
            dt: 0.005,
            ..Default::default()
        });
        s.init_taylor_green(1.0);
        s
    }

    /// The optimized pointwise spectral operators (`deriv_into`, `damp`,
    /// `project3`) restructure loops but keep every floating-point
    /// expression's association, so naive and optimized must agree to the
    /// last bit — exercised on non-power-of-3 grids where the 2/3 mask
    /// prefix is fractional.
    #[test]
    fn pointwise_spectral_operators_bit_identical_across_kernels() {
        for n in [8usize, 16] {
            let s = tg_solver(n);
            let ctx = &s.ctx;
            let slen = n * n * ctx.nzc();
            let spec: Vec<Complex> = (0..slen)
                .map(|i| {
                    Complex::new(
                        (i as f64 * 0.731).sin() * 2.0,
                        (i as f64 * 1.137).cos() * 0.5,
                    )
                })
                .collect();
            let bits = |c: &[Complex]| -> Vec<(u64, u64)> {
                c.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
            };
            // deriv_into, all three axes.
            for axis in [Axis::X, Axis::Y, Axis::Z] {
                let mut wn = vec![Complex::ZERO; slen];
                let mut wo = vec![Complex::ZERO; slen];
                let mut out = vec![0.0; n * n * n];
                ctx.deriv_into(&spec, axis, &mut wn, &mut out, Kernel::Naive);
                // Both calls share whatever global FFT kernel is active, so
                // any output difference comes from the fill loops alone.
                let mut out2 = vec![0.0; n * n * n];
                ctx.deriv_into(&spec, axis, &mut wo, &mut out2, Kernel::Optimized);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    out2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "deriv n={n} axis={axis:?}"
                );
            }
            // damp.
            let f: Vec<Complex> = spec.iter().map(|z| z.scale(0.37)).collect();
            let mut rn = spec.clone();
            let mut ro = spec.clone();
            ctx.damp(&mut rn, &f, 0.02, Kernel::Naive);
            ctx.damp(&mut ro, &f, 0.02, Kernel::Optimized);
            assert_eq!(bits(&rn), bits(&ro), "damp n={n}");
            // project3.
            let v: Vec<Complex> = spec.iter().map(|z| z.mul_i()).collect();
            let w: Vec<Complex> = spec.iter().map(|z| z.scale(-1.3)).collect();
            let (mut un, mut vn, mut wn) = (spec.clone(), v.clone(), w.clone());
            let (mut uo, mut vo, mut wo) = (spec.clone(), v.clone(), w.clone());
            ctx.project3(&mut un, &mut vn, &mut wn, Kernel::Naive, false);
            ctx.project3(&mut uo, &mut vo, &mut wo, Kernel::Optimized, false);
            assert_eq!(bits(&un), bits(&uo), "project3 u n={n}");
            assert_eq!(bits(&vn), bits(&vo), "project3 v n={n}");
            assert_eq!(bits(&wn), bits(&wo), "project3 w n={n}");
            // The dealiased fast path must also be a bit-identical no-op on
            // the masked modes: damp first (zeroing them), then compare the
            // hinted optimized projection against the naive one.
            let damp_then_project = |kernel: Kernel, dealiased: bool| {
                let (mut du, mut dv, mut dw) = (spec.clone(), v.clone(), w.clone());
                ctx.damp(&mut du, &f, 0.01, kernel);
                ctx.damp(&mut dv, &f, 0.01, kernel);
                ctx.damp(&mut dw, &f, 0.01, kernel);
                ctx.project3(&mut du, &mut dv, &mut dw, kernel, dealiased);
                (bits(&du), bits(&dv), bits(&dw))
            };
            assert_eq!(
                damp_then_project(Kernel::Naive, false),
                damp_then_project(Kernel::Optimized, true),
                "dealiased project3 fast path n={n}"
            );
        }
    }

    #[test]
    fn taylor_green_energy_decays() {
        let mut s = tg_solver(16);
        let e0 = s.kinetic_energy();
        assert!(e0 > 0.0);
        s.run(20);
        let e1 = s.kinetic_energy();
        assert!(e1 < e0, "energy must decay without forcing: {e0} -> {e1}");
        assert!(e1 > 0.0);
    }

    #[test]
    fn taylor_green_initial_energy_matches_theory() {
        // <u^2 + v^2>/2 for TG = 2 * (1/8) * A^2 / 2 = A^2 / 8.
        let s = tg_solver(16);
        let e = s.kinetic_energy();
        assert!((e - 0.125).abs() < 1e-6, "E = {e}");
    }

    #[test]
    fn velocity_stays_divergence_free() {
        let mut s = tg_solver(16);
        s.run(10);
        let div = s.max_divergence();
        let umax = 1.0;
        assert!(div < 1e-8 * umax * 16.0, "divergence {div}");
    }

    #[test]
    fn forcing_maintains_band_energy() {
        let mut cfg = SpectralConfig {
            n: 16,
            dt: 0.005,
            ..Default::default()
        };
        cfg.forcing = Some(Forcing { k_f: 2.0 });
        let mut s = SpectralSolver::new(cfg);
        s.init_taylor_green(1.0);
        let e0 = s.band_energy_value(2.0);
        s.run(30);
        let e1 = s.band_energy_value(2.0);
        assert!(
            (e1 - e0).abs() < 1e-8 * e0.max(1e-30) + 1e-12,
            "band energy {e0} -> {e1}"
        );
    }

    #[test]
    fn stratified_run_exchanges_energy_with_buoyancy() {
        let cfg = SpectralConfig {
            n: 16,
            dt: 0.005,
            stratification: Stratification::Boussinesq {
                n_bv: 2.0,
                gravity: Axis::Z,
            },
            ..Default::default()
        };
        let mut s = SpectralSolver::new(cfg);
        s.init_taylor_green(1.0);
        s.run(20);
        let snap = s.snapshot();
        let r = snap.expect_var("r");
        assert!(
            r.iter().any(|&v| v.abs() > 1e-8),
            "buoyancy field should evolve"
        );
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn snapshot_contains_expected_variables() {
        let mut s = tg_solver(8);
        s.run(2);
        let snap = s.snapshot();
        assert_eq!(snap.names, vec!["u", "v", "w", "p"]);
        assert_eq!(snap.num_points(), 512);
        assert!(snap.expect_var("p").iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable_time_step() {
        let cfg = SpectralConfig {
            n: 64,
            viscosity: 0.1,
            dt: 0.5,
            ..Default::default()
        };
        let _ = SpectralSolver::new(cfg);
    }

    #[test]
    fn set_velocity_projects_to_divergence_free() {
        let mut s = SpectralSolver::new(SpectralConfig {
            n: 16,
            dt: 0.005,
            ..Default::default()
        });
        let grid = s.grid();
        // A compressible field: u = sin(x), rest zero has du/dx != 0.
        let mut u = vec![0.0; grid.len()];
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    let (px, _, _) = grid.position(x, y, z);
                    u[grid.idx(x, y, z)] = px.sin();
                }
            }
        }
        let zeros = vec![0.0; grid.len()];
        s.set_velocity(&u, &zeros, &zeros);
        assert!(s.max_divergence() < 1e-8);
    }

    /// Full-complex-spectrum RK2 reference (the pre-half-spectrum
    /// implementation, unstratified and unforced), used to pin the
    /// half-spectrum solver to the original algorithm.
    struct ComplexRef {
        n: usize,
        nu: f64,
        dt: f64,
        fft: Fft3d,
        kline: Vec<f64>,
        keep: Vec<bool>,
        u: Vec<Complex>,
        v: Vec<Complex>,
        w: Vec<Complex>,
    }

    impl ComplexRef {
        fn new(n: usize, nu: f64, dt: f64) -> Self {
            let kline: Vec<f64> = (0..n)
                .map(|i| {
                    if i <= n / 2 {
                        i as f64
                    } else {
                        i as f64 - n as f64
                    }
                })
                .collect();
            let cut = n as f64 / 3.0;
            let mut keep = vec![true; n * n * n];
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        if kline[x].abs() > cut || kline[y].abs() > cut || kline[z].abs() > cut {
                            keep[(x * n + y) * n + z] = false;
                        }
                    }
                }
            }
            let len = n * n * n;
            ComplexRef {
                n,
                nu,
                dt,
                fft: Fft3d::new(n, n, n),
                kline,
                keep,
                u: vec![Complex::ZERO; len],
                v: vec![Complex::ZERO; len],
                w: vec![Complex::ZERO; len],
            }
        }

        fn init_taylor_green(&mut self, a: f64) {
            let n = self.n;
            let grid = Grid3::cube_2pi(n);
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let (px, py, pz) = grid.position(x, y, z);
                        let idx = (x * n + y) * n + z;
                        self.u[idx] = Complex::new(a * px.sin() * py.cos() * pz.cos(), 0.0);
                        self.v[idx] = Complex::new(-a * px.cos() * py.sin() * pz.cos(), 0.0);
                    }
                }
            }
            self.fft.forward(&mut self.u);
            self.fft.forward(&mut self.v);
        }

        fn to_phys(&self, f: &[Complex]) -> Vec<f64> {
            let mut c = f.to_vec();
            self.fft.inverse(&mut c);
            c.iter().map(|z| z.re).collect()
        }

        fn deriv(&self, f: &[Complex], axis: Axis) -> Vec<f64> {
            let n = self.n;
            let mut d = vec![Complex::ZERO; f.len()];
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let k = match axis {
                            Axis::X => self.kline[x],
                            Axis::Y => self.kline[y],
                            Axis::Z => self.kline[z],
                        };
                        let i = (x * n + y) * n + z;
                        d[i] = f[i].mul_i().scale(k);
                    }
                }
            }
            self.fft.inverse(&mut d);
            d.iter().map(|z| z.re).collect()
        }

        fn rhs(
            &self,
            u: &[Complex],
            v: &[Complex],
            w: &[Complex],
        ) -> (Vec<Complex>, Vec<Complex>, Vec<Complex>) {
            let n = self.n;
            let len = u.len();
            let up = self.to_phys(u);
            let vp = self.to_phys(v);
            let wp = self.to_phys(w);
            let advect = |f: &[Complex]| -> Vec<Complex> {
                let gx = self.deriv(f, Axis::X);
                let gy = self.deriv(f, Axis::Y);
                let gz = self.deriv(f, Axis::Z);
                let mut c: Vec<Complex> = (0..len)
                    .map(|i| Complex::new(-(up[i] * gx[i] + vp[i] * gy[i] + wp[i] * gz[i]), 0.0))
                    .collect();
                self.fft.forward(&mut c);
                c
            };
            let mut ru = advect(u);
            let mut rv = advect(v);
            let mut rw = advect(w);
            let damp = |r: &mut [Complex], f: &[Complex], coeff: f64| {
                for x in 0..n {
                    for y in 0..n {
                        for z in 0..n {
                            let i = (x * n + y) * n + z;
                            if !self.keep[i] {
                                r[i] = Complex::ZERO;
                                continue;
                            }
                            let k2 = self.kline[x] * self.kline[x]
                                + self.kline[y] * self.kline[y]
                                + self.kline[z] * self.kline[z];
                            r[i] -= f[i].scale(coeff * k2);
                        }
                    }
                }
            };
            damp(&mut ru, u, self.nu);
            damp(&mut rv, v, self.nu);
            damp(&mut rw, w, self.nu);
            // Leray projection.
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let (kx, ky, kz) = (self.kline[x], self.kline[y], self.kline[z]);
                        let k2 = kx * kx + ky * ky + kz * kz;
                        if k2 == 0.0 {
                            continue;
                        }
                        let i = (x * n + y) * n + z;
                        let dot = ru[i].scale(kx) + rv[i].scale(ky) + rw[i].scale(kz);
                        let s = dot.scale(1.0 / k2);
                        ru[i] -= s.scale(kx);
                        rv[i] -= s.scale(ky);
                        rw[i] -= s.scale(kz);
                    }
                }
            }
            (ru, rv, rw)
        }

        fn step(&mut self) {
            let dt = self.dt;
            let (k1u, k1v, k1w) = self.rhs(&self.u, &self.v, &self.w);
            let mid = |s: &[Complex], k: &[Complex]| -> Vec<Complex> {
                s.iter().zip(k).map(|(a, b)| *a + b.scale(dt)).collect()
            };
            let (mu, mv, mw) = (mid(&self.u, &k1u), mid(&self.v, &k1v), mid(&self.w, &k1w));
            let (k2u, k2v, k2w) = self.rhs(&mu, &mv, &mw);
            let upd = |s: &mut [Complex], k1: &[Complex], k2: &[Complex]| {
                for i in 0..s.len() {
                    s[i] += k1[i].scale(0.5 * dt) + k2[i].scale(0.5 * dt);
                }
            };
            upd(&mut self.u, &k1u, &k2u);
            upd(&mut self.v, &k1v, &k2v);
            upd(&mut self.w, &k1w, &k2w);
        }
    }

    #[test]
    fn half_spectrum_step_matches_complex_reference() {
        // One RK2 step on the 32^3 Taylor-Green vortex must agree with the
        // original full-complex-spectrum implementation to near machine
        // precision in every physical velocity sample.
        let n = 32;
        let (nu, dt) = (0.02, 0.005);
        let mut solver = SpectralSolver::new(SpectralConfig {
            n,
            viscosity: nu,
            dt,
            ..Default::default()
        });
        solver.init_taylor_green(1.0);
        let mut reference = ComplexRef::new(n, nu, dt);
        reference.init_taylor_green(1.0);

        solver.step();
        reference.step();

        let snap = solver.snapshot();
        for (name, refspec) in [
            ("u", &reference.u),
            ("v", &reference.v),
            ("w", &reference.w),
        ] {
            let got = snap.expect_var(name);
            let want = reference.to_phys(refspec);
            let mut worst = 0.0f64;
            for (a, b) in got.iter().zip(&want) {
                worst = worst.max((a - b).abs());
            }
            assert!(worst < 1e-8, "component {name}: max |Δ| = {worst:e}");
        }
    }
}
