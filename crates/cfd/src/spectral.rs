//! 3D incompressible pseudo-spectral Navier–Stokes solver.
//!
//! This is the reproduction-scale substrate for the paper's stratified
//! (**SST-P1F4**, **SST-P1F100**) and isotropic (**GESTS**) DNS datasets.
//! Like the GESTS code suite it mirrors, nonlinear terms are evaluated in
//! physical space and differentiation/time-evolution in wavenumber space,
//! with 2/3-rule dealiasing. Buoyancy follows the Boussinesq approximation:
//! a buoyancy scalar `b` is evolved with the flow, feeds back on the
//! gravity-aligned momentum component, and its restoring strength is set by
//! the Brunt–Väisälä frequency `N`.
//!
//! Time stepping is second-order Runge–Kutta (Heun) with explicit viscosity;
//! the solver enforces `ν k_max² Δt < 2` and an advective CFL check on
//! construction so misconfigured runs fail loudly instead of blowing up.

#![allow(clippy::needless_range_loop)] // y/z index wavenumber tables in lockstep with chunks

use rayon::prelude::*;
use sickle_fft::{Complex, Fft3d};
use sickle_field::{Axis, Grid3, Snapshot};

/// Buoyancy treatment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Stratification {
    /// No active scalar: pure incompressible NS (isotropic turbulence).
    None,
    /// Boussinesq buoyancy with Brunt–Väisälä frequency `n_bv`, gravity
    /// along `gravity`.
    Boussinesq {
        /// Brunt–Väisälä frequency (restoring strength).
        n_bv: f64,
        /// Gravity axis.
        gravity: Axis,
    },
}

/// Deterministic large-scale forcing: modes with `|k| <= k_f` are rescaled
/// every step to hold their total energy at the initial value, the standard
/// trick for statistically stationary isotropic turbulence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Forcing {
    /// Forcing shell radius (in integer wavenumbers).
    pub k_f: f64,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpectralConfig {
    /// Grid points per side (power of two; the domain is `[0, 2π)³`).
    pub n: usize,
    /// Kinematic viscosity.
    pub viscosity: f64,
    /// Buoyancy diffusivity (used when stratified).
    pub diffusivity: f64,
    /// Time step.
    pub dt: f64,
    /// Buoyancy treatment.
    pub stratification: Stratification,
    /// Optional large-scale forcing.
    pub forcing: Option<Forcing>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            n: 32,
            viscosity: 0.02,
            diffusivity: 0.02,
            dt: 0.01,
            stratification: Stratification::None,
            forcing: None,
        }
    }
}

/// Spectral-space velocity (+ buoyancy) state.
#[derive(Clone)]
struct State {
    u: Vec<Complex>,
    v: Vec<Complex>,
    w: Vec<Complex>,
    b: Option<Vec<Complex>>,
}

impl State {
    fn axpy(&mut self, a: f64, rhs: &State) {
        let f = |dst: &mut [Complex], src: &[Complex]| {
            dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, s)| *d += s.scale(a));
        };
        f(&mut self.u, &rhs.u);
        f(&mut self.v, &rhs.v);
        f(&mut self.w, &rhs.w);
        if let (Some(b), Some(rb)) = (self.b.as_mut(), rhs.b.as_ref()) {
            f(b, rb);
        }
    }
}

/// The pseudo-spectral solver.
pub struct SpectralSolver {
    cfg: SpectralConfig,
    fft: Fft3d,
    /// Integer wavenumber along each axis for each 1D index.
    kline: Vec<f64>,
    /// Dealiasing mask (true = keep).
    keep: Vec<bool>,
    state: State,
    time: f64,
    /// Target band energy for forcing (captured at init when forcing is on).
    band_energy: Option<f64>,
    steps: usize,
}

impl SpectralSolver {
    /// Creates a solver with zero initial velocity.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or the explicit time step is
    /// unstable for the configured viscosity.
    pub fn new(cfg: SpectralConfig) -> Self {
        assert!(sickle_fft::is_power_of_two(cfg.n), "grid size must be a power of two");
        let n = cfg.n;
        let kmax = (n as f64) / 3.0; // post-dealias maximum wavenumber
        let visc_limit = cfg.viscosity * kmax * kmax * cfg.dt;
        assert!(
            visc_limit < 2.0,
            "explicit viscous step unstable: nu*kmax^2*dt = {visc_limit:.3} >= 2"
        );
        let kline: Vec<f64> = (0..n)
            .map(|i| if i <= n / 2 { i as f64 } else { i as f64 - n as f64 })
            .collect();
        let cut = n as f64 / 3.0;
        let mut keep = vec![true; n * n * n];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    if kline[x].abs() > cut || kline[y].abs() > cut || kline[z].abs() > cut {
                        keep[(x * n + y) * n + z] = false;
                    }
                }
            }
        }
        let len = n * n * n;
        let b = match cfg.stratification {
            Stratification::None => None,
            Stratification::Boussinesq { .. } => Some(vec![Complex::ZERO; len]),
        };
        SpectralSolver {
            cfg,
            fft: Fft3d::new(n, n, n),
            kline,
            keep,
            state: State { u: vec![Complex::ZERO; len], v: vec![Complex::ZERO; len], w: vec![Complex::ZERO; len], b },
            time: 0.0,
            band_energy: None,
            steps: 0,
        }
    }

    /// Grid describing the physical domain.
    pub fn grid(&self) -> Grid3 {
        Grid3::cube_2pi(self.cfg.n)
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Configuration.
    pub fn config(&self) -> &SpectralConfig {
        &self.cfg
    }

    /// Initializes the classic Taylor–Green vortex (the SST ensemble's
    /// initial condition): `u = sin x cos y cos z`, `v = -cos x sin y cos z`,
    /// `w = 0`, optionally with a sinusoidal buoyancy perturbation.
    pub fn init_taylor_green(&mut self, amplitude: f64) {
        let n = self.cfg.n;
        let grid = self.grid();
        let len = grid.len();
        let mut u = vec![Complex::ZERO; len];
        let mut v = vec![Complex::ZERO; len];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let (px, py, pz) = grid.position(x, y, z);
                    let idx = (x * n + y) * n + z;
                    u[idx] = Complex::new(amplitude * px.sin() * py.cos() * pz.cos(), 0.0);
                    v[idx] = Complex::new(-amplitude * px.cos() * py.sin() * pz.cos(), 0.0);
                }
            }
        }
        self.fft.forward(&mut u);
        self.fft.forward(&mut v);
        self.state.u = u;
        self.state.v = v;
        self.state.w = vec![Complex::ZERO; len];
        if let Some(b) = self.state.b.as_mut() {
            // Small buoyancy perturbation at the largest scale so the
            // stratified dynamics have something to act on.
            let mut bp = vec![Complex::ZERO; len];
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let (px, _, _) = grid.position(x, y, z);
                        bp[(x * n + y) * n + z] =
                            Complex::new(0.1 * amplitude * px.sin(), 0.0);
                    }
                }
            }
            self.fft.forward(&mut bp);
            *b = bp;
        }
        self.capture_band_energy();
    }

    /// Sets velocity directly from physical-space fields (e.g. from the
    /// synthetic-turbulence generator); the field is projected to be
    /// divergence-free.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_velocity(&mut self, u: &[f64], v: &[f64], w: &[f64]) {
        let len = self.grid().len();
        assert!(u.len() == len && v.len() == len && w.len() == len, "field length mismatch");
        let to_spec = |f: &[f64]| {
            let mut c: Vec<Complex> = f.iter().map(|&x| Complex::new(x, 0.0)).collect();
            self.fft.forward(&mut c);
            c
        };
        self.state.u = to_spec(u);
        self.state.v = to_spec(v);
        self.state.w = to_spec(w);
        let mut uvw = (std::mem::take(&mut self.state.u), std::mem::take(&mut self.state.v), std::mem::take(&mut self.state.w));
        self.project3(&mut uvw.0, &mut uvw.1, &mut uvw.2);
        self.state.u = uvw.0;
        self.state.v = uvw.1;
        self.state.w = uvw.2;
        self.capture_band_energy();
    }

    /// Sets the buoyancy field from physical space (stratified runs only).
    ///
    /// # Panics
    /// Panics if the solver is not stratified or on length mismatch.
    pub fn set_buoyancy(&mut self, b: &[f64]) {
        assert_eq!(b.len(), self.grid().len(), "field length mismatch");
        let mut c: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.fft.forward(&mut c);
        *self.state.b.as_mut().expect("solver is not stratified") = c;
    }

    fn capture_band_energy(&mut self) {
        if let Some(forcing) = self.cfg.forcing {
            self.band_energy = Some(self.band_energy_value(forcing.k_f));
        }
    }

    fn band_energy_value(&self, k_f: f64) -> f64 {
        let n = self.cfg.n;
        let norm = (n as f64).powi(6);
        let mut e = 0.0;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let k2 = self.k2_at(x, y, z);
                    if k2 > 0.0 && k2 <= k_f * k_f {
                        let idx = (x * n + y) * n + z;
                        e += self.state.u[idx].norm_sqr()
                            + self.state.v[idx].norm_sqr()
                            + self.state.w[idx].norm_sqr();
                    }
                }
            }
        }
        0.5 * e / norm
    }

    #[inline]
    fn k2_at(&self, x: usize, y: usize, z: usize) -> f64 {
        let kx = self.kline[x];
        let ky = self.kline[y];
        let kz = self.kline[z];
        kx * kx + ky * ky + kz * kz
    }

    /// Leray projection onto divergence-free fields, all three components.
    fn project3(&self, u: &mut [Complex], v: &mut [Complex], w: &mut [Complex]) {
        let n = self.cfg.n;
        let kline = &self.kline;
        u.par_chunks_mut(n * n)
            .zip(v.par_chunks_mut(n * n).zip(w.par_chunks_mut(n * n)))
            .enumerate()
            .for_each(|(x, (us, (vs, ws)))| {
                let kx = kline[x];
                for y in 0..n {
                    let ky = kline[y];
                    for z in 0..n {
                        let kz = kline[z];
                        let k2 = kx * kx + ky * ky + kz * kz;
                        if k2 == 0.0 {
                            continue;
                        }
                        let i = y * n + z;
                        let dot = us[i].scale(kx) + vs[i].scale(ky) + ws[i].scale(kz);
                        let s = dot.scale(1.0 / k2);
                        us[i] -= s.scale(kx);
                        vs[i] -= s.scale(ky);
                        ws[i] -= s.scale(kz);
                    }
                }
            });
    }

    /// Inverse-transforms a spectral field to physical space (real parts).
    fn to_physical(&self, spec: &[Complex]) -> Vec<f64> {
        let mut c = spec.to_vec();
        self.fft.inverse(&mut c);
        c.iter().map(|z| z.re).collect()
    }

    /// Spectral derivative along `axis`, returned in physical space.
    #[allow(clippy::needless_range_loop)]
    fn deriv_physical(&self, spec: &[Complex], axis: Axis) -> Vec<f64> {
        let n = self.cfg.n;
        let kline = &self.kline;
        let mut d = vec![Complex::ZERO; spec.len()];
        d.par_chunks_mut(n * n).enumerate().for_each(|(x, chunk)| {
            for y in 0..n {
                for z in 0..n {
                    let k = match axis {
                        Axis::X => kline[x],
                        Axis::Y => kline[y],
                        Axis::Z => kline[z],
                    };
                    let i = y * n + z;
                    chunk[i] = spec[(x * n + y) * n + z].mul_i().scale(k);
                }
            }
        });
        let mut c = d;
        self.fft.inverse(&mut c);
        c.iter().map(|z| z.re).collect()
    }

    /// Computes the full right-hand side of the (projected) momentum and
    /// buoyancy equations for `s`.
    fn rhs(&self, s: &State) -> State {
        let n = self.cfg.n;
        let len = s.u.len();
        // Physical-space velocities.
        let up = self.to_physical(&s.u);
        let vp = self.to_physical(&s.v);
        let wp = self.to_physical(&s.w);
        // All nine velocity gradients (physical space).
        let grads = [
            [self.deriv_physical(&s.u, Axis::X), self.deriv_physical(&s.u, Axis::Y), self.deriv_physical(&s.u, Axis::Z)],
            [self.deriv_physical(&s.v, Axis::X), self.deriv_physical(&s.v, Axis::Y), self.deriv_physical(&s.v, Axis::Z)],
            [self.deriv_physical(&s.w, Axis::X), self.deriv_physical(&s.w, Axis::Y), self.deriv_physical(&s.w, Axis::Z)],
        ];
        // Advection: N_i = -(u . grad) u_i, then forward transform.
        let advect = |g: &[Vec<f64>; 3]| -> Vec<Complex> {
            let mut c: Vec<Complex> = (0..len)
                .into_par_iter()
                .map(|i| Complex::new(-(up[i] * g[0][i] + vp[i] * g[1][i] + wp[i] * g[2][i]), 0.0))
                .collect();
            self.fft.forward(&mut c);
            c
        };
        let mut ru = advect(&grads[0]);
        let mut rv = advect(&grads[1]);
        let mut rw = advect(&grads[2]);

        // Buoyancy terms.
        let rb = if let (Some(bh), Stratification::Boussinesq { n_bv, gravity }) =
            (s.b.as_ref(), self.cfg.stratification)
        {
            let bdx = self.deriv_physical(bh, Axis::X);
            let bdy = self.deriv_physical(bh, Axis::Y);
            let bdz = self.deriv_physical(bh, Axis::Z);
            let ug: &[f64] = match gravity {
                Axis::X => &up,
                Axis::Y => &vp,
                Axis::Z => &wp,
            };
            // db/dt = -(u . grad b) - N^2 u_g + kappa laplacian b
            let mut rbv: Vec<Complex> = (0..len)
                .into_par_iter()
                .map(|i| {
                    Complex::new(
                        -(up[i] * bdx[i] + vp[i] * bdy[i] + wp[i] * bdz[i]) - n_bv * n_bv * ug[i],
                        0.0,
                    )
                })
                .collect();
            self.fft.forward(&mut rbv);
            // Momentum feedback: + b along gravity.
            let target: &mut Vec<Complex> = match gravity {
                Axis::X => &mut ru,
                Axis::Y => &mut rv,
                Axis::Z => &mut rw,
            };
            target.par_iter_mut().zip(bh.par_iter()).for_each(|(t, &b)| *t += b);
            Some(rbv)
        } else {
            None
        };

        // Viscous terms, dealiasing, projection (spectral space).
        let nu = self.cfg.viscosity;
        let kappa = self.cfg.diffusivity;
        let keep = &self.keep;
        let kline = &self.kline;
        let damp = |r: &mut Vec<Complex>, f: &[Complex], coeff: f64| {
            r.par_chunks_mut(n * n).enumerate().for_each(|(x, chunk)| {
                let kx = kline[x];
                for y in 0..n {
                    let ky = kline[y];
                    for z in 0..n {
                        let kz = kline[z];
                        let i = y * n + z;
                        let gi = (x * n + y) * n + z;
                        if !keep[gi] {
                            chunk[i] = Complex::ZERO;
                            continue;
                        }
                        let k2 = kx * kx + ky * ky + kz * kz;
                        chunk[i] -= f[gi].scale(coeff * k2);
                    }
                }
            });
        };
        damp(&mut ru, &s.u, nu);
        damp(&mut rv, &s.v, nu);
        damp(&mut rw, &s.w, nu);
        let rb = rb.map(|mut r| {
            damp(&mut r, s.b.as_ref().unwrap(), kappa);
            r
        });
        self.project3(&mut ru, &mut rv, &mut rw);
        State { u: ru, v: rv, w: rw, b: rb }
    }

    /// Advances one RK2 (Heun) step and applies forcing if configured.
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let k1 = self.rhs(&self.state);
        let mut mid = self.state.clone();
        mid.axpy(dt, &k1);
        let k2 = self.rhs(&mid);
        self.state.axpy(0.5 * dt, &k1);
        self.state.axpy(0.5 * dt, &k2);
        if let (Some(f), Some(target)) = (self.cfg.forcing, self.band_energy) {
            let current = self.band_energy_value(f.k_f);
            if current > 1e-30 {
                let scale = (target / current).sqrt();
                let n = self.cfg.n;
                let kline = &self.kline;
                let kf2 = f.k_f * f.k_f;
                let apply = |arr: &mut Vec<Complex>| {
                    arr.par_chunks_mut(n * n).enumerate().for_each(|(x, chunk)| {
                        let kx = kline[x];
                        for y in 0..n {
                            let ky = kline[y];
                            for z in 0..n {
                                let kz = kline[z];
                                let k2 = kx * kx + ky * ky + kz * kz;
                                if k2 > 0.0 && k2 <= kf2 {
                                    let i = y * n + z;
                                    chunk[i] = chunk[i].scale(scale);
                                }
                            }
                        }
                    });
                };
                apply(&mut self.state.u);
                apply(&mut self.state.v);
                apply(&mut self.state.w);
            }
        }
        self.time += dt;
        self.steps += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Total kinetic energy `0.5 <|u|²>` (volume-averaged).
    pub fn kinetic_energy(&self) -> f64 {
        let norm = (self.cfg.n as f64).powi(6);
        let e: f64 = self
            .state
            .u
            .par_iter()
            .zip(self.state.v.par_iter().zip(self.state.w.par_iter()))
            .map(|(u, (v, w))| u.norm_sqr() + v.norm_sqr() + w.norm_sqr())
            .sum();
        0.5 * e / norm
    }

    /// Maximum divergence magnitude in physical space (should be ~0).
    pub fn max_divergence(&self) -> f64 {
        let dudx = self.deriv_physical(&self.state.u, Axis::X);
        let dvdy = self.deriv_physical(&self.state.v, Axis::Y);
        let dwdz = self.deriv_physical(&self.state.w, Axis::Z);
        (0..dudx.len())
            .map(|i| (dudx[i] + dvdy[i] + dwdz[i]).abs())
            .fold(0.0, f64::max)
    }

    /// Builds a snapshot with `u, v, w, p` (+ `r` when stratified). The
    /// pressure solves `∇²p = ∇·F` for the unprojected RHS `F`, exactly the
    /// diagnostic pressure of a spectral DNS.
    pub fn snapshot(&self) -> Snapshot {
        let grid = self.grid();
        let up = self.to_physical(&self.state.u);
        let vp = self.to_physical(&self.state.v);
        let wp = self.to_physical(&self.state.w);

        // Pressure from the divergence of advection + buoyancy.
        let n = self.cfg.n;
        // Recompute the unprojected advection spectrum cheaply.
        let grads = [
            [self.deriv_physical(&self.state.u, Axis::X), self.deriv_physical(&self.state.u, Axis::Y), self.deriv_physical(&self.state.u, Axis::Z)],
            [self.deriv_physical(&self.state.v, Axis::X), self.deriv_physical(&self.state.v, Axis::Y), self.deriv_physical(&self.state.v, Axis::Z)],
            [self.deriv_physical(&self.state.w, Axis::X), self.deriv_physical(&self.state.w, Axis::Y), self.deriv_physical(&self.state.w, Axis::Z)],
        ];
        let len = grid.len();
        let advect = |g: &[Vec<f64>; 3]| -> Vec<Complex> {
            let mut c: Vec<Complex> = (0..len)
                .into_par_iter()
                .map(|i| Complex::new(-(up[i] * g[0][i] + vp[i] * g[1][i] + wp[i] * g[2][i]), 0.0))
                .collect();
            self.fft.forward(&mut c);
            c
        };
        let mut fu = advect(&grads[0]);
        let mut fv = advect(&grads[1]);
        let mut fw = advect(&grads[2]);
        if let (Some(bh), Stratification::Boussinesq { gravity, .. }) =
            (self.state.b.as_ref(), self.cfg.stratification)
        {
            let target = match gravity {
                Axis::X => &mut fu,
                Axis::Y => &mut fv,
                Axis::Z => &mut fw,
            };
            target.par_iter_mut().zip(bh.par_iter()).for_each(|(t, &b)| *t += b);
        }
        let kline = &self.kline;
        let mut phat = vec![Complex::ZERO; len];
        phat.par_chunks_mut(n * n).enumerate().for_each(|(x, chunk)| {
            let kx = kline[x];
            for y in 0..n {
                let ky = kline[y];
                for z in 0..n {
                    let kz = kline[z];
                    let k2 = kx * kx + ky * ky + kz * kz;
                    if k2 == 0.0 {
                        continue;
                    }
                    let gi = (x * n + y) * n + z;
                    let div = fu[gi].scale(kx) + fv[gi].scale(ky) + fw[gi].scale(kz);
                    // -k^2 p_hat = i k . F  =>  p_hat = -i (k . F) / k^2
                    chunk[y * n + z] = div.mul_i().scale(-1.0 / k2);
                }
            }
        });
        let p = self.to_physical(&phat);

        let mut snap = Snapshot::new(grid, self.time)
            .with_var("u", up)
            .with_var("v", vp)
            .with_var("w", wp)
            .with_var("p", p);
        if let Some(bh) = self.state.b.as_ref() {
            snap.push_var("r", self.to_physical(bh));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tg_solver(n: usize) -> SpectralSolver {
        let mut s = SpectralSolver::new(SpectralConfig { n, dt: 0.005, ..Default::default() });
        s.init_taylor_green(1.0);
        s
    }

    #[test]
    fn taylor_green_energy_decays() {
        let mut s = tg_solver(16);
        let e0 = s.kinetic_energy();
        assert!(e0 > 0.0);
        s.run(20);
        let e1 = s.kinetic_energy();
        assert!(e1 < e0, "energy must decay without forcing: {e0} -> {e1}");
        assert!(e1 > 0.0);
    }

    #[test]
    fn taylor_green_initial_energy_matches_theory() {
        // <u^2 + v^2>/2 for TG = 2 * (1/8) * A^2 / 2 = A^2 / 8.
        let s = tg_solver(16);
        let e = s.kinetic_energy();
        assert!((e - 0.125).abs() < 1e-6, "E = {e}");
    }

    #[test]
    fn velocity_stays_divergence_free() {
        let mut s = tg_solver(16);
        s.run(10);
        let div = s.max_divergence();
        let umax = 1.0;
        assert!(div < 1e-8 * umax * 16.0, "divergence {div}");
    }

    #[test]
    fn forcing_maintains_band_energy() {
        let mut cfg = SpectralConfig { n: 16, dt: 0.005, ..Default::default() };
        cfg.forcing = Some(Forcing { k_f: 2.0 });
        let mut s = SpectralSolver::new(cfg);
        s.init_taylor_green(1.0);
        let e0 = s.band_energy_value(2.0);
        s.run(30);
        let e1 = s.band_energy_value(2.0);
        assert!((e1 - e0).abs() < 1e-8 * e0.max(1e-30) + 1e-12, "band energy {e0} -> {e1}");
    }

    #[test]
    fn stratified_run_exchanges_energy_with_buoyancy() {
        let cfg = SpectralConfig {
            n: 16,
            dt: 0.005,
            stratification: Stratification::Boussinesq { n_bv: 2.0, gravity: Axis::Z },
            ..Default::default()
        };
        let mut s = SpectralSolver::new(cfg);
        s.init_taylor_green(1.0);
        s.run(20);
        let snap = s.snapshot();
        let r = snap.expect_var("r");
        assert!(r.iter().any(|&v| v.abs() > 1e-8), "buoyancy field should evolve");
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn snapshot_contains_expected_variables() {
        let mut s = tg_solver(8);
        s.run(2);
        let snap = s.snapshot();
        assert_eq!(snap.names, vec!["u", "v", "w", "p"]);
        assert_eq!(snap.num_points(), 512);
        assert!(snap.expect_var("p").iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable_time_step() {
        let cfg = SpectralConfig { n: 64, viscosity: 0.1, dt: 0.5, ..Default::default() };
        let _ = SpectralSolver::new(cfg);
    }

    #[test]
    fn set_velocity_projects_to_divergence_free() {
        let mut s = SpectralSolver::new(SpectralConfig { n: 16, dt: 0.005, ..Default::default() });
        let grid = s.grid();
        // A compressible field: u = sin(x), rest zero has du/dx != 0.
        let mut u = vec![0.0; grid.len()];
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    let (px, _, _) = grid.position(x, y, z);
                    u[grid.idx(x, y, z)] = px.sin();
                }
            }
        }
        let zeros = vec![0.0; grid.len()];
        s.set_velocity(&u, &zeros, &zeros);
        assert!(s.max_divergence() < 1e-8);
    }
}
