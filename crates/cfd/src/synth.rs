//! Spectral synthetic-turbulence generator.
//!
//! Generates statistically realistic velocity/scalar fields of any
//! power-of-two size in one shot, by filling wavenumber space with random
//! phases under a prescribed energy spectrum and inverse-transforming. This
//! is how the reproduction manufactures the *large* datasets the scalability
//! experiments need (the paper's SST-P1F100 is 5 TB; time-stepping a DNS to
//! that size is out of scope, but its sampling-relevant statistics —
//! spectrum shape, anisotropy, layering — are reproducible directly).
//!
//! Anisotropy model: stratified turbulence concentrates energy in "pancake"
//! modes with large gravity-aligned wavenumber components and suppresses the
//! gravity-aligned velocity component. `anisotropy = 0` gives isotropic
//! fields (the GESTS analogue); larger values give increasingly layered
//! fields (the SST analogue).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sickle_fft::{Complex, Fft3d};
use sickle_field::{Axis, Grid3, Snapshot};

/// Energy spectrum shapes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpectrumKind {
    /// `E(k) ∝ k⁴ exp(−2 (k/k_peak)²)` — the classic low-Re DNS initial
    /// spectrum, peaked at `k_peak`.
    PeakedK4 {
        /// Wavenumber of peak energy.
        k_peak: f64,
    },
    /// `E(k) ∝ k^(−5/3)` between `k_min` and `k_max` — an inertial-range
    /// (Kolmogorov) spectrum for developed turbulence.
    Kolmogorov {
        /// Low-wavenumber cutoff.
        k_min: f64,
        /// High-wavenumber cutoff.
        k_max: f64,
    },
}

impl SpectrumKind {
    /// Unnormalized spectral energy density at wavenumber magnitude `k`.
    pub fn energy(&self, k: f64) -> f64 {
        match *self {
            SpectrumKind::PeakedK4 { k_peak } => {
                if k <= 0.0 {
                    0.0
                } else {
                    k.powi(4) * (-2.0 * (k / k_peak).powi(2)).exp()
                }
            }
            SpectrumKind::Kolmogorov { k_min, k_max } => {
                if k < k_min || k > k_max {
                    0.0
                } else {
                    k.powf(-5.0 / 3.0)
                }
            }
        }
    }
}

/// Synthetic-field configuration.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Points per side along x.
    pub nx: usize,
    /// Points per side along y.
    pub ny: usize,
    /// Points per side along z.
    pub nz: usize,
    /// Spectrum shape.
    pub spectrum: SpectrumKind,
    /// Target rms of each velocity component.
    pub urms: f64,
    /// Anisotropy strength (0 = isotropic; 2–5 = strongly layered).
    pub anisotropy: f64,
    /// Gravity axis toward which anisotropy aligns.
    pub gravity: Axis,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            nx: 32,
            ny: 32,
            nz: 32,
            spectrum: SpectrumKind::PeakedK4 { k_peak: 4.0 },
            urms: 1.0,
            anisotropy: 0.0,
            gravity: Axis::Z,
        }
    }
}

fn kline(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i <= n / 2 {
                i as f64
            } else {
                i as f64 - n as f64
            }
        })
        .collect()
}

/// Fills one spectral field with random phases shaped by the spectrum and an
/// anisotropy weighting, inverse transforms it, and returns the (real-part)
/// physical field rescaled to `target_rms`.
fn shaped_field(
    fft: &Fft3d,
    cfg: &SynthConfig,
    rng: &mut StdRng,
    target_rms: f64,
    layering: f64,
) -> Vec<f64> {
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let (kx, ky, kz) = (kline(nx), kline(ny), kline(nz));
    let g = cfg.gravity.index();
    let mut spec = vec![Complex::ZERO; nx * ny * nz];
    // Random phases are drawn sequentially for determinism; amplitude
    // shaping is the expensive part and is data-parallel free (cheap anyway).
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                let kv = [kx[x], ky[y], kz[z]];
                let k = (kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2]).sqrt();
                if k == 0.0 {
                    continue;
                }
                // Isotropic shell amplitude: |u_hat|^2 ~ E(k) / (4 pi k^2).
                let mut amp =
                    (cfg.spectrum.energy(k) / (4.0 * std::f64::consts::PI * k * k)).sqrt();
                if layering > 0.0 {
                    // Weight toward modes with large gravity-aligned
                    // wavenumber fraction => thin horizontal layers.
                    let frac = kv[g].abs() / k;
                    amp *= 1.0 + layering * frac * frac;
                }
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                let gauss: f64 = {
                    // Box-Muller for a Gaussian amplitude factor.
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                spec[(x * ny + y) * nz + z] =
                    Complex::from_polar_unit(phase).scale(amp * gauss.abs());
            }
        }
    }
    let mut field = spec;
    fft.inverse(&mut field);
    let mut phys: Vec<f64> = field.par_iter().map(|z| z.re).collect();
    // Rescale to the requested rms (zero-mean by construction up to the
    // missing k=0 mode).
    let mean = phys.par_iter().sum::<f64>() / phys.len() as f64;
    let var = phys
        .par_iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / phys.len() as f64;
    if var > 0.0 {
        let s = target_rms / var.sqrt();
        phys.par_iter_mut().for_each(|v| *v = (*v - mean) * s);
    }
    phys
}

/// Generates a synthetic turbulence snapshot with variables `u, v, w`
/// (+ `r`, a layered density-perturbation field, when `anisotropy > 0`).
///
/// The same `seed` always produces the same field.
pub fn generate(cfg: &SynthConfig, seed: u64) -> Snapshot {
    let grid = Grid3::new(
        cfg.nx,
        cfg.ny,
        cfg.nz,
        2.0 * std::f64::consts::PI,
        2.0 * std::f64::consts::PI,
        2.0 * std::f64::consts::PI,
    );
    let fft = Fft3d::new(cfg.nx, cfg.ny, cfg.nz);
    let mut rng = StdRng::seed_from_u64(seed);
    // The gravity-aligned velocity component is suppressed by stratification.
    let wsupp = 1.0 / (1.0 + cfg.anisotropy);
    let rms = [cfg.urms, cfg.urms, cfg.urms];
    let mut comps: Vec<Vec<f64>> = Vec::with_capacity(3);
    for (i, &r) in rms.iter().enumerate() {
        let target = if i == cfg.gravity.index() {
            r * wsupp
        } else {
            r
        };
        comps.push(shaped_field(&fft, cfg, &mut rng, target, cfg.anisotropy));
    }
    let w = comps.pop().unwrap();
    let v = comps.pop().unwrap();
    let u = comps.pop().unwrap();
    let mut snap = Snapshot::new(grid, 0.0)
        .with_var("u", u)
        .with_var("v", v)
        .with_var("w", w);
    if cfg.anisotropy > 0.0 {
        // Density perturbation: strongly layered scalar, heavier tails than
        // the velocities (intermittency of stratified density fields).
        let mut r = shaped_field(&fft, cfg, &mut rng, 1.0, 2.0 * cfg.anisotropy);
        r.par_iter_mut()
            .for_each(|v| *v = v.signum() * v.abs().powf(1.3));
        snap.push_var("r", r);
    }
    snap
}

/// Radially binned energy spectrum of a scalar field: returns `E(k)` for
/// integer shells `k = 1..k_max`, used to validate generated spectra.
pub fn measured_spectrum(grid: &Grid3, f: &[f64]) -> Vec<f64> {
    let fft = Fft3d::new(grid.nx, grid.ny, grid.nz);
    let mut spec: Vec<Complex> = f.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft.forward(&mut spec);
    let norm = (grid.len() as f64).powi(2);
    let (kx, ky, kz) = (kline(grid.nx), kline(grid.ny), kline(grid.nz));
    let kmax = grid.nx.min(grid.ny).min(grid.nz) / 2;
    let mut e = vec![0.0; kmax + 1];
    for x in 0..grid.nx {
        for y in 0..grid.ny {
            for z in 0..grid.nz {
                let k = (kx[x] * kx[x] + ky[y] * ky[y] + kz[z] * kz[z])
                    .sqrt()
                    .round() as usize;
                if k >= 1 && k <= kmax {
                    e[k] += spec[(x * grid.ny + y) * grid.nz + z].norm_sqr() / norm;
                }
            }
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_field::SummaryStats;

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a.expect_var("u"), b.expect_var("u"));
        let c = generate(&cfg, 43);
        assert_ne!(a.expect_var("u"), c.expect_var("u"));
    }

    #[test]
    fn isotropic_has_no_density_var() {
        let snap = generate(&SynthConfig::default(), 1);
        assert_eq!(snap.names, vec!["u", "v", "w"]);
    }

    #[test]
    fn stratified_adds_density() {
        let cfg = SynthConfig {
            anisotropy: 3.0,
            ..Default::default()
        };
        let snap = generate(&cfg, 1);
        assert_eq!(snap.names, vec!["u", "v", "w", "r"]);
    }

    #[test]
    fn rms_matches_target() {
        let cfg = SynthConfig {
            urms: 2.5,
            ..Default::default()
        };
        let snap = generate(&cfg, 7);
        let s = SummaryStats::of(snap.expect_var("u"));
        assert!((s.std() - 2.5).abs() < 1e-9, "std {}", s.std());
        assert!(s.mean().abs() < 1e-9);
    }

    #[test]
    fn vertical_velocity_suppressed_when_stratified() {
        let cfg = SynthConfig {
            anisotropy: 4.0,
            gravity: Axis::Z,
            ..Default::default()
        };
        let snap = generate(&cfg, 3);
        let sw = SummaryStats::of(snap.expect_var("w")).std();
        let su = SummaryStats::of(snap.expect_var("u")).std();
        assert!(sw < 0.5 * su, "w rms {sw} vs u rms {su}");
    }

    #[test]
    fn spectrum_peaks_near_k_peak() {
        let cfg = SynthConfig {
            nx: 64,
            ny: 64,
            nz: 64,
            spectrum: SpectrumKind::PeakedK4 { k_peak: 6.0 },
            ..Default::default()
        };
        let snap = generate(&cfg, 11);
        let e = measured_spectrum(&snap.grid, snap.expect_var("u"));
        let peak = e
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((3..=9).contains(&peak), "spectrum peak at k = {peak}");
    }

    #[test]
    fn anisotropy_creates_layering() {
        // Gravity-axis gradients of the density field should dominate
        // horizontal ones when layered.
        use sickle_field::derived::partial;
        let cfg = SynthConfig {
            anisotropy: 4.0,
            gravity: Axis::Z,
            ..Default::default()
        };
        let snap = generate(&cfg, 5);
        let r = snap.expect_var("r");
        let gz = SummaryStats::of(&partial(&snap.grid, r, Axis::Z)).std();
        let gx = SummaryStats::of(&partial(&snap.grid, r, Axis::X)).std();
        assert!(
            gz > 1.3 * gx,
            "vertical gradient rms {gz} vs horizontal {gx}"
        );
    }

    #[test]
    fn kolmogorov_spectrum_shape() {
        let s = SpectrumKind::Kolmogorov {
            k_min: 2.0,
            k_max: 16.0,
        };
        assert_eq!(s.energy(1.0), 0.0);
        assert_eq!(s.energy(20.0), 0.0);
        assert!(s.energy(4.0) > s.energy(8.0));
    }
}
