//! Optimized-vs-naive agreement for the fused D2Q9 collide+stream kernel.
//!
//! The fused kernel preserves the exact FP expression order of the naive
//! two-pass kernel, so after many steps — deep into the chaotic shedding
//! regime where any rounding difference would have amplified — the fields
//! must still agree to 1e-12 (in practice they are bit-identical).

use sickle_cfd::{CylinderFlow, LbmConfig};
use sickle_simd::Kernel;

fn small_config() -> LbmConfig {
    LbmConfig {
        nx: 60,
        ny: 32,
        u_inlet: 0.1,
        reynolds: 60.0,
        diameter: 6.0,
        ..Default::default()
    }
}

/// Odd dimensions exercise the quad-remainder scalar path and the partial
/// final band of the fused kernel.
fn ragged_config() -> LbmConfig {
    LbmConfig {
        nx: 53,
        ny: 30,
        u_inlet: 0.1,
        reynolds: 60.0,
        diameter: 6.0,
        ..Default::default()
    }
}

fn run_pair(cfg: LbmConfig, steps: usize) -> (CylinderFlow, CylinderFlow) {
    let mut naive = CylinderFlow::new(cfg);
    let mut fused = CylinderFlow::new(cfg);
    for _ in 0..steps {
        naive.step_with(Kernel::Naive);
        fused.step_with(Kernel::Optimized);
    }
    (naive, fused)
}

fn assert_fields_close(naive: &CylinderFlow, fused: &CylinderFlow, tol: f64) {
    let (rn, un, vn) = naive.macroscopic();
    let (rf, uf, vf) = fused.macroscopic();
    for (name, a, b) in [("rho", &rn, &rf), ("u", &un, &uf), ("v", &vn, &vf)] {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol, "{name}[{i}]: naive {x} vs fused {y}");
        }
    }
}

#[test]
fn fused_step_is_field_identical_after_many_steps() {
    let (naive, fused) = run_pair(small_config(), 300);
    assert_fields_close(&naive, &fused, 1e-12);
    assert!(
        (naive.drag() - fused.drag()).abs() <= 1e-12,
        "drag {} vs {}",
        naive.drag(),
        fused.drag()
    );
    assert!(
        (naive.lift() - fused.lift()).abs() <= 1e-12,
        "lift {} vs {}",
        naive.lift(),
        fused.lift()
    );
}

#[test]
fn fused_step_handles_ragged_shapes() {
    let (naive, fused) = run_pair(ragged_config(), 120);
    assert_fields_close(&naive, &fused, 1e-12);
}

#[test]
fn fused_step_is_bit_identical_on_snapshot_fields() {
    // Stronger than the 1e-12 contract: the same FP expression order means
    // the snapshot variables come out bit for bit equal.
    let (naive, fused) = run_pair(small_config(), 150);
    let sn = naive.snapshot(0.0);
    let sf = fused.snapshot(0.0);
    for name in ["u", "v", "p", "wz"] {
        let a = sn.var(name).unwrap();
        let b = sf.var(name).unwrap();
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name}[{i}]: naive {x:?} vs fused {y:?}"
            );
        }
    }
}
