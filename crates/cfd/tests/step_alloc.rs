//! Proves the zero-allocation contract of `SpectralSolver::step`: once the
//! solver is warmed up, stepping must not heap-allocate anything field-sized.
//!
//! A counting global allocator tallies allocations at or above a threshold
//! set well below a 32³ field (256 KiB of reals / 512 KiB of complexes) but
//! above the small per-pencil scratch and thread-pool bookkeeping the
//! parallel runtime legitimately allocates each call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sickle_cfd::{Forcing, SpectralConfig, SpectralSolver};

/// Any single allocation of at least this many bytes counts as "field-sized".
/// A 32³ f64 field is 262144 bytes; per-pencil FFT scratch is n * 16 = 512.
const LARGE: usize = 64 * 1024;

static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) != 0 && layout.size() >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_does_not_allocate_fields() {
    let cfg = SpectralConfig {
        n: 32,
        dt: 0.005,
        forcing: Some(Forcing { k_f: 2.0 }),
        ..Default::default()
    };
    let mut solver = SpectralSolver::new(cfg);
    solver.init_taylor_green(1.0);
    // Warmup: first step spins up the thread pool and touches every path.
    solver.step();

    TRACKING.store(1, Ordering::SeqCst);
    solver.run(3);
    TRACKING.store(0, Ordering::SeqCst);

    let count = LARGE_ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "steady-state step() made {count} allocation(s) of >= {LARGE} bytes"
    );
    assert!(solver.kinetic_energy().is_finite());
}
