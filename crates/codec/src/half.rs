//! Scalar f16 / bf16 conversions.
//!
//! Stable Rust has no half-precision primitive, so the quantized codecs
//! carry IEEE 754 binary16 ("f16") and bfloat16 values as raw `u16` bit
//! patterns and convert through `f32` here. Conversions are exact in the
//! widening direction and round-to-nearest-even when narrowing — the same
//! semantics hardware converters use, so a future intrinsic swap cannot
//! change stored bits.

/// Narrows an `f32` to IEEE binary16 bits (round-to-nearest-even, overflow
/// to ±inf, subnormal and NaN preserved).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN.
        let nan = if man != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan | ((man >> 13) as u16 & 0x03ff);
    }
    // Unbiased exponent, rebias for f16 (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal range: 10-bit mantissa with round-to-nearest-even.
        let mant = man >> 13;
        let rest = man & 0x1fff;
        let half = 0x1000;
        let mut out = ((unbiased + 15) as u32) << 10 | mant;
        if rest > half || (rest == half && (mant & 1) == 1) {
            out += 1; // may carry into the exponent; that is correct rounding
        }
        return sign | out as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16: shift the implicit-1 mantissa into range.
        let full = man | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant;
        if rest > half || (rest == half && (mant & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    sign // underflow to signed zero
}

/// Widens IEEE binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    let bits = match (exp, man) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal (value = 0.m * 2^-14): normalize until the implicit
            // bit (bit 10) is set, tracking the exponent.
            let mut m = m;
            let mut e: i32 = -14;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (((e + 127) as u32) << 23) | ((m & 0x03ff) << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Narrows an `f32` to bfloat16 bits (truncated exponent-preserving format;
/// round-to-nearest-even on the dropped 16 mantissa bits, NaN preserved).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Force a quiet NaN that survives truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rest = bits & 0xffff;
    let half = 0x8000;
    let mut out = bits >> 16;
    if rest > half || (rest == half && (out & 1) == 1) {
        out += 1;
    }
    out as u16
}

/// Widens bfloat16 bits to `f32` (exact: bf16 is f32's top half).
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exactly_representable_values() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -65504.0] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "{v}");
        }
    }

    #[test]
    fn f16_relative_error_is_bounded() {
        for i in 0..2000 {
            let v = (i as f32 - 1000.0) * 0.173 + 0.001;
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let rel = ((back - v) / v).abs();
            assert!(rel < 1.0 / 1024.0, "{v} -> {back} rel {rel}");
        }
    }

    #[test]
    fn f16_specials() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        // Overflow saturates to inf.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e8)), f32::INFINITY);
        // Tiny values flush toward zero through the subnormal range.
        let tiny = f16_bits_to_f32(f32_to_f16_bits(1e-5));
        assert!((tiny - 1e-5).abs() / 1e-5 < 0.05, "subnormal {tiny}");
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-12)), 0.0);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 ties between 1.0 (even mantissa) and 1 + 2^-10 (odd);
        // ties-to-even keeps 1.0. 1 + 3*2^-11 ties between 1 + 2^-10 (odd)
        // and 1 + 2^-9 (even); ties-to-even rounds up to 1 + 2^-9.
        let v = 1.0 + f32::powi(2.0, -11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), 1.0);
        let v = 1.0 + 3.0 * f32::powi(2.0, -11);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(v)),
            1.0 + f32::powi(2.0, -9)
        );
    }

    #[test]
    fn bf16_roundtrips_and_bounds_error() {
        for &v in &[0.0f32, -1.5, 3.0e20, -2.0e-20, 123.456] {
            let back = bf16_bits_to_f32(f32_to_bf16_bits(v));
            if v == 0.0 {
                assert_eq!(back, 0.0);
            } else {
                let rel = ((back - v) / v).abs();
                assert!(rel < 1.0 / 128.0, "{v} -> {back}");
            }
        }
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
    }
}
