//! # sickle-codec
//!
//! Shard codecs for the SICKLE store: the layer between persistence and
//! serving that decides how a shard's sample sets are laid out on disk.
//!
//! The paper's extreme-scale claim is ultimately a bytes problem: MaxEnt
//! sampling shrinks what you *train on*, but full-precision f64 shards
//! still dominate disk. Following Wu, Zaki & Meneveau's database
//! compression by local re-simulation, this crate trades read-path compute
//! (and a budgeted amount of accuracy) for storage:
//!
//! | codec      | tag | values stored                  | typical ratio |
//! |------------|-----|--------------------------------|---------------|
//! | `identity` |  —  | raw SKLH (f64)                 | 1x            |
//! | `f16`      |  1  | IEEE binary16                  | ~3x           |
//! | `bf16`     |  2  | bfloat16                       | ~3x           |
//! | `u8`       |  3  | u8 + per-block scale/offset    | ~5x           |
//! | `resim`    |  4  | strided f16 rows + local solve | ~7x           |
//!
//! **Wire format.** Identity shards are byte-for-byte the existing `SKLH`
//! container — hashes, filenames, and old stores are untouched. Lossy
//! shards use a sibling container:
//! ```text
//! magic "SKLQ" | u32 version | u8 codec_tag | u64 count |
//! count x (u64 len, payload blob)
//! ```
//! [`decode_shard`] dispatches on the magic, so a reader never needs to be
//! told which codec wrote a shard — the bytes say. Unknown magics and
//! unknown tags return `InvalidData`; hostile input never panics.
//!
//! The manifest additionally records each shard's codec name (see
//! `sickle-store`), which is how per-codec stats are computed without
//! touching shard bytes.

pub mod half;
pub mod quant;
pub mod resim;
pub mod wire;

use std::io;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sickle_field::io as fio;
use sickle_field::points::SampleSet;

use wire::{invalid, need};

/// Magic for the quantized shard container (sibling of `SKLH`).
pub const QUANT_MAGIC: &[u8; 4] = b"SKLQ";
/// Version of the `SKLQ` container format.
pub const QUANT_VERSION: u32 = 1;

/// A shard codec choice. `Identity` is the compatibility default and
/// writes plain `SKLH` bytes; the rest write `SKLQ` containers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Raw SKLH bytes — what every store before this layer wrote.
    Identity,
    /// IEEE binary16 values.
    F16,
    /// bfloat16 values (f32 dynamic range, 8-bit mantissa).
    Bf16,
    /// u8 values with per-block scale/offset (block = 256 rows).
    U8Block,
    /// Strided f16 rows re-simulated on read by Jacobi relaxation.
    Resim {
        /// Keep one row in `stride`.
        stride: u32,
        /// Jacobi sweeps the decoder runs.
        sweeps: u32,
    },
}

impl Codec {
    /// The default coarse + re-simulate configuration.
    pub fn resim_default() -> Codec {
        Codec::Resim {
            stride: resim::DEFAULT_STRIDE,
            sweeps: resim::DEFAULT_SWEEPS,
        }
    }

    /// Stable name, as recorded in store manifests.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Identity => "identity",
            Codec::F16 => "f16",
            Codec::Bf16 => "bf16",
            Codec::U8Block => "u8",
            Codec::Resim { .. } => "resim",
        }
    }

    /// Parses a manifest/CLI codec name. `resim` gets the default
    /// stride/sweeps; per-shard parameters live in the shard bytes, not
    /// the name.
    pub fn parse(name: &str) -> Option<Codec> {
        match name {
            "identity" => Some(Codec::Identity),
            "f16" => Some(Codec::F16),
            "bf16" => Some(Codec::Bf16),
            "u8" => Some(Codec::U8Block),
            "resim" => Some(Codec::resim_default()),
            _ => None,
        }
    }

    /// The `SKLQ` codec tag, or `None` for identity.
    fn tag(&self) -> Option<u8> {
        match self {
            Codec::Identity => None,
            Codec::F16 => Some(1),
            Codec::Bf16 => Some(2),
            Codec::U8Block => Some(3),
            Codec::Resim { .. } => Some(4),
        }
    }
}

/// Encodes sample sets as a shard under `codec`. Identity produces the
/// exact bytes `sickle_field::io::encode_sample_sets` always has; other
/// codecs produce an `SKLQ` container.
pub fn encode_shard(sets: &[SampleSet], codec: Codec) -> Bytes {
    let Some(tag) = codec.tag() else {
        return fio::encode_sample_sets(sets);
    };
    let mut buf = BytesMut::new();
    buf.put_slice(QUANT_MAGIC);
    buf.put_u32_le(QUANT_VERSION);
    buf.put_u8(tag);
    buf.put_u64_le(sets.len() as u64);
    for set in sets {
        let blob = match codec {
            Codec::Identity => unreachable!("identity handled above"),
            Codec::F16 => quant::encode_f16(set),
            Codec::Bf16 => quant::encode_bf16(set),
            Codec::U8Block => quant::encode_u8block(set),
            Codec::Resim { stride, sweeps } => resim::encode_resim(set, stride, sweeps),
        };
        buf.put_u64_le(blob.len() as u64);
        buf.put_slice(&blob);
    }
    sickle_obs::counter!("codec.encode.shards", 1usize);
    buf.freeze()
}

/// Peeks a shard's codec name from its bytes without decoding the payload.
///
/// # Errors
/// `InvalidData` on unknown magic or codec tag, or truncation.
pub fn shard_codec_name(data: &[u8]) -> io::Result<&'static str> {
    need(data, 4, "truncated shard")?;
    match &data[..4] {
        m if m == b"SKLH" => Ok("identity"),
        m if m == QUANT_MAGIC => {
            need(data, 9, "truncated shard")?;
            match data[8] {
                1 => Ok("f16"),
                2 => Ok("bf16"),
                3 => Ok("u8"),
                4 => Ok("resim"),
                t => Err(invalid(&format!("unknown codec tag {t}"))),
            }
        }
        _ => Err(invalid("bad shard magic")),
    }
}

/// Decodes a shard written by [`encode_shard`] (or by any pre-codec
/// SICKLE version — plain `SKLH` dispatches to the legacy decoder). The
/// codec is read from the bytes; callers never pass it.
///
/// # Errors
/// `InvalidData` on unknown magic, unsupported version, unknown codec
/// tag, or truncated/hostile payloads. Never panics.
pub fn decode_shard(mut data: &[u8]) -> io::Result<Vec<SampleSet>> {
    need(data, 4, "truncated shard")?;
    if &data[..4] == b"SKLH" {
        return fio::decode_sample_sets(data);
    }
    if &data[..4] != QUANT_MAGIC {
        return Err(invalid("bad shard magic"));
    }
    data.advance(4);
    need(data, 4 + 1 + 8, "truncated shard")?;
    let version = data.get_u32_le();
    if version != QUANT_VERSION {
        return Err(invalid(&format!("unsupported SKLQ version {version}")));
    }
    let tag = data.get_u8();
    let decode: fn(&[u8]) -> io::Result<SampleSet> = match tag {
        1 => quant::decode_f16,
        2 => quant::decode_bf16,
        3 => quant::decode_u8block,
        4 => resim::decode_resim,
        t => return Err(invalid(&format!("unknown codec tag {t}"))),
    };
    let count = data.get_u64_le() as usize;
    // Each entry needs >= 8 bytes of length prefix; bound the allocation
    // by what the buffer can actually hold.
    let mut sets = Vec::with_capacity(count.min(data.remaining() / 8));
    for _ in 0..count {
        need(data, 8, "truncated shard")?;
        let len = data.get_u64_le() as usize;
        need(data, len, "truncated shard")?;
        let (blob, rest) = data.split_at(len);
        sets.push(decode(blob)?);
        data = rest;
    }
    sickle_obs::counter!("codec.decode.shards", 1usize);
    Ok(sets)
}

/// A shard decoded as shallowly as its codec permits: identity (`SKLH`)
/// shards come back as borrowed [`SampleSetView`]s into the input buffer
/// (zero value copies), while lossy `SKLQ` shards must reconstruct their
/// values and come back owned.
#[derive(Debug)]
pub enum DecodedShard<'a> {
    /// Borrowed views into the input (identity shards).
    Views(Vec<sickle_field::SampleSetView<'a>>),
    /// Materialized sets (lossy shards — the values do not exist on disk).
    Owned(Vec<SampleSet>),
}

/// Decodes a shard without materializing values when the bytes already
/// hold them: the zero-copy twin of [`decode_shard`]. Dispatches on the
/// magic exactly like the eager decoder and shares its validation, so a
/// hostile shard fails identically on both paths.
///
/// # Errors
/// As [`decode_shard`].
pub fn decode_shard_lazy(data: &[u8]) -> io::Result<DecodedShard<'_>> {
    need(data, 4, "truncated shard")?;
    if &data[..4] == b"SKLH" {
        return fio::decode_sample_sets_view(data).map(DecodedShard::Views);
    }
    decode_shard(data).map(DecodedShard::Owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_field::points::FeatureMatrix;

    fn sets() -> Vec<SampleSet> {
        let mk = |seed: f64, n: usize, cube: usize| {
            let names = vec!["u".into(), "q".into()];
            let data: Vec<f64> = (0..n * 2)
                .map(|i| (i as f64 * 0.1 + seed).sin() * 3.0)
                .collect();
            let mut s = SampleSet::new(
                FeatureMatrix::new(names, data),
                (0..n).map(|i| i * 3 + 11).collect(),
                1.25,
                4,
            );
            s.hypercube = Some(cube);
            s
        };
        vec![mk(0.0, 100, 0), mk(2.0, 64, 1)]
    }

    #[test]
    fn identity_bytes_match_legacy_encoder_exactly() {
        let sets = sets();
        let legacy = fio::encode_sample_sets(&sets);
        let ours = encode_shard(&sets, Codec::Identity);
        assert_eq!(&legacy[..], &ours[..]);
        // And the new decoder reads legacy bytes.
        let back = decode_shard(&legacy).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].features.data, sets[0].features.data);
    }

    #[test]
    fn every_codec_roundtrips_structure() {
        let sets = sets();
        for codec in [
            Codec::F16,
            Codec::Bf16,
            Codec::U8Block,
            Codec::resim_default(),
        ] {
            let bytes = encode_shard(&sets, codec);
            assert_eq!(shard_codec_name(&bytes).unwrap(), codec.name());
            let back = decode_shard(&bytes).unwrap();
            assert_eq!(back.len(), sets.len(), "{codec:?}");
            for (a, b) in sets.iter().zip(&back) {
                assert_eq!(a.indices, b.indices, "{codec:?}");
                assert_eq!(a.features.names, b.features.names);
                assert_eq!(a.time, b.time);
                assert_eq!(a.snapshot_index, b.snapshot_index);
                assert_eq!(a.hypercube, b.hypercube);
            }
        }
    }

    #[test]
    fn lazy_decode_borrows_identity_and_owns_lossy() {
        let sets = sets();
        let id = encode_shard(&sets, Codec::Identity);
        match decode_shard_lazy(&id).unwrap() {
            DecodedShard::Views(views) => {
                assert_eq!(views.len(), sets.len());
                let owned = decode_shard(&id).unwrap();
                for (view, set) in views.iter().zip(&owned) {
                    let back = view.to_owned_set();
                    assert_eq!(back.features, set.features);
                    assert_eq!(back.indices, set.indices);
                }
            }
            DecodedShard::Owned(_) => panic!("identity shard must decode as views"),
        }
        let lossy = encode_shard(&sets, Codec::F16);
        match decode_shard_lazy(&lossy).unwrap() {
            DecodedShard::Owned(owned) => {
                assert_eq!(owned.len(), sets.len());
            }
            DecodedShard::Views(_) => panic!("lossy shard cannot borrow"),
        }
        assert!(decode_shard_lazy(b"SK").is_err());
        assert!(decode_shard_lazy(&id[..id.len() - 3]).is_err());
    }

    #[test]
    fn quantized_is_smaller_than_identity() {
        let sets = sets();
        let id = encode_shard(&sets, Codec::Identity).len() as f64;
        // These fixture sets are short dim-2 chains where per-row index
        // metadata dominates; the dense-cube ratios live in resim::tests.
        for (codec, floor) in [
            (Codec::F16, 2.5),
            (Codec::Bf16, 2.5),
            (Codec::U8Block, 3.0),
            (Codec::resim_default(), 3.5),
        ] {
            let len = encode_shard(&sets, codec).len() as f64;
            assert!(id / len > floor, "{codec:?}: {id} / {len}");
        }
    }

    #[test]
    fn unknown_tag_is_error_not_abort() {
        let mut bytes = encode_shard(&sets(), Codec::F16).to_vec();
        bytes[8] = 200; // codec tag byte
        let err = decode_shard(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown codec tag"));
        assert!(shard_codec_name(&bytes).is_err());
    }

    #[test]
    fn unknown_version_and_magic_are_errors() {
        let mut bytes = encode_shard(&sets(), Codec::F16).to_vec();
        bytes[4] = 9; // version
        assert!(decode_shard(&bytes).is_err());
        let mut bytes = encode_shard(&sets(), Codec::F16).to_vec();
        bytes[0] = b'X';
        assert!(decode_shard(&bytes).is_err());
        assert!(decode_shard(b"").is_err());
        assert!(decode_shard(b"SK").is_err());
    }

    #[test]
    fn truncation_is_error_at_every_prefix() {
        let bytes = encode_shard(&sets(), Codec::U8Block);
        // Sweep a coarse grid of prefixes plus the boundary region.
        for cut in (0..bytes.len())
            .step_by(97)
            .chain(bytes.len() - 9..bytes.len())
        {
            assert!(decode_shard(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn codec_names_roundtrip_through_parse() {
        for codec in [
            Codec::Identity,
            Codec::F16,
            Codec::Bf16,
            Codec::U8Block,
            Codec::resim_default(),
        ] {
            assert_eq!(Codec::parse(codec.name()), Some(codec));
        }
        assert_eq!(Codec::parse("zstd"), None);
    }
}
