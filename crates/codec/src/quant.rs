//! Quantized value payloads: f16, bf16, and u8 with per-block scale/offset.
//!
//! Each transcoder takes a [`SampleSet`]'s row-major `f64` feature matrix
//! and stores it narrower; the [`SetHeader`] metadata is handled by
//! [`crate::wire`] and identical across codecs. Payload layouts
//! (little-endian):
//!
//! - **f16 / bf16**: `n * dim` x `u16` bit patterns, row-major.
//! - **u8block**: `u32 block_rows | dim x ceil(n/block_rows) x
//!   (f32 offset, f32 scale) | n * dim x u8`, row-major bytes. Each column
//!   is quantized independently per block of `block_rows` rows:
//!   `q = round((v - offset) / scale)`, `v ~ offset + scale * q`, so local
//!   dynamic range — not the global extremes — sets the step size.

use bytes::{Buf, BufMut, BytesMut};
use sickle_field::points::{FeatureMatrix, SampleSet};
use std::io;

use crate::half::{bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits};
use crate::wire::{checked_size, decode_header, encode_header, invalid, need, SetHeader};

/// Rows per u8 quantization block. Small enough that one block spans a
/// fraction of a cube (local contrast survives), large enough that the
/// 8-byte scale/offset overhead stays under 1% of the payload.
pub const U8_BLOCK_ROWS: usize = 256;

fn header_of(set: &SampleSet) -> SetHeader {
    SetHeader {
        time: set.time,
        snapshot_index: set.snapshot_index,
        hypercube: set.hypercube,
        names: set.features.names.clone(),
        indices: set.indices.clone(),
    }
}

fn set_of(h: SetHeader, values: Vec<f64>) -> SampleSet {
    let features = FeatureMatrix::new(h.names, values);
    let mut set = SampleSet::new(features, h.indices, h.time, h.snapshot_index);
    set.hypercube = h.hypercube;
    set
}

/// Encodes one set with every value narrowed through `narrow`.
fn encode_u16(set: &SampleSet, narrow: fn(f32) -> u16) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64 + set.features.data.len() * 2);
    encode_header(&header_of(set), &mut buf);
    for &v in &set.features.data {
        buf.put_u16_le(narrow(v as f32));
    }
    buf
}

fn decode_u16(mut data: &[u8], widen: fn(u16) -> f32) -> io::Result<SampleSet> {
    let h = decode_header(&mut data)?;
    let count = checked_size(h.len() as u64, h.dim(), "quantized payload overflow")?;
    let bytes = count
        .checked_mul(2)
        .ok_or_else(|| invalid("quantized payload overflow"))?;
    need(data, bytes, "truncated quantized payload")?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(widen(data.get_u16_le()) as f64);
    }
    Ok(set_of(h, values))
}

/// IEEE binary16 transcoder.
pub fn encode_f16(set: &SampleSet) -> BytesMut {
    encode_u16(set, f32_to_f16_bits)
}

/// Decodes an [`encode_f16`] payload.
pub fn decode_f16(data: &[u8]) -> io::Result<SampleSet> {
    decode_u16(data, f16_bits_to_f32)
}

/// bfloat16 transcoder.
pub fn encode_bf16(set: &SampleSet) -> BytesMut {
    encode_u16(set, f32_to_bf16_bits)
}

/// Decodes an [`encode_bf16`] payload.
pub fn decode_bf16(data: &[u8]) -> io::Result<SampleSet> {
    decode_u16(data, bf16_bits_to_f32)
}

/// u8 per-block scale/offset transcoder.
pub fn encode_u8block(set: &SampleSet) -> BytesMut {
    let n = set.len();
    let dim = set.features.dim();
    let nblocks = n.div_ceil(U8_BLOCK_ROWS).max(1);
    let mut buf = BytesMut::with_capacity(64 + dim * nblocks * 8 + n * dim);
    encode_header(&header_of(set), &mut buf);
    buf.put_u32_le(U8_BLOCK_ROWS as u32);

    // Per column, per block: offset = min, scale = (max - min) / 255.
    let mut params = vec![(0.0f32, 0.0f32); dim * nblocks];
    for (b, params_row) in params.chunks_mut(dim).enumerate() {
        let lo = b * U8_BLOCK_ROWS;
        let hi = ((b + 1) * U8_BLOCK_ROWS).min(n);
        for (c, slot) in params_row.iter_mut().enumerate() {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in lo..hi {
                let v = set.features.data[r * dim + c];
                if v.is_finite() {
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            if !min.is_finite() {
                // All-NaN/inf (or empty) block: store a degenerate range.
                min = 0.0;
                max = 0.0;
            }
            let scale = if max > min { (max - min) / 255.0 } else { 0.0 };
            *slot = (min as f32, scale as f32);
        }
    }
    for &(offset, scale) in &params {
        buf.put_f32_le(offset);
        buf.put_f32_le(scale);
    }
    for (r, row) in set.features.rows().enumerate() {
        let block = r / U8_BLOCK_ROWS;
        for (c, &v) in row.iter().enumerate() {
            let (offset, scale) = params[block * dim + c];
            let q = if scale > 0.0 && v.is_finite() {
                (((v as f32 - offset) / scale).round()).clamp(0.0, 255.0) as u8
            } else {
                0
            };
            buf.put_u8(q);
        }
    }
    buf
}

/// Decodes an [`encode_u8block`] payload.
pub fn decode_u8block(mut data: &[u8]) -> io::Result<SampleSet> {
    let h = decode_header(&mut data)?;
    need(data, 4, "truncated u8 block header")?;
    let block_rows = data.get_u32_le() as usize;
    if block_rows == 0 {
        return Err(invalid("zero u8 block size"));
    }
    let n = h.len();
    let dim = h.dim();
    let nblocks = n.div_ceil(block_rows).max(1);
    let nparams = nblocks
        .checked_mul(dim)
        .ok_or_else(|| invalid("u8 block count overflow"))?;
    let param_bytes = nparams
        .checked_mul(8)
        .ok_or_else(|| invalid("u8 block count overflow"))?;
    need(data, param_bytes, "truncated u8 block params")?;
    let mut params = Vec::with_capacity(nparams);
    for _ in 0..nparams {
        let offset = data.get_f32_le();
        let scale = data.get_f32_le();
        params.push((offset, scale));
    }
    let count = checked_size(n as u64, dim, "u8 payload overflow")?;
    need(data, count, "truncated u8 payload")?;
    let mut values = Vec::with_capacity(count);
    for r in 0..n {
        let block = r / block_rows;
        for c in 0..dim {
            let (offset, scale) = params[block * dim + c];
            let q = data.get_u8();
            values.push((offset + scale * q as f32) as f64);
        }
    }
    Ok(set_of(h, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> SampleSet {
        let names = vec!["u".into(), "q".into()];
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let x = i as f64 * 0.01;
            data.push((x * 3.0).sin() * 2.0 + 0.5);
            data.push((x * 1.7).cos() * 40.0 - 10.0);
        }
        let mut set = SampleSet::new(FeatureMatrix::new(names, data), (0..n).collect(), 0.75, 2);
        set.hypercube = Some(5);
        set
    }

    fn max_abs_err(a: &SampleSet, b: &SampleSet) -> f64 {
        a.features
            .data
            .iter()
            .zip(&b.features.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn f16_roundtrip_preserves_structure_and_bounds_error() {
        let set = sample(500);
        let back = decode_f16(&encode_f16(&set)).unwrap();
        assert_eq!(back.indices, set.indices);
        assert_eq!(back.features.names, set.features.names);
        assert_eq!(back.hypercube, set.hypercube);
        assert_eq!(back.time, set.time);
        // f16 keeps ~3 decimal digits over this O(10) range.
        assert!(max_abs_err(&set, &back) < 0.05);
    }

    #[test]
    fn bf16_roundtrip_bounds_error() {
        let set = sample(500);
        let back = decode_bf16(&encode_bf16(&set)).unwrap();
        assert!(max_abs_err(&set, &back) < 0.5); // ~2 decimal digits
    }

    #[test]
    fn u8block_roundtrip_bounds_error_to_block_range() {
        let set = sample(1000);
        let back = decode_u8block(&encode_u8block(&set)).unwrap();
        assert_eq!(back.indices, set.indices);
        // Worst case per value is half a quantization step of its block's
        // range; column q spans ~80, so a global bound of range/255 holds.
        assert!(max_abs_err(&set, &back) < 80.0 / 255.0 + 1e-9);
    }

    #[test]
    fn u8block_constant_column_is_exact() {
        let set = SampleSet::new(
            FeatureMatrix::new(vec!["c".into()], vec![3.25; 40]),
            (0..40).collect(),
            0.0,
            0,
        );
        let back = decode_u8block(&encode_u8block(&set)).unwrap();
        for &v in &back.features.data {
            assert_eq!(v, 3.25);
        }
    }

    #[test]
    fn u8block_handles_non_finite_values() {
        let set = SampleSet::new(
            FeatureMatrix::new(vec!["c".into()], vec![1.0, f64::NAN, 2.0, f64::INFINITY]),
            vec![0, 1, 2, 3],
            0.0,
            0,
        );
        let back = decode_u8block(&encode_u8block(&set)).unwrap();
        // Non-finite inputs land on finite (clamped) outputs; no panic.
        for &v in &back.features.data {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn truncated_payloads_error() {
        let set = sample(300);
        let f16 = encode_f16(&set);
        assert!(decode_f16(&f16[..f16.len() - 1]).is_err());
        let bf16 = encode_bf16(&set);
        assert!(decode_bf16(&bf16[..bf16.len() - 1]).is_err());
        let u8b = encode_u8block(&set);
        assert!(decode_u8block(&u8b[..u8b.len() - 1]).is_err());
        assert!(decode_u8block(&u8b[..40]).is_err());
    }
}
