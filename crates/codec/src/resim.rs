//! Coarse + re-simulate transcoder.
//!
//! Persists only every `stride`-th row of a sample set (plus the last row)
//! as f16, and reconstructs the missing rows on read by a local solve:
//! the stored rows become Dirichlet data for a few Jacobi diffusion sweeps
//! (`sickle_cfd::resim`), seeded with the linear interpolant along row
//! order. This is the Wu–Zaki–Meneveau idea — store spatio-temporal
//! sub-samples, re-simulate locally on demand — reduced to the cheapest
//! solver whose reconstruction still couples spatial neighbors.
//!
//! Dense raster-ordered cubes (`PointMethod::Full` shards, where row `r`
//! sits at lattice coordinate `(r/(e*e), (r/e) % e, r % e)`) relax on the
//! full 3-D stencil; anything else falls back to the 1-D chain along row
//! order. The encoder detects the lattice case from the indices themselves
//! — edge-clipped or sparse cubes never get a stencil they do not satisfy.
//!
//! Payload layout after the common [`crate::wire`] header (little-endian):
//! ```text
//! u32 stride | u32 sweeps | u32 ex | u32 ey | u32 ez (0,0,0 = chain) |
//! ncoarse x dim x u16 (f16, row-major)
//! ```
//! Coarse rows are `{0, stride, 2*stride, ...} U {n-1}` — derived, not
//! stored. Reconstruction inherits the maximum principle of the diffusion
//! solve: every rebuilt value lies within the range of the stored rows, so
//! a decoded shard can never introduce out-of-range excursions — it only
//! loses sub-stride fluctuation energy, which the accuracy budgets bound.

use bytes::{Buf, BufMut, BytesMut};
use sickle_cfd::resim::{relax_chain, relax_lattice};
use sickle_field::points::{FeatureMatrix, SampleSet};
use std::io;

use crate::half::{f16_bits_to_f32, f32_to_f16_bits};
use crate::wire::{checked_size, decode_header, encode_header, invalid, need, SetHeader};

/// Default coarsening stride: keep one row in three. Deliberately coprime
/// with the power-of-two cube edges the tiler produces, so the kept rows
/// scatter through the lattice volume instead of aliasing onto a subset of
/// z-planes (stride 4 on an edge-16 cube keeps only every fourth z-plane
/// and measurably doubles the spectra error despite the higher ratio).
/// With affine-coded indices this still lands ~15x smaller than identity
/// on 4-feature cubes; larger strides trade spectra fidelity for little —
/// the coarse rows are already a small fraction of the shard.
pub const DEFAULT_STRIDE: u32 = 3;
/// Default Jacobi sweep count for the read-path solve.
pub const DEFAULT_SWEEPS: u32 = 8;

/// Row positions persisted at `stride` for an `n`-row set.
fn coarse_rows(n: usize, stride: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let mut rows: Vec<usize> = (0..n).step_by(stride.max(1)).collect();
    if *rows.last().unwrap() != n - 1 {
        rows.push(n - 1);
    }
    rows
}

/// Detects a full raster-ordered cubic lattice: `n == e^3` and every row
/// whose z-coordinate is not at the far face is index-adjacent to the next
/// row (the order `Hypercube::point_indices` emits for unclipped cubes).
fn detect_lattice(indices: &[usize]) -> Option<(usize, usize, usize)> {
    let n = indices.len();
    if n < 8 {
        return None;
    }
    let e = (n as f64).cbrt().round() as usize;
    if e < 2 || e * e * e != n {
        return None;
    }
    for r in 0..n - 1 {
        if r % e != e - 1 && indices[r + 1] != indices[r].wrapping_add(1) {
            return None;
        }
    }
    Some((e, e, e))
}

/// Encodes one set keeping one row in `stride`; `sweeps` is recorded for
/// the decoder's solve.
pub fn encode_resim(set: &SampleSet, stride: u32, sweeps: u32) -> BytesMut {
    let n = set.len();
    let dim = set.features.dim();
    let stride = stride.max(1);
    let rows = coarse_rows(n, stride as usize);
    let (ex, ey, ez) = detect_lattice(&set.indices).unwrap_or((0, 0, 0));

    let mut buf = BytesMut::with_capacity(64 + dim * 8 + rows.len() * dim * 2);
    let header = SetHeader {
        time: set.time,
        snapshot_index: set.snapshot_index,
        hypercube: set.hypercube,
        names: set.features.names.clone(),
        indices: set.indices.clone(),
    };
    encode_header(&header, &mut buf);
    buf.put_u32_le(stride);
    buf.put_u32_le(sweeps);
    buf.put_u32_le(ex as u32);
    buf.put_u32_le(ey as u32);
    buf.put_u32_le(ez as u32);
    for &r in &rows {
        for c in 0..dim {
            buf.put_u16_le(f32_to_f16_bits(set.features.data[r * dim + c] as f32));
        }
    }
    buf
}

/// Decodes an [`encode_resim`] payload, reconstructing the dropped rows by
/// seeded linear interpolation plus `sweeps` Jacobi relaxation sweeps.
pub fn decode_resim(mut data: &[u8]) -> io::Result<SampleSet> {
    let h = decode_header(&mut data)?;
    let n = h.len();
    let dim = h.dim();
    need(data, 4 * 5, "truncated resim header")?;
    let stride = data.get_u32_le() as usize;
    let sweeps = data.get_u32_le() as usize;
    let ex = data.get_u32_le() as usize;
    let ey = data.get_u32_le() as usize;
    let ez = data.get_u32_le() as usize;
    if stride == 0 {
        return Err(invalid("zero resim stride"));
    }
    // A bit-flipped sweep count must not become a CPU sink: decode cost is
    // O(sweeps * n), so bound it far above any sane encoder setting.
    if sweeps > 1024 {
        return Err(invalid("implausible resim sweep count"));
    }
    let lattice = ex > 0 && ey > 0 && ez > 0;
    if lattice && ex.checked_mul(ey).and_then(|v| v.checked_mul(ez)) != Some(n) {
        return Err(invalid("resim lattice does not match row count"));
    }
    let rows = coarse_rows(n, stride);
    let coarse_count = checked_size(rows.len() as u64, dim, "resim payload overflow")?;
    let coarse_bytes = coarse_count
        .checked_mul(2)
        .ok_or_else(|| invalid("resim payload overflow"))?;
    need(data, coarse_bytes, "truncated resim payload")?;
    let mut coarse = Vec::with_capacity(coarse_count);
    for _ in 0..coarse_count {
        coarse.push(f16_bits_to_f32(data.get_u16_le()) as f64);
    }

    let mut known = vec![false; n];
    for &r in &rows {
        known[r] = true;
    }
    let mut values = vec![0.0f64; n * dim];
    for c in 0..dim {
        let mut col = vec![0.0f64; n];
        for (k, &r) in rows.iter().enumerate() {
            col[r] = coarse[k * dim + c];
        }
        // Seed unknowns with the linear interpolant between bracketing
        // known rows — the chain-harmonic solution, and a good starting
        // point for the lattice stencil too.
        for w in rows.windows(2) {
            let (a, b) = (w[0], w[1]);
            let gap = (b - a) as f64;
            for r in a + 1..b {
                let t = (r - a) as f64 / gap;
                col[r] = col[a] * (1.0 - t) + col[b] * t;
            }
        }
        if lattice {
            relax_lattice((ex, ey, ez), &mut col, &known, sweeps);
        } else {
            relax_chain(&mut col, &known, sweeps);
        }
        for (r, &v) in col.iter().enumerate() {
            values[r * dim + c] = v;
        }
    }

    let features = FeatureMatrix::new(h.names, values);
    let mut set = SampleSet::new(features, h.indices, h.time, h.snapshot_index);
    set.hypercube = h.hypercube;
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dense raster-ordered cube of edge `e` with smooth 4-feature rows
    /// (the dimensionality of the synth turbulence datasets).
    fn cube_set(e: usize) -> SampleSet {
        let n = e * e * e;
        let names = vec!["u".into(), "v".into(), "w".into(), "q".into()];
        let mut data = Vec::with_capacity(n * 4);
        for r in 0..n {
            let z = (r % e) as f64;
            let y = ((r / e) % e) as f64;
            let x = (r / (e * e)) as f64;
            data.push((0.5 * x).sin() + (0.4 * y).cos() + 0.1 * z);
            data.push((0.3 * y + 0.2 * z).cos() - 0.05 * x);
            data.push((0.25 * (x + z)).sin() * 0.8);
            data.push(0.2 * x * y - 0.3 * z);
        }
        // Raster-adjacent global indices, as Hypercube::point_indices emits
        // for an unclipped cube in a larger grid (base offset arbitrary).
        let indices: Vec<usize> = (0..n)
            .map(|r| {
                let z = r % e;
                let y = (r / e) % e;
                let x = r / (e * e);
                (x * 64 + y) * 64 + z + 1000
            })
            .collect();
        // Rows within a z-line are index-adjacent; line breaks jump.
        SampleSet::new(FeatureMatrix::new(names, data), indices, 0.5, 1)
    }

    #[test]
    fn detects_lattice_on_raster_cube() {
        let set = cube_set(8);
        assert_eq!(detect_lattice(&set.indices), Some((8, 8, 8)));
    }

    #[test]
    fn rejects_non_raster_indices() {
        let mut set = cube_set(8);
        set.indices[3] = 0; // break adjacency inside a z-line
        assert_eq!(detect_lattice(&set.indices), None);
        assert_eq!(detect_lattice(&[1, 2, 3]), None); // not a cube count
    }

    #[test]
    fn roundtrip_reconstructs_smooth_cube_accurately() {
        let set = cube_set(12);
        let enc = encode_resim(&set, 7, 8);
        let back = decode_resim(&enc).unwrap();
        assert_eq!(back.indices, set.indices);
        assert_eq!(back.features.names, set.features.names);
        let total = set.features.data.len();
        let rms_truth =
            (set.features.data.iter().map(|v| v * v).sum::<f64>() / total as f64).sqrt();
        let rms_err = (set
            .features
            .data
            .iter()
            .zip(&back.features.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / total as f64)
            .sqrt();
        assert!(
            rms_err < 0.1 * rms_truth,
            "rms_err {rms_err} vs signal {rms_truth}"
        );
    }

    #[test]
    fn coarse_rows_are_exact_to_f16() {
        let set = cube_set(8);
        let back = decode_resim(&encode_resim(&set, 4, 8)).unwrap();
        let dim = set.features.dim();
        for &r in &coarse_rows(set.len(), 4) {
            for c in 0..dim {
                let truth = set.features.data[r * dim + c];
                let got = back.features.data[r * dim + c];
                let f16 = f16_bits_to_f32(f32_to_f16_bits(truth as f32)) as f64;
                assert_eq!(got, f16, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn chain_fallback_on_sparse_sets() {
        let names = vec!["u".into()];
        let n = 50;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let indices: Vec<usize> = (0..n).map(|i| i * 17).collect(); // sparse
        let set = SampleSet::new(FeatureMatrix::new(names, data), indices, 0.0, 0);
        let back = decode_resim(&encode_resim(&set, 5, 10)).unwrap();
        let rms_err = (set
            .features
            .data
            .iter()
            .zip(&back.features.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        assert!(rms_err < 0.15, "chain rms {rms_err}");
    }

    #[test]
    fn compresses_well_below_identity() {
        let set = cube_set(16);
        let identity = sickle_field::io::encode_sample_set(&set).len();
        let resim = encode_resim(&set, 7, 8).len();
        assert!(
            (identity as f64) / (resim as f64) > 6.0,
            "identity {identity} resim {resim}"
        );
    }

    #[test]
    fn hostile_input_errors_not_panics() {
        let set = cube_set(8);
        let enc = encode_resim(&set, 6, 8);
        for cut in [10, 40, enc.len() / 2, enc.len() - 1] {
            assert!(decode_resim(&enc[..cut]).is_err(), "cut {cut}");
        }
        // Zero stride must be rejected, not loop forever.
        let mut bad = enc.to_vec();
        // stride lives right after the header; find it by re-decoding the
        // header length.
        let mut rest = &bad[..];
        decode_header(&mut rest).unwrap();
        let off = bad.len() - rest.len();
        bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_resim(&bad).is_err());
        // Lattice dims that disagree with n must be rejected.
        let mut bad = enc.to_vec();
        bad[off + 8..off + 12].copy_from_slice(&3u32.to_le_bytes());
        assert!(decode_resim(&bad).is_err());
        // A bit-flipped sweep count must not become a CPU sink.
        let mut bad = enc.to_vec();
        bad[off + 4..off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_resim(&bad).is_err());
    }

    #[test]
    fn deterministic_bits() {
        let set = cube_set(10);
        let a = decode_resim(&encode_resim(&set, 6, 8)).unwrap();
        let b = decode_resim(&encode_resim(&set, 6, 8)).unwrap();
        let bits = |s: &SampleSet| {
            s.features
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b));
    }
}
