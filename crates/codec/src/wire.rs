//! Shared wire plumbing for the quantized shard container (`SKLQ`).
//!
//! Every lossy codec stores the same per-set metadata — time, snapshot
//! index, hypercube, feature names, and point indices — followed by a
//! codec-specific value payload. This module owns that common prefix plus
//! the defensive decode helpers, mirroring the discipline of
//! `sickle_field::io`: counts read from the buffer are attacker-controlled
//! and never drive an allocation or length check without overflow-checked
//! arithmetic bounded by the bytes actually present.
//!
//! Set header layout (little-endian):
//! ```text
//! f64 time | u64 snapshot_index | i64 hypercube (-1 = none) |
//! u32 dim | dim x (u32 name_len, name bytes) |
//! u64 n | u8 index_encoding | indices
//! ```
//! Three index encodings, chosen per set by the encoder:
//!
//! - `1` (affine): `u64 base | u32 ex | u32 ey | u32 ez | u64 sx | u64 sy`
//!   — row `r` at lattice coordinate `(x, y, z) = (r/(ey*ez), (r/ez) % ey,
//!   r % ez)` has index `base + x*sx + y*sy + z`. This is exactly the
//!   shape `Hypercube::point_indices` emits for raster cubes (and strided
//!   chains degenerate to it), so dense-cube shards carry ~30 bytes of
//!   index metadata total instead of 4-8 bytes per row — which would
//!   otherwise dominate every lossy codec's on-disk footprint.
//! - `4`: `n x u32` index list (all indices fit in 32 bits).
//! - `8`: `n x u64` index list (the general case).

use std::io;

use bytes::{Buf, BufMut, BytesMut};

/// `InvalidData` constructor shared by the codec decoders.
pub fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// `count * item_size` as a `usize`, or `InvalidData` on overflow.
pub fn checked_size(count: u64, item_size: usize, what: &str) -> io::Result<usize> {
    usize::try_from(count)
        .ok()
        .and_then(|c| c.checked_mul(item_size))
        .ok_or_else(|| invalid(what))
}

/// Errors unless at least `n` bytes remain.
pub fn need(data: &[u8], n: usize, what: &str) -> io::Result<()> {
    if data.remaining() < n {
        Err(invalid(what))
    } else {
        Ok(())
    }
}

/// The metadata every codec carries per sample set, independent of how the
/// feature values themselves are stored.
#[derive(Clone, Debug, PartialEq)]
pub struct SetHeader {
    pub time: f64,
    pub snapshot_index: usize,
    pub hypercube: Option<usize>,
    pub names: Vec<String>,
    pub indices: Vec<usize>,
}

impl SetHeader {
    /// Number of feature columns.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Number of sample rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns true when the header describes zero rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// An affine description of an index list: row `r` at lattice coordinate
/// `(r/(ey*ez), (r/ez) % ey, r % ez)` has index `base + x*sx + y*sy + z`.
struct AffineIndices {
    base: u64,
    dims: (u32, u32, u32),
    strides: (u64, u64),
}

/// Detects affine structure in an index list. Raster-ordered cubes (what
/// `Hypercube::point_indices` emits) and regularly strided chains both
/// match; MaxEnt-sampled scatter does not. The candidate dimensions come
/// from run lengths, then every index is verified exactly — a false match
/// is impossible, only a missed one.
fn detect_affine(idx: &[usize]) -> Option<AffineIndices> {
    let n = idx.len();
    if n < 2 {
        return None;
    }
    // ez: length of the leading run of consecutive (+1) indices.
    let mut ez = n;
    for r in 0..n - 1 {
        if idx[r + 1] != idx[r].checked_add(1)? {
            ez = r + 1;
            break;
        }
    }
    if !n.is_multiple_of(ez) {
        return None;
    }
    let lines = n / ez;
    let (ey, sy) = if lines == 1 {
        (1, 0u64)
    } else {
        let sy = idx[ez].checked_sub(idx[0])? as u64;
        // ey: number of lines before the line-start delta first changes.
        let mut ey = lines;
        for l in 0..lines - 1 {
            let d = idx[(l + 1) * ez].checked_sub(idx[l * ez])? as u64;
            if d != sy {
                ey = l + 1;
                break;
            }
        }
        if !lines.is_multiple_of(ey) {
            return None;
        }
        (ey, sy)
    };
    let ex = lines / ey;
    let sx = if ex > 1 {
        idx[ey * ez].checked_sub(idx[0])? as u64
    } else {
        0
    };
    if ex > u32::MAX as usize || ey > u32::MAX as usize || ez > u32::MAX as usize {
        return None;
    }
    // Exact verification of every index against the affine formula.
    let base = idx[0] as u64;
    for (r, &i) in idx.iter().enumerate() {
        let z = (r % ez) as u64;
        let y = ((r / ez) % ey) as u64;
        let x = (r / (ez * ey)) as u64;
        let expect = base
            .checked_add(x.checked_mul(sx)?)?
            .checked_add(y.checked_mul(sy)?)?
            .checked_add(z)?;
        if i as u64 != expect {
            return None;
        }
    }
    Some(AffineIndices {
        base,
        dims: (ex as u32, ey as u32, ez as u32),
        strides: (sx, sy),
    })
}

/// Appends a [`SetHeader`] to `buf`, choosing the cheapest index encoding
/// (affine when the indices have lattice structure, else a u32/u64 list).
pub fn encode_header(h: &SetHeader, buf: &mut BytesMut) {
    buf.put_f64_le(h.time);
    buf.put_u64_le(h.snapshot_index as u64);
    buf.put_i64_le(h.hypercube.map_or(-1, |c| c as i64));
    buf.put_u32_le(h.names.len() as u32);
    for name in &h.names {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(h.indices.len() as u64);
    if let Some(aff) = detect_affine(&h.indices) {
        buf.put_u8(1);
        buf.put_u64_le(aff.base);
        buf.put_u32_le(aff.dims.0);
        buf.put_u32_le(aff.dims.1);
        buf.put_u32_le(aff.dims.2);
        buf.put_u64_le(aff.strides.0);
        buf.put_u64_le(aff.strides.1);
        return;
    }
    let narrow = h.indices.iter().all(|&i| i <= u32::MAX as usize);
    buf.put_u8(if narrow { 4 } else { 8 });
    if narrow {
        for &i in &h.indices {
            buf.put_u32_le(i as u32);
        }
    } else {
        for &i in &h.indices {
            buf.put_u64_le(i as u64);
        }
    }
}

/// Reads a [`SetHeader`], advancing `data` past it. Truncated or hostile
/// input returns `InvalidData`, never panics.
pub fn decode_header(data: &mut &[u8]) -> io::Result<SetHeader> {
    let err = || invalid("truncated codec set header");
    need(data, 8 + 8 + 8 + 4, "truncated codec set header")?;
    let time = data.get_f64_le();
    let snapshot_index = data.get_u64_le() as usize;
    let hc = data.get_i64_le();
    let dim = data.get_u32_le() as usize;
    if dim == 0 {
        return Err(invalid("zero feature dimension"));
    }
    // Each name needs >= 4 bytes of length prefix; bound the allocation by
    // what the buffer can actually hold.
    let mut names = Vec::with_capacity(dim.min(data.remaining() / 4));
    for _ in 0..dim {
        need(data, 4, "truncated codec set header")?;
        let len = data.get_u32_le() as usize;
        need(data, len, "truncated codec set header")?;
        let mut raw = vec![0u8; len];
        data.copy_to_slice(&mut raw);
        names.push(String::from_utf8(raw).map_err(|_| err())?);
    }
    need(data, 9, "truncated codec set header")?;
    let n = data.get_u64_le();
    let encoding = data.get_u8();
    let indices = match encoding {
        1 => {
            need(data, 8 + 3 * 4 + 2 * 8, "truncated affine indices")?;
            let base = data.get_u64_le();
            let ex = data.get_u32_le() as u64;
            let ey = data.get_u32_le() as u64;
            let ez = data.get_u32_le() as u64;
            let count = ex
                .checked_mul(ey)
                .and_then(|v| v.checked_mul(ez))
                .ok_or_else(|| invalid("affine index dims overflow"))?;
            if count != n {
                return Err(invalid("affine index dims do not match row count"));
            }
            // Unlike list encodings, affine counts are not bounded by the
            // bytes present (that is the point of the encoding), so a
            // bit-flipped count could otherwise demand an enormous
            // allocation. Cap at far above any real cube (128^3 = 2M rows).
            if count > (1 << 24) {
                return Err(invalid("implausible affine index count"));
            }
            let sx = data.get_u64_le();
            let sy = data.get_u64_le();
            let n = n as usize;
            let mut indices = Vec::with_capacity(n);
            for x in 0..ex {
                for y in 0..ey {
                    let line = base
                        .checked_add(
                            x.checked_mul(sx)
                                .ok_or_else(|| invalid("affine overflow"))?,
                        )
                        .and_then(|v| v.checked_add(y.checked_mul(sy)?))
                        .ok_or_else(|| invalid("affine overflow"))?;
                    for z in 0..ez {
                        let i = line
                            .checked_add(z)
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| invalid("affine overflow"))?;
                        indices.push(i);
                    }
                }
            }
            indices
        }
        width @ (4 | 8) => {
            let width = width as usize;
            let idx_bytes = checked_size(n, width, "index count overflow")?;
            need(data, idx_bytes, "truncated codec indices")?;
            let n = n as usize;
            let mut indices = Vec::with_capacity(n);
            if width == 4 {
                for _ in 0..n {
                    indices.push(data.get_u32_le() as usize);
                }
            } else {
                for _ in 0..n {
                    indices.push(data.get_u64_le() as usize);
                }
            }
            indices
        }
        e => return Err(invalid(&format!("unknown index encoding {e}"))),
    };
    Ok(SetHeader {
        time,
        snapshot_index,
        hypercube: if hc >= 0 { Some(hc as usize) } else { None },
        names,
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetHeader {
        SetHeader {
            time: 1.5,
            snapshot_index: 3,
            hypercube: Some(12),
            names: vec!["u".into(), "v".into()],
            indices: vec![7, 8, 1 << 20],
        }
    }

    #[test]
    fn header_roundtrip_narrow_and_wide() {
        for wide in [false, true] {
            let mut h = sample();
            if wide {
                h.indices.push(1usize << 40);
            }
            let mut buf = BytesMut::new();
            encode_header(&h, &mut buf);
            let mut slice = &buf[..];
            let back = decode_header(&mut slice).unwrap();
            assert_eq!(back, h);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn header_without_hypercube() {
        let mut h = sample();
        h.hypercube = None;
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        let back = decode_header(&mut &buf[..]).unwrap();
        assert_eq!(back.hypercube, None);
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let mut buf = BytesMut::new();
        encode_header(&sample(), &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(decode_header(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn affine_roundtrip_for_raster_cube() {
        // Indices shaped like Hypercube::point_indices on a 64^3 grid.
        let e = 6usize;
        let indices: Vec<usize> = (0..e * e * e)
            .map(|r| {
                let z = r % e;
                let y = (r / e) % e;
                let x = r / (e * e);
                (x * 64 + y) * 64 + z + 5000
            })
            .collect();
        let h = SetHeader {
            time: 0.0,
            snapshot_index: 0,
            hypercube: None,
            names: vec!["u".into()],
            indices,
        };
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        // Affine form: the whole index block is ~40 bytes, not 4 per row.
        assert!(
            buf.len() < 100,
            "affine encoding not used: {} bytes",
            buf.len()
        );
        let back = decode_header(&mut &buf[..]).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn affine_roundtrip_for_strided_chain() {
        let indices: Vec<usize> = (0..50).map(|i| 3 + i * 17).collect();
        let h = SetHeader {
            time: 1.0,
            snapshot_index: 2,
            hypercube: Some(1),
            names: vec!["u".into()],
            indices,
        };
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        assert!(buf.len() < 100);
        let back = decode_header(&mut &buf[..]).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn scattered_indices_fall_back_to_list() {
        let h = SetHeader {
            time: 0.0,
            snapshot_index: 0,
            hypercube: None,
            names: vec!["u".into()],
            indices: vec![3, 1, 4, 1, 5, 9, 2, 6],
        };
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        let back = decode_header(&mut &buf[..]).unwrap();
        assert_eq!(back.indices, h.indices);
    }

    #[test]
    fn hostile_affine_headers_are_errors() {
        let base = |n: u64| {
            let mut buf = BytesMut::new();
            buf.put_f64_le(0.0);
            buf.put_u64_le(0);
            buf.put_i64_le(-1);
            buf.put_u32_le(1);
            buf.put_u32_le(1);
            buf.put_u8(b'u');
            buf.put_u64_le(n);
            buf.put_u8(1); // affine encoding
            buf
        };
        // Dims that do not multiply to n.
        let mut buf = base(10);
        buf.put_u64_le(0);
        buf.put_u32_le(3);
        buf.put_u32_le(3);
        buf.put_u32_le(3);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        assert!(decode_header(&mut &buf[..]).is_err());
        // Implausibly huge count must not allocate.
        let huge = 1u64 << 40;
        let mut buf = base(huge);
        buf.put_u64_le(0);
        buf.put_u32_le(1 << 20);
        buf.put_u32_le(1 << 20);
        buf.put_u32_le(1);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        assert!(decode_header(&mut &buf[..]).is_err());
        // Strides that overflow the index space.
        let mut buf = base(8);
        buf.put_u64_le(u64::MAX - 2);
        buf.put_u32_le(2);
        buf.put_u32_le(2);
        buf.put_u32_le(2);
        buf.put_u64_le(u64::MAX / 2);
        buf.put_u64_le(u64::MAX / 3);
        assert!(decode_header(&mut &buf[..]).is_err());
        // Unknown index encoding byte.
        let mut buf = base(0);
        let last = buf.len() - 1;
        buf[last] = 7;
        assert!(decode_header(&mut &buf[..]).is_err());
    }

    #[test]
    fn hostile_counts_are_errors() {
        // Huge dim with a tiny buffer.
        let mut buf = BytesMut::new();
        buf.put_f64_le(0.0);
        buf.put_u64_le(0);
        buf.put_i64_le(-1);
        buf.put_u32_le(u32::MAX);
        assert!(decode_header(&mut &buf[..]).is_err());
        // Huge n with a plausible prefix.
        let mut buf = BytesMut::new();
        buf.put_f64_le(0.0);
        buf.put_u64_le(0);
        buf.put_i64_le(-1);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u8(b'u');
        buf.put_u64_le(u64::MAX);
        buf.put_u8(8);
        assert!(decode_header(&mut &buf[..]).is_err());
        // Bad index width.
        let mut buf = BytesMut::new();
        buf.put_f64_le(0.0);
        buf.put_u64_le(0);
        buf.put_i64_le(-1);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u8(b'u');
        buf.put_u64_le(0);
        buf.put_u8(3);
        assert!(decode_header(&mut &buf[..]).is_err());
    }
}
