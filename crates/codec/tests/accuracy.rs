//! Physics-statistics accuracy budgets per codec.
//!
//! Following Schröder et al., lossy compression of turbulence training data
//! is validated against *physical statistics*, not pointwise error: the
//! radially binned energy spectrum (spectral content survives) and the
//! phase-space PDF (the sampling pipeline's own currency — MaxEnt operates
//! on feature histograms). Each codec gets an explicit budget; a codec
//! change that degrades either statistic past its budget fails tier-1,
//! not just the perf bench.

use sickle_cfd::synth::{self, SynthConfig};
use sickle_codec::{decode_shard, encode_shard, Codec};
use sickle_field::points::{FeatureMatrix, SampleSet};
use sickle_field::snapshot::Snapshot;
use sickle_field::stats::{kl_divergence, Histogram};

const EDGE: usize = 32;
const BINS: usize = 100;

fn synth_snapshot() -> Snapshot {
    let cfg = SynthConfig {
        nx: EDGE,
        ny: EDGE,
        nz: EDGE,
        anisotropy: 0.35,
        ..SynthConfig::default()
    };
    synth::generate(&cfg, 42)
}

/// The whole snapshot as one raster-ordered sample set (indices 0..n), so
/// the resim codec sees a full lattice — the layout `PointMethod::Full`
/// cube shards have.
fn full_set(snap: &Snapshot) -> SampleSet {
    let n = snap.num_points();
    let vidx = snap.var_indices(&snap.names.clone());
    let mut features = FeatureMatrix::with_capacity(snap.names.clone(), n);
    let mut row = vec![0.0; vidx.len()];
    for i in 0..n {
        snap.gather_point(&vidx, i, &mut row);
        features.push_row(&row);
    }
    SampleSet::new(features, (0..n).collect(), snap.time, 0)
}

/// Relative L2 error between the energy spectra of two fields.
fn spectra_err(snap: &Snapshot, orig: &[f64], recon: &[f64]) -> f64 {
    let eo = synth::measured_spectrum(&snap.grid, orig);
    let er = synth::measured_spectrum(&snap.grid, recon);
    let num: f64 = eo
        .iter()
        .zip(&er)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>();
    let den: f64 = eo.iter().map(|a| a * a).sum::<f64>();
    (num / den).sqrt()
}

/// KL divergence between the value PDFs, binned over the original range so
/// both histograms share support.
fn pdf_kl(orig: &[f64], recon: &[f64]) -> f64 {
    let lo = orig.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = orig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut ho = Histogram::new(lo, hi, BINS);
    let mut hr = Histogram::new(lo, hi, BINS);
    ho.extend(orig);
    hr.extend(recon);
    kl_divergence(&ho.pmf(), &hr.pmf())
}

/// Worst spectra error and worst PDF KL across all features, for one codec.
fn codec_errors(snap: &Snapshot, set: &SampleSet, codec: Codec) -> (f64, f64) {
    let bytes = encode_shard(std::slice::from_ref(set), codec);
    let back = decode_shard(&bytes).expect("decode");
    assert_eq!(back.len(), 1);
    let back = &back[0];
    let dim = set.features.dim();
    let mut worst_spec: f64 = 0.0;
    let mut worst_kl: f64 = 0.0;
    for c in 0..dim {
        let orig = set.features.column(c);
        let recon = back.features.column(c);
        worst_spec = worst_spec.max(spectra_err(snap, &orig, &recon));
        worst_kl = worst_kl.max(pdf_kl(&orig, &recon));
    }
    (worst_spec, worst_kl)
}

/// The per-codec accuracy budgets. These are the same numbers DESIGN.md
/// §15 documents and `perf_compression` enforces at bench time; loosening
/// one is an explicit, reviewable act.
pub fn budgets() -> Vec<(Codec, f64, f64)> {
    vec![
        // (codec, spectra relative-L2 budget, PDF KL budget)
        (Codec::F16, 1e-3, 1e-3),
        (Codec::Bf16, 2e-2, 2e-2),
        (Codec::U8Block, 2e-2, 2e-2),
        (Codec::resim_default(), 0.35, 0.10),
    ]
}

#[test]
fn every_codec_stays_within_its_accuracy_budget() {
    let snap = synth_snapshot();
    assert!(
        snap.names.len() >= 4,
        "anisotropic synth should carry u, v, w, r"
    );
    let set = full_set(&snap);
    for (codec, spec_budget, kl_budget) in budgets() {
        let (spec, kl) = codec_errors(&snap, &set, codec);
        println!(
            "{:8} spectra {spec:.3e} (budget {spec_budget:.1e})  kl {kl:.3e} (budget {kl_budget:.1e})",
            codec.name()
        );
        assert!(
            spec <= spec_budget,
            "{} spectra error {spec:.3e} exceeds budget {spec_budget:.1e}",
            codec.name()
        );
        assert!(
            kl <= kl_budget,
            "{} PDF KL {kl:.3e} exceeds budget {kl_budget:.1e}",
            codec.name()
        );
    }
}

#[test]
fn identity_is_bit_exact() {
    let snap = synth_snapshot();
    let set = full_set(&snap);
    let bytes = encode_shard(std::slice::from_ref(&set), Codec::Identity);
    let back = decode_shard(&bytes).expect("decode");
    assert_eq!(back.len(), 1);
    let a: Vec<u64> = set.features.data.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u64> = back[0].features.data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
    assert_eq!(back[0].indices, set.indices);
}

#[test]
fn resim_budget_holds_on_cube_sized_sets() {
    // The store actually holds 16^3 cubes, not whole snapshots; the budget
    // must hold at that granularity too (smaller cubes mean proportionally
    // more exact boundary rows, so this is the easier case — but it is the
    // case the serving plane exercises).
    let snap = synth_snapshot();
    let e = 16usize;
    let names = snap.names.clone();
    let vidx = snap.var_indices(&names);
    let mut features = FeatureMatrix::with_capacity(names.clone(), e * e * e);
    let mut indices = Vec::with_capacity(e * e * e);
    let mut row = vec![0.0; vidx.len()];
    for x in 0..e {
        for y in 0..e {
            for z in 0..e {
                let i = snap.grid.idx(x, y, z);
                snap.gather_point(&vidx, i, &mut row);
                features.push_row(&row);
                indices.push(i);
            }
        }
    }
    let set = SampleSet::new(features, indices, snap.time, 0);
    let bytes = encode_shard(std::slice::from_ref(&set), Codec::resim_default());
    let back = decode_shard(&bytes).expect("decode");
    let orig = set.features.column(0);
    let recon = back[0].features.column(0);
    let kl = pdf_kl(&orig, &recon);
    assert!(kl <= 0.10, "cube-granularity resim KL {kl:.3e}");
    // Pointwise sanity: reconstruction stays within the true value range
    // (maximum principle) and is not degenerate.
    let lo = orig.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = orig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for &v in &recon {
        assert!(v >= lo - 1e-2 && v <= hi + 1e-2, "{v} outside [{lo}, {hi}]");
    }
}
