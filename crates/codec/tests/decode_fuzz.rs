//! Robustness property tests for the SKLQ codec decoders.
//!
//! Shard bytes cross disks and sockets before [`sickle_codec::decode_shard`]
//! sees them, so hostile input is a normal operating condition: truncation
//! and bit flips must surface as `io::Error`, never a panic or an abort,
//! and no count read from the wire may drive an unbounded allocation or an
//! unbounded amount of solver work (the resim codec runs a solver on the
//! read path — a flipped sweep count must not become a CPU sink).

use proptest::prelude::*;
use sickle_codec::{decode_shard, encode_shard, shard_codec_name, Codec};
use sickle_field::points::{FeatureMatrix, SampleSet};

fn all_codecs() -> Vec<Codec> {
    vec![
        Codec::Identity,
        Codec::F16,
        Codec::Bf16,
        Codec::U8Block,
        Codec::resim_default(),
    ]
}

fn codec_by_index(i: usize) -> Codec {
    let all = all_codecs();
    all[i % all.len()]
}

/// A mix of a raster cube (affine indices) and a scattered set (list
/// indices), covering both header encodings.
fn shard_bytes(e: usize, scatter: usize, codec: Codec) -> Vec<u8> {
    let n = e * e * e;
    let names: Vec<String> = vec!["u".into(), "q".into()];
    let cube_indices: Vec<usize> = (0..n)
        .map(|r| {
            let z = r % e;
            let y = (r / e) % e;
            let x = r / (e * e);
            (x * 64 + y) * 64 + z
        })
        .collect();
    let cube = SampleSet::new(
        FeatureMatrix::new(
            names.clone(),
            (0..n * 2).map(|i| (i as f64 * 0.13).sin()).collect(),
        ),
        cube_indices,
        0.5,
        1,
    );
    let sparse = SampleSet::new(
        FeatureMatrix::new(
            names,
            (0..scatter * 2).map(|i| (i as f64 * 0.31).cos()).collect(),
        ),
        (0..scatter).map(|i| (i * 7919) % 100_000).collect(),
        0.5,
        1,
    );
    encode_shard(&[cube, sparse], codec).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_shard_is_error_not_panic(
        (e, scatter, ci, frac) in (2usize..5, 1usize..30, 0usize..5, 0.0f64..1.0)
    ) {
        let bytes = shard_bytes(e, scatter, codec_by_index(ci));
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_shard(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflipped_shard_never_panics(
        (e, scatter, ci, pos_frac, bit) in
            (2usize..5, 1usize..30, 0usize..5, 0.0f64..1.0, 0u8..8)
    ) {
        let mut bytes = shard_bytes(e, scatter, codec_by_index(ci));
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip in a value payload legitimately decodes to different
        // numbers; a flip in any count, tag, or dimension must surface as
        // io::Error — either way the decoder returns, never panics.
        let _ = decode_shard(&bytes);
        let _ = shard_codec_name(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = decode_shard(&data);
        let _ = shard_codec_name(&data);
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        (magic_sel, data) in (0u8..2, proptest::collection::vec(0u8..=255, 0..512))
    ) {
        let mut bytes = if magic_sel == 0 { b"SKLQ".to_vec() } else { b"SKLH".to_vec() };
        bytes.extend_from_slice(&data);
        let _ = decode_shard(&bytes);
        let _ = shard_codec_name(&bytes);
    }
}

/// Directed checks for the fields a fuzzer takes longest to hit.
#[test]
fn hostile_fields_are_errors_not_aborts() {
    let bytes = shard_bytes(3, 10, Codec::F16);

    // Unknown codec tag (byte 8) must be an error, not a panic.
    let mut bad = bytes.clone();
    bad[8] = 250;
    assert!(decode_shard(&bad).is_err());
    assert!(shard_codec_name(&bad).is_err());

    // Set count far beyond the payload (bytes 9..17).
    let mut bad = bytes.clone();
    bad[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_shard(&bad).is_err());

    // Unsupported container version.
    let mut bad = bytes.clone();
    bad[4..8].copy_from_slice(&77u32.to_le_bytes());
    assert!(decode_shard(&bad).is_err());

    // Blob length prefix larger than the remaining bytes.
    let mut bad = bytes;
    bad[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_shard(&bad).is_err());
}
