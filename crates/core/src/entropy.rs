//! Entropy machinery shared by both MaxEnt phases (paper §4.1, Eqs. 1–2).
//!
//! Given a clustering of items (points or hypercubes) and a scalar cluster
//! variable, we estimate each cluster's probability distribution `P(C_i)` by
//! binning, form the relative-entropy adjacency matrix
//! `A_ij = Σ P(C_i) log(P(C_i)/P(C_j))` (Eq. 2), and reduce it to node
//! strengths — the row sums. A cluster whose distribution diverges strongly
//! from the others carries rare, information-rich structure; sampling weight
//! proportional to strength preferentially retains those regions (the tails
//! in the paper's Fig. 5).

use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;
use sickle_field::stats::{kl_divergence, shannon_entropy};
use sickle_field::Histogram;
use sickle_simd::Kernel;

/// Points per parallel chunk in [`ClusterDistributions::estimate`].
const ESTIMATE_CHUNK: usize = 8192;

/// Per-cluster PDFs of a scalar variable over a common binning.
#[derive(Clone, Debug)]
pub struct ClusterDistributions {
    /// One PMF per cluster, all over the same `bins` bins.
    pub pmfs: Vec<Vec<f64>>,
    /// Number of members per cluster.
    pub sizes: Vec<usize>,
}

impl ClusterDistributions {
    /// Estimates per-cluster PMFs of `values` (parallel to `labels`) using a
    /// common `bins`-bin histogram over the global value range.
    ///
    /// The bin fill is rayon-parallel over fixed-size point chunks; each
    /// chunk folds into private `k × bins` integer counts and the partials
    /// are merged in chunk order, so the result is bit-identical to the
    /// serial loop regardless of thread count.
    ///
    /// # Panics
    /// Panics if `values.len() != labels.len()`, `k == 0`, or any label is
    /// `>= k`.
    pub fn estimate(values: &[f64], labels: &[usize], k: usize, bins: usize) -> Self {
        Self::estimate_with(values, labels, k, bins, sickle_simd::kernel())
    }

    /// [`Self::estimate`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch). The optimized path
    /// vectorizes the range scan and the bin-index computation; both are
    /// bit-identical to the scalar formulations, and the chunk-order merge
    /// is unchanged, so the result is bit-identical across kernels.
    #[doc(hidden)]
    pub fn estimate_with(
        values: &[f64],
        labels: &[usize],
        k: usize,
        bins: usize,
        kernel: Kernel,
    ) -> Self {
        assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
        assert!(k > 0, "need at least one cluster");
        // Validate labels *before* the parallel region: a panic inside a
        // worker would hang the pool, and validating here keeps the hot
        // chunk loop assert-free.
        for &l in labels {
            assert!(l < k, "label {l} out of range for k = {k}");
        }
        // Global range for a shared binning. NaN-only (or empty) input falls
        // back to the unit range; `Histogram::new` widens a degenerate
        // min == max range, so binning is always well defined.
        let (lo, hi) = match kernel {
            Kernel::Naive => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &v in values {
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if lo.is_finite() {
                    (lo, hi)
                } else {
                    (0.0, 1.0)
                }
            }
            Kernel::Optimized => sickle_simd::minmax_finite(values).unwrap_or((0.0, 1.0)),
        };
        // The template carries the (possibly widened) bounds so `bin_of`
        // matches `Histogram::push` semantics exactly.
        let template = Histogram::new(lo, hi, bins);
        let nchunks = values.len().div_ceil(ESTIMATE_CHUNK).max(1);
        let partials: Vec<(Vec<u64>, Vec<usize>)> = (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let s = c * ESTIMATE_CHUNK;
                let e = (s + ESTIMATE_CHUNK).min(values.len());
                let mut counts = vec![0u64; k * bins];
                let mut sizes = vec![0usize; k];
                match kernel {
                    Kernel::Naive => {
                        for (&v, &l) in values[s..e].iter().zip(&labels[s..e]) {
                            // Sizes count every member; bins only finite
                            // values — the same split `push` makes.
                            sizes[l] += 1;
                            if v.is_finite() {
                                counts[l * bins + template.bin_of(v)] += 1;
                            }
                        }
                    }
                    Kernel::Optimized => {
                        // Vectorized binning; the u32::MAX sentinel marks
                        // non-finite values, which count toward sizes but
                        // not bins — the same split the scalar loop makes.
                        let mut idx = vec![0u32; e - s];
                        sickle_simd::bin_indices(
                            &values[s..e],
                            template.lo,
                            template.hi,
                            bins,
                            &mut idx,
                        );
                        for (&b, &l) in idx.iter().zip(&labels[s..e]) {
                            sizes[l] += 1;
                            if b != u32::MAX {
                                counts[l * bins + b as usize] += 1;
                            }
                        }
                    }
                }
                (counts, sizes)
            })
            .collect();
        let mut counts = vec![0u64; k * bins];
        let mut sizes = vec![0usize; k];
        for (pc, ps) in &partials {
            for (c, &p) in counts.iter_mut().zip(pc) {
                *c += p;
            }
            for (s, &p) in sizes.iter_mut().zip(ps) {
                *s += p;
            }
        }
        let pmfs = (0..k)
            .map(|i| {
                let row = counts[i * bins..(i + 1) * bins].to_vec();
                Histogram::from_counts(template.lo, template.hi, row).pmf()
            })
            .collect();
        ClusterDistributions { pmfs, sizes }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.pmfs.len()
    }

    /// True if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.pmfs.is_empty()
    }

    /// Shannon entropy of each cluster's PMF.
    pub fn entropies(&self) -> Vec<f64> {
        self.pmfs.iter().map(|p| shannon_entropy(p)).collect()
    }
}

/// The KL adjacency matrix of Eq. 2: `A[i][j] = D(P_i ‖ P_j)`, with
/// `A[i][i] = 0`.
#[allow(clippy::needless_range_loop)] // i/j index two parallel structures
pub fn adjacency_matrix(dists: &ClusterDistributions) -> Vec<Vec<f64>> {
    let k = dists.len();
    let mut a = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                a[i][j] = kl_divergence(&dists.pmfs[i], &dists.pmfs[j]);
            }
        }
    }
    a
}

/// Node strengths: row sums of the adjacency matrix. A high-strength node's
/// distribution diverges most from the rest of the dataset.
pub fn node_strengths(adjacency: &[Vec<f64>]) -> Vec<f64> {
    adjacency.iter().map(|row| row.iter().sum()).collect()
}

/// Converts strengths to sampling weights with a temperature exponent:
/// `w_i ∝ strength_i^τ` (τ = 1 reproduces the paper; τ = 0 degrades to
/// uniform — the ablation knob in DESIGN.md §5). Degenerate all-zero
/// strengths fall back to uniform weights.
pub fn strength_weights(strengths: &[f64], temperature: f64) -> Vec<f64> {
    let raw: Vec<f64> = strengths
        .iter()
        .map(|&s| if s > 0.0 { s.powf(temperature) } else { 0.0 })
        .collect();
    let total: f64 = raw.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return vec![1.0 / strengths.len() as f64; strengths.len()];
    }
    raw.iter().map(|&w| w / total).collect()
}

/// Weighted sampling of `count` distinct indices in `0..weights.len()`
/// without replacement (sequential weighted reservoir via repeated draws with
/// removal — exact, deterministic under the RNG).
///
/// # Panics
/// Panics if `count > weights.len()`.
pub fn weighted_sample_without_replacement(
    weights: &[f64],
    count: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(
        count <= weights.len(),
        "cannot draw {count} from {}",
        weights.len()
    );
    let mut w: Vec<f64> = weights.iter().map(|&x| x.max(0.0)).collect();
    let mut taken = vec![false; w.len()];
    let mut picked = Vec::with_capacity(count);
    for _ in 0..count {
        let total: f64 = w.iter().sum();
        let idx = if total <= 0.0 {
            // Remaining weight exhausted (zero-weight items left): take the
            // first unpicked index deterministically.
            taken
                .iter()
                .position(|&t| !t)
                .expect("count <= len guarantees a free slot")
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = None;
            for (i, &wi) in w.iter().enumerate() {
                if wi <= 0.0 {
                    continue;
                }
                target -= wi;
                if target <= 0.0 {
                    pick = Some(i);
                    break;
                }
            }
            // Rounding may leave target slightly positive after the loop;
            // fall back to the last positive-weight index.
            pick.unwrap_or_else(|| {
                w.iter()
                    .rposition(|&wi| wi > 0.0)
                    .expect("total > 0 implies a positive weight")
            })
        };
        picked.push(idx);
        taken[idx] = true;
        w[idx] = 0.0;
    }
    picked
}

/// Allocates an integer `budget` across clusters proportionally to
/// `weights`, clamped by per-cluster capacities; leftover budget is
/// redistributed greedily to clusters with remaining capacity in weight
/// order. Returns per-cluster allocations summing to
/// `min(budget, Σ capacities)`.
pub fn allocate_budget(weights: &[f64], capacities: &[usize], budget: usize) -> Vec<usize> {
    assert_eq!(
        weights.len(),
        capacities.len(),
        "weights/capacities length mismatch"
    );
    let k = weights.len();
    let mut alloc = vec![0usize; k];
    if k == 0 {
        return alloc;
    }
    let wsum: f64 = weights.iter().sum();
    let weights: Vec<f64> = if wsum <= 0.0 {
        vec![1.0 / k as f64; k]
    } else {
        weights.iter().map(|&w| w / wsum).collect()
    };
    // First pass: floor of the proportional share, capped by capacity.
    for i in 0..k {
        alloc[i] = ((budget as f64 * weights[i]).floor() as usize).min(capacities[i]);
    }
    // Redistribute the remainder by descending weight among non-full.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total_cap: usize = capacities.iter().sum();
    let target = budget.min(total_cap);
    let mut assigned: usize = alloc.iter().sum();
    'outer: while assigned < target {
        let mut progressed = false;
        for &i in &order {
            if assigned >= target {
                break 'outer;
            }
            if alloc[i] < capacities[i] {
                alloc[i] += 1;
                assigned += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cluster_distributions_respect_labels() {
        let values = vec![0.0, 0.1, 0.9, 1.0];
        let labels = vec![0, 0, 1, 1];
        let d = ClusterDistributions::estimate(&values, &labels, 2, 10);
        assert_eq!(d.sizes, vec![2, 2]);
        // Cluster 0 mass in low bins, cluster 1 in high bins.
        let low0: f64 = d.pmfs[0][..5].iter().sum();
        let high1: f64 = d.pmfs[1][5..].iter().sum();
        assert!((low0 - 1.0).abs() < 1e-12);
        assert!((high1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_kernels_bit_identical() {
        // Enough points to span several ESTIMATE_CHUNKs, with non-finite
        // values sprinkled in: PMFs and sizes must agree bit for bit.
        let mut values: Vec<f64> = (0..20000).map(|i| (i as f64 * 0.013).sin() * 5.0).collect();
        values[7] = f64::NAN;
        values[100] = f64::INFINITY;
        values[9001] = f64::NEG_INFINITY;
        let labels: Vec<usize> = (0..values.len()).map(|i| i % 5).collect();
        let a = ClusterDistributions::estimate_with(&values, &labels, 5, 64, Kernel::Naive);
        let b = ClusterDistributions::estimate_with(&values, &labels, 5, 64, Kernel::Optimized);
        assert_eq!(a.sizes, b.sizes);
        for (pa, pb) in a.pmfs.iter().zip(&b.pmfs) {
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn estimate_degenerate_range_is_guarded() {
        // min == max: Histogram::new widens the bounds, everything lands in
        // a single bin, and both kernels agree.
        let values = vec![2.5; 64];
        let labels = vec![0usize; 64];
        for kernel in [Kernel::Naive, Kernel::Optimized] {
            let d = ClusterDistributions::estimate_with(&values, &labels, 1, 8, kernel);
            assert_eq!(d.sizes, vec![64]);
            assert!((d.pmfs[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(d.pmfs[0].iter().filter(|&&p| p > 0.0).count(), 1);
        }
    }

    #[test]
    fn estimate_all_nan_input_is_guarded() {
        // No finite value: the range falls back to [0, 1]; sizes still count
        // every member, and the empty histogram degrades to the uniform
        // maximum-entropy prior.
        let nan = vec![f64::NAN; 10];
        let labels = vec![0usize; 10];
        for kernel in [Kernel::Naive, Kernel::Optimized] {
            let d = ClusterDistributions::estimate_with(&nan, &labels, 1, 4, kernel);
            assert_eq!(d.sizes, vec![10]);
            assert!(
                d.pmfs[0].iter().all(|&p| (p - 0.25).abs() < 1e-12),
                "{:?}",
                d.pmfs[0]
            );
        }
    }

    #[test]
    fn adjacency_zero_diagonal_nonnegative() {
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let d = ClusterDistributions::estimate(&values, &labels, 3, 10);
        let a = adjacency_matrix(&d);
        for (i, row) in a.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!(v >= -1e-12, "A[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn outlier_cluster_has_highest_strength() {
        // Two near-identical clusters and one far-away one: the outlier's
        // distribution diverges most -> highest node strength.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            values.push((i % 10) as f64 * 0.01);
            labels.push(0);
            values.push((i % 10) as f64 * 0.01 + 0.005);
            labels.push(1);
            values.push(10.0 + (i % 10) as f64 * 0.01);
            labels.push(2);
        }
        let d = ClusterDistributions::estimate(&values, &labels, 3, 50);
        let s = node_strengths(&adjacency_matrix(&d));
        assert!(s[2] > s[0] && s[2] > s[1], "strengths {s:?}");
    }

    #[test]
    fn strength_weights_normalize_and_temper() {
        let s = vec![1.0, 3.0];
        let w1 = strength_weights(&s, 1.0);
        assert!((w1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w1[1] - 0.75).abs() < 1e-12);
        let w0 = strength_weights(&s, 0.0);
        assert!((w0[0] - 0.5).abs() < 1e-12);
        let wz = strength_weights(&[0.0, 0.0], 1.0);
        assert_eq!(wz, vec![0.5, 0.5]);
    }

    #[test]
    fn weighted_sampling_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let picks = weighted_sample_without_replacement(&w, 5, &mut rng);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_weights() {
        let mut heavy_first = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = vec![0.01, 0.01, 10.0, 0.01];
            let p = weighted_sample_without_replacement(&w, 1, &mut rng);
            if p[0] == 2 {
                heavy_first += 1;
            }
        }
        assert!(heavy_first > 180, "heavy index drawn {heavy_first}/200");
    }

    #[test]
    fn budget_allocation_sums_and_respects_caps() {
        let w = vec![0.7, 0.2, 0.1];
        let caps = vec![100, 100, 2];
        let a = allocate_budget(&w, &caps, 50);
        assert_eq!(a.iter().sum::<usize>(), 50);
        assert!(a[2] <= 2);
        assert!(a[0] > a[1]);
    }

    #[test]
    fn budget_allocation_clamps_to_capacity() {
        let a = allocate_budget(&[0.5, 0.5], &[3, 4], 100);
        assert_eq!(a, vec![3, 4]);
    }

    #[test]
    fn budget_allocation_zero_weights_uniform() {
        let a = allocate_budget(&[0.0, 0.0, 0.0], &[10, 10, 10], 9);
        assert_eq!(a.iter().sum::<usize>(), 9);
        assert!(a.iter().all(|&x| x == 3));
    }

    #[test]
    fn entropies_ordering() {
        let values = vec![0.0, 0.0, 0.0, 0.0, 0.1, 0.5, 0.9, 1.0];
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let d = ClusterDistributions::estimate(&values, &labels, 2, 10);
        let e = d.entropies();
        assert!(
            e[1] > e[0],
            "spread cluster should have higher entropy: {e:?}"
        );
    }
}
