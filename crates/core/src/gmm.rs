//! Gaussian-mixture density estimation and the flow-based UIPS variant.
//!
//! Hassanaly et al.'s UIPS estimates the phase-space density with either
//! binning or *iterative normalizing flows*; the paper chose binning "due
//! to implementation simplicity". This module supplies the smooth-density
//! alternative: a diagonal-covariance Gaussian mixture fitted by EM
//! (k-means initialized), and [`UipsGmmSampler`], which accepts points with
//! probability ∝ 1/density under the fitted mixture — the same continuous
//! acceptance rule a flow would drive, without the flow.

use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;
use sickle_field::FeatureMatrix;

use crate::kmeans::{KMeans, KMeansConfig};
use crate::samplers::PointSampler;

/// A diagonal-covariance Gaussian mixture model.
#[derive(Clone, Debug)]
pub struct Gmm {
    /// Component means, row-major `k x d`.
    pub means: Vec<f64>,
    /// Component variances (diagonal), row-major `k x d`.
    pub vars: Vec<f64>,
    /// Mixing weights (sum to 1).
    pub weights: Vec<f64>,
    /// Feature dimension.
    pub dim: usize,
    /// Component count.
    pub k: usize,
}

const VAR_FLOOR: f64 = 1e-9;

impl Gmm {
    /// Fits a `k`-component mixture to row-major `data` by EM, initialized
    /// from mini-batch k-means. `iters` EM sweeps.
    ///
    /// # Panics
    /// Panics on empty data or zero dimension.
    pub fn fit(data: &[f64], dim: usize, k: usize, iters: usize, seed: u64) -> Self {
        assert!(dim > 0 && !data.is_empty(), "degenerate GMM fit");
        let n = data.len() / dim;
        let km = KMeans::fit(
            data,
            dim,
            &KMeansConfig {
                k,
                batch_size: 1024,
                iterations: 20,
                seed,
            },
        );
        let k = km.k;
        let labels = km.assign(data);
        // Initialize from the k-means partition.
        let means = km.centroids.clone();
        let mut vars = vec![0.0; k * dim];
        let mut weights = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            for j in 0..dim {
                let d = data[i * dim + j] - means[l * dim + j];
                vars[l * dim + j] += d * d;
            }
        }
        for c in 0..k {
            weights[c] = counts[c] as f64 / n as f64;
            for j in 0..dim {
                vars[c * dim + j] = (vars[c * dim + j] / counts[c].max(1) as f64).max(VAR_FLOOR);
            }
        }
        let mut gmm = Gmm {
            means,
            vars,
            weights,
            dim,
            k,
        };

        // EM sweeps.
        for _ in 0..iters {
            // E-step: responsibilities (n x k), computed in parallel rows.
            let resp: Vec<f64> = (0..n)
                .into_par_iter()
                .flat_map_iter(|i| {
                    let row = &data[i * dim..(i + 1) * dim];
                    let mut lp: Vec<f64> = (0..gmm.k)
                        .map(|c| gmm.weights[c].max(1e-300).ln() + gmm.log_component(c, row))
                        .collect();
                    let m = lp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut z = 0.0;
                    for v in lp.iter_mut() {
                        *v = (*v - m).exp();
                        z += *v;
                    }
                    lp.into_iter().map(move |v| v / z)
                })
                .collect();
            // M-step.
            let mut nk = vec![0.0; gmm.k];
            let mut mu = vec![0.0; gmm.k * dim];
            for i in 0..n {
                for c in 0..gmm.k {
                    let r = resp[i * gmm.k + c];
                    nk[c] += r;
                    for j in 0..dim {
                        mu[c * dim + j] += r * data[i * dim + j];
                    }
                }
            }
            for c in 0..gmm.k {
                if nk[c] > 1e-12 {
                    for j in 0..dim {
                        mu[c * dim + j] /= nk[c];
                    }
                }
            }
            let mut var = vec![0.0; gmm.k * dim];
            for i in 0..n {
                for c in 0..gmm.k {
                    let r = resp[i * gmm.k + c];
                    for j in 0..dim {
                        let d = data[i * dim + j] - mu[c * dim + j];
                        var[c * dim + j] += r * d * d;
                    }
                }
            }
            for c in 0..gmm.k {
                gmm.weights[c] = nk[c] / n as f64;
                for j in 0..dim {
                    if nk[c] > 1e-12 {
                        gmm.vars[c * dim + j] = (var[c * dim + j] / nk[c]).max(VAR_FLOOR);
                        gmm.means[c * dim + j] = mu[c * dim + j];
                    }
                }
            }
        }
        gmm
    }

    /// Log-density of one component (diagonal Gaussian) at `row`.
    #[allow(clippy::needless_range_loop)] // j indexes two strided buffers
    fn log_component(&self, c: usize, row: &[f64]) -> f64 {
        let mut lp = 0.0;
        for j in 0..self.dim {
            let m = self.means[c * self.dim + j];
            let v = self.vars[c * self.dim + j];
            let d = row[j] - m;
            lp += -0.5 * (d * d / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        lp
    }

    /// Mixture density at `row`.
    pub fn density(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        let mut lps: Vec<f64> = (0..self.k)
            .map(|c| self.weights[c].max(1e-300).ln() + self.log_component(c, row))
            .collect();
        let m = lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s: f64 = lps.iter_mut().map(|v| (*v - m).exp()).sum();
        (m + s.ln()).exp()
    }

    /// Mean log-likelihood of row-major `data` under the mixture.
    pub fn mean_log_likelihood(&self, data: &[f64]) -> f64 {
        let n = data.len() / self.dim;
        (0..n)
            .into_par_iter()
            .map(|i| {
                self.density(&data[i * self.dim..(i + 1) * self.dim])
                    .max(1e-300)
                    .ln()
            })
            .sum::<f64>()
            / n as f64
    }
}

/// UIPS with a GMM density estimator instead of binning (the "normalizing
/// flows" branch of Hassanaly et al., with the flow replaced by a smooth
/// parametric density — see DESIGN.md).
#[derive(Clone, Copy, Debug)]
pub struct UipsGmmSampler {
    /// Mixture components.
    pub components: usize,
    /// EM iterations.
    pub em_iters: usize,
}

impl Default for UipsGmmSampler {
    fn default() -> Self {
        UipsGmmSampler {
            components: 8,
            em_iters: 10,
        }
    }
}

impl PointSampler for UipsGmmSampler {
    fn name(&self) -> &'static str {
        "uips-gmm"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }
        let gmm = Gmm::fit(
            &features.data,
            features.dim(),
            self.components,
            self.em_iters,
            rng.gen(),
        );
        let rho: Vec<f64> = (0..n)
            .map(|i| gmm.density(features.row(i)).max(1e-300))
            .collect();
        // Solve for C with sum min(1, C/rho) = budget, then draw an
        // unequal-probability sample without replacement via A-Res keys
        // (Efraimidis–Spirakis): key_i = u^(1/p_i); take the largest keys.
        let c = crate::uips::solve_threshold(&rho, budget);
        let mut keyed: Vec<(f64, usize)> = rho
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let p = (c / r).clamp(1e-12, 1.0);
                let u: f64 = rng.gen::<f64>().max(1e-15);
                (u.powf(1.0 / p), i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        keyed.truncate(budget);
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::validate_selection;

    fn two_blob_data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    (i % 97) as f64 * 0.001
                } else {
                    5.0 + (i % 89) as f64 * 0.001
                }
            })
            .collect()
    }

    #[test]
    fn fit_recovers_two_components() {
        let data = two_blob_data(1000);
        let gmm = Gmm::fit(&data, 1, 2, 15, 1);
        let mut means: Vec<f64> = (0..gmm.k).map(|c| gmm.means[c]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 0.048).abs() < 0.05, "mean0 {}", means[0]);
        assert!((means[1] - 5.044).abs() < 0.05, "mean1 {}", means[1]);
        assert!((gmm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_higher_in_dense_region() {
        let data = two_blob_data(1000);
        let gmm = Gmm::fit(&data, 1, 2, 15, 1);
        assert!(gmm.density(&[0.05]) > 10.0 * gmm.density(&[2.5]));
    }

    #[test]
    fn em_improves_likelihood() {
        let data = two_blob_data(600);
        let g0 = Gmm::fit(&data, 1, 2, 0, 3);
        let g10 = Gmm::fit(&data, 1, 2, 10, 3);
        assert!(g10.mean_log_likelihood(&data) >= g0.mean_log_likelihood(&data) - 1e-6);
    }

    #[test]
    fn sampler_contract_and_flattening() {
        use rand::SeedableRng;
        let data: Vec<f64> = (0..2000usize)
            .map(|i| {
                if i % 20 == 0 {
                    (i.wrapping_mul(7919) % 1000) as f64 * 0.01
                } else {
                    5.0
                }
            })
            .collect();
        let features = FeatureMatrix::new(vec!["q".into()], data);
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = UipsGmmSampler::default();
        let picked = sampler.select(&features, 0, 150, &mut rng);
        validate_selection(&picked, 2000, 150);
        assert_eq!(picked.len(), 150);
        // Sparse spread points (2% of data) must be over-represented.
        let sparse = picked
            .iter()
            .filter(|&&i| (features.row(i)[0] - 5.0).abs() > 0.5)
            .count();
        assert!(sparse > 30, "sparse kept {sparse}");
    }

    #[test]
    fn multivariate_fit_runs() {
        let mut data = Vec::new();
        for i in 0..400 {
            let b = (i % 2) as f64 * 4.0;
            data.push(b + (i % 13) as f64 * 0.01);
            data.push(-b + (i % 7) as f64 * 0.01);
        }
        let gmm = Gmm::fit(&data, 2, 3, 8, 2);
        assert_eq!(gmm.dim, 2);
        assert!(gmm.density(&[0.0, 0.0]).is_finite());
        assert!(gmm.mean_log_likelihood(&data).is_finite());
    }
}
