//! Phase-1 hypercube selection (paper §4.1, "Hmaxent" / "Hrandom").
//!
//! The domain is tiled into hypercubes (32³ in the paper); this module
//! decides *which* cubes survive. `Hrandom` draws uniformly. `Hmaxent`
//! summarizes each cube by statistics of the cluster variable, clusters the
//! summaries with mini-batch k-means, estimates per-cluster PDFs, builds the
//! KL adjacency matrix and node strengths (Eqs. 1–2), and draws cubes with
//! probability proportional to their cluster's strength — cubes that live in
//! distributionally rare regions of the flow are preferentially retained.

use rand::rngs::StdRng;
use rand::seq::index::sample as uniform_sample;
use rand::Rng;
use rayon::prelude::*;
use sickle_field::{Snapshot, SummaryStats, Tiling};

use crate::entropy::{
    adjacency_matrix, node_strengths, strength_weights, weighted_sample_without_replacement,
    ClusterDistributions,
};
use crate::kmeans::{KMeans, KMeansConfig};

/// Strategy for choosing which hypercubes to keep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HypercubeSelector {
    /// Uniform random cube selection (`Hrandom`).
    Random,
    /// Maximum-entropy weighted selection (`Hmaxent`).
    MaxEnt {
        /// Number of k-means clusters over cube summaries.
        num_clusters: usize,
        /// Histogram bins for per-cluster PDFs.
        bins: usize,
        /// Strength temperature τ (1 = paper behaviour).
        temperature: f64,
    },
}

impl HypercubeSelector {
    /// The default MaxEnt selector used by the paper's configs.
    pub fn maxent_default() -> Self {
        HypercubeSelector::MaxEnt {
            num_clusters: 8,
            bins: 64,
            temperature: 1.0,
        }
    }

    /// Config-file name (`"random"` / `"maxent"`).
    pub fn name(&self) -> &'static str {
        match self {
            HypercubeSelector::Random => "random",
            HypercubeSelector::MaxEnt { .. } => "maxent",
        }
    }

    /// Per-cube summary rows `[mean, std, min, max]` of `cluster_var`,
    /// computed in parallel — the feature space the MaxEnt path clusters.
    pub fn cube_summaries(tiling: &Tiling, snap: &Snapshot, cluster_var: &str) -> Vec<f64> {
        let data = snap.expect_var(cluster_var);
        let grid = tiling.grid;
        (0..tiling.len())
            .into_par_iter()
            .flat_map_iter(|t| {
                let cube = tiling.tile(t);
                let mut s = SummaryStats::new();
                for i in cube.point_indices(&grid) {
                    s.push(data[i]);
                }
                [s.mean(), s.std(), s.min, s.max]
            })
            .collect()
    }

    /// Selects `count` distinct tile ids from the tiling.
    ///
    /// # Panics
    /// Panics if `count > tiling.len()`.
    #[allow(clippy::needless_range_loop)] // t indexes tiles and labels in lockstep
    pub fn select(
        &self,
        tiling: &Tiling,
        snap: &Snapshot,
        cluster_var: &str,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let total = tiling.len();
        assert!(
            count <= total,
            "cannot select {count} of {total} hypercubes"
        );
        if count == total {
            return (0..total).collect();
        }
        match *self {
            HypercubeSelector::Random => uniform_sample(rng, total, count).into_vec(),
            HypercubeSelector::MaxEnt {
                num_clusters,
                bins,
                temperature,
            } => {
                let summaries = Self::cube_summaries(tiling, snap, cluster_var);
                let km = KMeans::fit(
                    &summaries,
                    4,
                    &KMeansConfig {
                        k: num_clusters,
                        batch_size: 1024,
                        iterations: 30,
                        seed: rng.gen(),
                    },
                );
                let labels = km.assign(&summaries);
                // Cluster PDFs over the *raw point values* of the cluster
                // variable, pooled across each cluster's member cubes — the
                // paper's "computing probability distributions" step. This
                // captures shape differences (e.g. a high-variance cube with
                // zero mean) that cube-level summaries alone would miss.
                let data = snap.expect_var(cluster_var);
                let grid = tiling.grid;
                let mut point_values: Vec<f64> = Vec::new();
                let mut point_labels: Vec<usize> = Vec::new();
                for t in 0..total {
                    for i in tiling.tile(t).point_indices(&grid) {
                        point_values.push(data[i]);
                        point_labels.push(labels[t]);
                    }
                }
                let dists =
                    ClusterDistributions::estimate(&point_values, &point_labels, km.k, bins);
                let strengths = node_strengths(&adjacency_matrix(&dists));
                let cluster_w = strength_weights(&strengths, temperature);
                // Cube weight: its cluster's weight shared across member
                // cubes, so a rare 2-cube cluster outweighs a common 50-cube
                // one per cube.
                let mut cubes_per_cluster = vec![0usize; km.k];
                for &l in &labels {
                    cubes_per_cluster[l] += 1;
                }
                let cube_w: Vec<f64> = labels
                    .iter()
                    .map(|&l| cluster_w[l] / cubes_per_cluster[l].max(1) as f64)
                    .collect();
                weighted_sample_without_replacement(&cube_w, count, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sickle_field::{Grid3, Tiling};

    /// A field that is zero everywhere except an extreme "hot" corner
    /// occupying exactly one tile.
    fn hotspot_snapshot(n: usize, tile: usize) -> (Snapshot, Tiling) {
        let grid = Grid3::new(n, n, n, 1.0, 1.0, 1.0);
        let mut q = vec![0.0; grid.len()];
        for x in 0..tile {
            for y in 0..tile {
                for z in 0..tile {
                    // Alternating extreme values -> high variance + outlier
                    // distribution in the hot cube.
                    q[grid.idx(x, y, z)] = if (x + y + z) % 2 == 0 { 50.0 } else { -50.0 };
                }
            }
        }
        // Mild noise elsewhere so clustering has something to chew on.
        for (i, v) in q.iter_mut().enumerate() {
            if *v == 0.0 {
                *v = ((i * 2654435761) % 97) as f64 * 1e-4;
            }
        }
        let snap = Snapshot::new(grid, 0.0).with_var("q", q);
        let tiling = Tiling::cubic(grid, tile);
        (snap, tiling)
    }

    #[test]
    fn random_selects_distinct_cubes() {
        let (snap, tiling) = hotspot_snapshot(16, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = HypercubeSelector::Random.select(&tiling, &snap, "q", 10, &mut rng);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&t| t < tiling.len()));
    }

    #[test]
    fn maxent_prefers_the_hotspot_cube() {
        let (snap, tiling) = hotspot_snapshot(16, 4);
        // Hot cube is tile (0,0,0) = id 0. Over many seeds, MaxEnt should
        // include it far more often than the 4/64 random baseline.
        let mut hits = 0;
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = HypercubeSelector::maxent_default().select(&tiling, &snap, "q", 4, &mut rng);
            if sel.contains(&0) {
                hits += 1;
            }
        }
        assert!(hits >= 24, "hotspot cube selected only {hits}/30 times");
    }

    #[test]
    fn selecting_all_returns_identity() {
        let (snap, tiling) = hotspot_snapshot(8, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let sel =
            HypercubeSelector::maxent_default().select(&tiling, &snap, "q", tiling.len(), &mut rng);
        assert_eq!(sel.len(), tiling.len());
    }

    #[test]
    fn cube_summaries_shape() {
        let (snap, tiling) = hotspot_snapshot(8, 4);
        let s = HypercubeSelector::cube_summaries(&tiling, &snap, "q");
        assert_eq!(s.len(), tiling.len() * 4);
        // Hot cube (id 0) must have the largest std.
        let stds: Vec<f64> = (0..tiling.len()).map(|t| s[t * 4 + 1]).collect();
        let argmax = stds
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 0);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_overselection() {
        let (snap, tiling) = hotspot_snapshot(8, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = HypercubeSelector::Random.select(&tiling, &snap, "q", 1000, &mut rng);
    }

    #[test]
    fn names_match_config_strings() {
        assert_eq!(HypercubeSelector::Random.name(), "random");
        assert_eq!(HypercubeSelector::maxent_default().name(), "maxent");
    }
}
