//! Mini-batch k-means clustering.
//!
//! The reference SICKLE uses scikit-learn's `MiniBatchKMeans` "for efficient
//! clustering" of terabyte-scale data. This is a from-scratch Rust port of
//! the same algorithm (Sculley 2010): k-means++-style seeding on a subsample,
//! then per-batch assignment and per-center counted gradient updates.
//! Assignment passes are rayon-parallel.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Mini-batch k-means configuration.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of mini-batch iterations.
    pub iterations: usize,
    /// RNG seed (the whole fit is deterministic under it).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 20,
            batch_size: 1024,
            iterations: 50,
            seed: 0,
        }
    }
}

/// A fitted k-means model.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Row-major `k x d` centroid matrix.
    pub centroids: Vec<f64>,
    /// Feature dimension.
    pub dim: usize,
    /// Number of clusters actually fitted (`min(k, distinct points)`).
    pub k: usize,
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits mini-batch k-means to row-major `data` (`n x dim`).
    ///
    /// If there are fewer points than clusters, `k` is reduced to `n`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `data` is empty, or `data.len()` is not a
    /// multiple of `dim`.
    pub fn fit(data: &[f64], dim: usize, cfg: &KMeansConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(!data.is_empty(), "cannot cluster an empty dataset");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        let n = data.len() / dim;
        let k = cfg.k.min(n).max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // --- k-means++ seeding (on a capped subsample for large n). ---
        let seed_pool: Vec<usize> = if n > 16 * cfg.batch_size {
            (0..16 * cfg.batch_size)
                .map(|_| rng.gen_range(0..n))
                .collect()
        } else {
            (0..n).collect()
        };
        let mut centroids = Vec::with_capacity(k * dim);
        let first = seed_pool[rng.gen_range(0..seed_pool.len())];
        centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
        let mut d2: Vec<f64> = seed_pool
            .iter()
            .map(|&i| sq_dist(&data[i * dim..(i + 1) * dim], &centroids[..dim]))
            .collect();
        for c in 1..k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                seed_pool[rng.gen_range(0..seed_pool.len())]
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut pick = seed_pool[seed_pool.len() - 1];
                for (j, &i) in seed_pool.iter().enumerate() {
                    target -= d2[j];
                    if target <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            centroids.extend_from_slice(&data[next * dim..(next + 1) * dim]);
            let newc = &centroids[c * dim..(c + 1) * dim];
            for (j, &i) in seed_pool.iter().enumerate() {
                let nd = sq_dist(&data[i * dim..(i + 1) * dim], newc);
                if nd < d2[j] {
                    d2[j] = nd;
                }
            }
        }

        // --- Mini-batch updates. ---
        let mut counts = vec![0u64; k];
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.iterations {
            let batch: Vec<usize> = if n <= cfg.batch_size {
                indices.clone()
            } else {
                indices.shuffle(&mut rng);
                indices[..cfg.batch_size].to_vec()
            };
            // Parallel assignment.
            let assign: Vec<usize> = batch
                .par_iter()
                .map(|&i| {
                    let row = &data[i * dim..(i + 1) * dim];
                    nearest(&centroids, dim, k, row).0
                })
                .collect();
            // Sequential counted update (order-stable => deterministic).
            for (&i, &c) in batch.iter().zip(assign.iter()) {
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f64;
                let row = &data[i * dim..(i + 1) * dim];
                let cent = &mut centroids[c * dim..(c + 1) * dim];
                for (cv, &rv) in cent.iter_mut().zip(row) {
                    *cv += eta * (rv - *cv);
                }
            }
        }
        KMeans { centroids, dim, k }
    }

    /// Assigns every row of `data` to its nearest centroid (parallel).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the fitted dimension.
    pub fn assign(&self, data: &[f64]) -> Vec<usize> {
        assert_eq!(
            data.len() % self.dim,
            0,
            "data length not a multiple of dim"
        );
        data.par_chunks(self.dim)
            .map(|row| nearest(&self.centroids, self.dim, self.k, row).0)
            .collect()
    }

    /// Assigns one row, returning `(cluster, squared_distance)`.
    pub fn assign_one(&self, row: &[f64]) -> (usize, f64) {
        nearest(&self.centroids, self.dim, self.k, row)
    }

    /// Mean squared distance of each point to its assigned centroid
    /// (the k-means inertia / n).
    pub fn inertia(&self, data: &[f64]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let total: f64 = data
            .par_chunks(self.dim)
            .map(|row| nearest(&self.centroids, self.dim, self.k, row).1)
            .sum();
        total / n as f64
    }

    /// Centroid `c` as a slice.
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }
}

#[inline]
fn nearest(centroids: &[f64], dim: usize, k: usize, row: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = sq_dist(row, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2D blobs.
    fn blobs() -> (Vec<f64>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 5.0)];
        let mut data = Vec::new();
        let mut truth = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let c = rng.gen_range(0..3);
            let (cx, cy) = centers[c];
            data.push(cx + rng.gen::<f64>() - 0.5);
            data.push(cy + rng.gen::<f64>() - 0.5);
            truth.push(c);
        }
        (data, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs();
        let km = KMeans::fit(
            &data,
            2,
            &KMeansConfig {
                k: 3,
                batch_size: 64,
                iterations: 60,
                seed: 1,
            },
        );
        let labels = km.assign(&data);
        // Every true cluster must map to exactly one k-means label.
        for t in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for (l, &tr) in labels.iter().zip(&truth) {
                if tr == t {
                    seen.insert(*l);
                }
            }
            assert_eq!(seen.len(), 1, "true blob {t} split across labels {seen:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, _) = blobs();
        let cfg = KMeansConfig {
            k: 3,
            batch_size: 64,
            iterations: 30,
            seed: 5,
        };
        let a = KMeans::fit(&data, 2, &cfg);
        let b = KMeans::fit(&data, 2, &cfg);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_sample_count() {
        let data = vec![1.0, 2.0, 3.0]; // three 1D points
        let km = KMeans::fit(
            &data,
            1,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(km.k, 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs();
        let i1 = KMeans::fit(
            &data,
            2,
            &KMeansConfig {
                k: 1,
                iterations: 30,
                ..Default::default()
            },
        )
        .inertia(&data);
        let i3 = KMeans::fit(
            &data,
            2,
            &KMeansConfig {
                k: 3,
                iterations: 30,
                ..Default::default()
            },
        )
        .inertia(&data);
        assert!(i3 < i1 * 0.2, "inertia k=1 {i1} vs k=3 {i3}");
    }

    #[test]
    fn assign_one_matches_assign() {
        let (data, _) = blobs();
        let km = KMeans::fit(
            &data,
            2,
            &KMeansConfig {
                k: 3,
                iterations: 20,
                ..Default::default()
            },
        );
        let labels = km.assign(&data);
        for (i, &l) in labels.iter().enumerate().step_by(17) {
            assert_eq!(km.assign_one(&data[i * 2..i * 2 + 2]).0, l);
        }
    }

    #[test]
    fn single_point_dataset() {
        let km = KMeans::fit(&[5.0, 5.0], 2, &KMeansConfig::default());
        assert_eq!(km.k, 1);
        assert_eq!(km.assign(&[1.0, 1.0]), vec![0]);
    }

    #[test]
    fn identical_points_dont_crash() {
        let data = vec![2.0; 100]; // 100 identical 1D points
        let km = KMeans::fit(
            &data,
            1,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
        );
        let labels = km.assign(&data);
        assert!(labels.iter().all(|&l| l < km.k));
        assert!(km.inertia(&data) < 1e-20);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_data() {
        let _ = KMeans::fit(&[], 2, &KMeansConfig::default());
    }
}
