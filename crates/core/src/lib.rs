//! # sickle-core
//!
//! The paper's primary contribution: **SICKLE**, a Sparse Intelligent
//! Curation framework for Learning Efficiently.
//!
//! The framework curates training subsets from dense simulation snapshots in
//! two phases (paper §4, Fig. 3):
//!
//! 1. **Hypercube selection** ([`hypercube`]): the domain is tiled into
//!    cubes (32³ in the paper); cubes are selected either uniformly at
//!    random (`Hrandom`) or by maximum-entropy weighting (`Hmaxent`) —
//!    cluster the cubes, estimate per-cluster PDFs of the cluster variable,
//!    build the Kullback–Leibler adjacency matrix
//!    `A_ij = Σ P(C_i) log(P(C_i)/P(C_j))`, reduce to node strengths (row
//!    sums), and sample cubes with probability proportional to strength.
//! 2. **Point selection** ([`samplers`]): within each selected cube, retain
//!    a budgeted subset of points by one of: `Xfull` (keep everything),
//!    `Xrandom`, `Xlhs`, `Xstratified`, `Xmaxent` (cluster + entropy-weighted
//!    budget allocation), or `Xuips` (uniform-in-phase-space acceptance
//!    sampling after binned density estimation).
//!
//! [`temporal`] applies the same novelty principle across snapshots, and
//! [`pipeline`] wires both phases behind a serde-serializable configuration
//! mirroring the reference implementation's YAML files. [`metrics`] computes
//! the PDF-fidelity diagnostics used by the paper's Figures 4 and 5.

pub mod entropy;
pub mod gmm;
pub mod hypercube;
pub mod kmeans;
pub mod metrics;
pub mod pipeline;
pub mod pod;
pub mod samplers;
pub mod streaming;
pub mod temporal;
pub mod uips;

pub use hypercube::HypercubeSelector;
pub use kmeans::{KMeans, KMeansConfig};
pub use pipeline::{PointMethod, SamplingConfig, SamplingOutput, SamplingStats};
pub use samplers::{
    FullSampler, ImportanceSampler, LhsSampler, MaxEntSampler, PointSampler, RandomSampler,
    StratifiedSampler, UniformStrideSampler,
};
pub use uips::UipsSampler;
