//! PDF-fidelity diagnostics for comparing sampling methods (the
//! quantitative backbone of the paper's Figures 4 and 5).
//!
//! A good subsample's feature PDF should match the *full* data PDF —
//! including the tails, which carry the rare, information-rich events that
//! drive model generalization. For each feature we report the KL divergence
//! of the sample PDF from the full PDF and the tail-mass coverage ratio.

use serde::Serialize;
use sickle_field::stats::kl_divergence;
use sickle_field::{FeatureMatrix, Histogram};

/// PDF-fidelity report for one feature column.
#[derive(Clone, Debug, Serialize)]
pub struct PdfReport {
    /// Feature name.
    pub feature: String,
    /// `KL(full ‖ sample)` in nats — how much of the true distribution the
    /// sample fails to represent (lower is better).
    pub kl_full_vs_sample: f64,
    /// Fraction of the full data in the outer 5% of the value range.
    pub tail_mass_full: f64,
    /// Same for the sample.
    pub tail_mass_sample: f64,
    /// `tail_mass_sample / tail_mass_full` (≥ 1 = tails over-represented,
    /// which is what MaxEnt intentionally does; « 1 = tails lost).
    pub tail_coverage_ratio: f64,
}

/// Compares the PDF of each feature column between the full matrix and the
/// subset at `indices`, using `bins` histogram bins (the paper fixes 100).
pub fn pdf_reports(features: &FeatureMatrix, indices: &[usize], bins: usize) -> Vec<PdfReport> {
    let d = features.dim();
    let mut out = Vec::with_capacity(d);
    for c in 0..d {
        let full = features.column(c);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &full {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        let mut h_full = Histogram::new(lo, hi, bins);
        h_full.extend(&full);
        let mut h_sample = Histogram::new(lo, hi, bins);
        for &i in indices {
            h_sample.push(features.row(i)[c]);
        }
        let tail_full = h_full.tail_mass(0.05);
        let tail_sample = h_sample.tail_mass(0.05);
        out.push(PdfReport {
            feature: features.names[c].clone(),
            kl_full_vs_sample: kl_divergence(&h_full.pmf(), &h_sample.pmf()),
            tail_mass_full: tail_full,
            tail_mass_sample: tail_sample,
            tail_coverage_ratio: if tail_full > 0.0 {
                tail_sample / tail_full
            } else {
                0.0
            },
        });
    }
    out
}

/// Mean `KL(full ‖ sample)` across features — a single scalar for ranking
/// methods, used in the figure binaries.
pub fn mean_kl(features: &FeatureMatrix, indices: &[usize], bins: usize) -> f64 {
    let reports = pdf_reports(features, indices, bins);
    reports.iter().map(|r| r.kl_full_vs_sample).sum::<f64>() / reports.len() as f64
}

/// First Wasserstein (earth-mover) distance between two PMFs over a shared
/// equal-width binning, in units of the bin width: `W₁ = Σ |CDF_p − CDF_q|`.
/// Unlike KL it is finite without smoothing and weights tail mass by *how
/// far* it is displaced — a complementary PDF-fidelity score for Fig. 5.
pub fn wasserstein1(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "pmf length mismatch");
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut w = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        cp += pi;
        cq += qi;
        w += (cp - cq).abs();
    }
    w
}

/// Per-feature Wasserstein-1 distances between the full matrix and the
/// subset at `indices` (bin-width units).
pub fn wasserstein_reports(features: &FeatureMatrix, indices: &[usize], bins: usize) -> Vec<f64> {
    let d = features.dim();
    (0..d)
        .map(|c| {
            let full = features.column(c);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &full {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if !lo.is_finite() {
                lo = 0.0;
                hi = 1.0;
            }
            let mut h_full = Histogram::new(lo, hi, bins);
            h_full.extend(&full);
            let mut h_sample = Histogram::new(lo, hi, bins);
            for &i in indices {
                h_sample.push(features.row(i)[c]);
            }
            wasserstein1(&h_full.pmf(), &h_sample.pmf())
        })
        .collect()
}

/// Spatial clumping diagnostic for Fig. 4: coefficient of variation of
/// selected-point counts over `cells` equal slabs of the source index space
/// (flat grid order ≈ spatial locality). Uniform spatial coverage → low CoV.
pub fn spatial_cov(indices: &[usize], total_points: usize, cells: usize) -> f64 {
    if indices.is_empty() || cells == 0 {
        return 0.0;
    }
    let mut counts = vec![0f64; cells];
    for &i in indices {
        let c = (i * cells / total_points.max(1)).min(cells - 1);
        counts[c] += 1.0;
    }
    let mean = counts.iter().sum::<f64>() / cells as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / cells as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussianish(n: usize) -> FeatureMatrix {
        // Deterministic heavy-center distribution via summed residues.
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let a = (i * 7919 % 1000) as f64 / 1000.0;
                let b = (i * 104729 % 1000) as f64 / 1000.0;
                let c = (i * 1299709 % 1000) as f64 / 1000.0;
                a + b + c - 1.5
            })
            .collect();
        FeatureMatrix::new(vec!["q".into()], data)
    }

    #[test]
    fn identical_sample_has_zero_kl() {
        let f = gaussianish(1000);
        let all: Vec<usize> = (0..1000).collect();
        let r = &pdf_reports(&f, &all, 50)[0];
        assert!(r.kl_full_vs_sample < 1e-9);
        assert!((r.tail_coverage_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn center_only_sample_has_positive_kl_and_no_tails() {
        let f = gaussianish(1000);
        // Keep only near-center values.
        let center: Vec<usize> = (0..1000).filter(|&i| f.row(i)[0].abs() < 0.2).collect();
        assert!(!center.is_empty());
        let r = &pdf_reports(&f, &center, 50)[0];
        assert!(r.kl_full_vs_sample > 0.1, "kl {}", r.kl_full_vs_sample);
        assert!(
            r.tail_coverage_ratio < 0.2,
            "tail ratio {}",
            r.tail_coverage_ratio
        );
    }

    #[test]
    fn tail_only_sample_overrepresents_tails() {
        let f = gaussianish(1000);
        let tails: Vec<usize> = (0..1000).filter(|&i| f.row(i)[0].abs() > 1.0).collect();
        assert!(!tails.is_empty());
        let r = &pdf_reports(&f, &tails, 50)[0];
        assert!(
            r.tail_coverage_ratio > 2.0,
            "tail ratio {}",
            r.tail_coverage_ratio
        );
    }

    #[test]
    fn mean_kl_ranks_better_samples_lower() {
        let f = gaussianish(2000);
        let every_10th: Vec<usize> = (0..2000).step_by(10).collect();
        let first_200: Vec<usize> = (0..200).collect();
        // A systematic sweep matches the PDF better than the first block
        // does only if the data ordering correlates with value — with our
        // residue construction both are decorrelated, so compare against an
        // adversarial center-only pick instead.
        let center: Vec<usize> = (0..2000)
            .filter(|&i| f.row(i)[0].abs() < 0.1)
            .take(200)
            .collect();
        let kl_sweep = mean_kl(&f, &every_10th, 50);
        let kl_center = mean_kl(&f, &center, 50);
        assert!(
            kl_sweep < kl_center,
            "sweep {kl_sweep} vs center {kl_center}"
        );
        let _ = first_200;
    }

    #[test]
    fn wasserstein_zero_on_identical_and_orders_shifts() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        assert!(wasserstein1(&p, &p).abs() < 1e-12);
        // Mass shifted by one bin costs exactly that mass.
        let a = vec![1.0, 0.0, 0.0, 0.0];
        let near = vec![0.0, 1.0, 0.0, 0.0];
        let far = vec![0.0, 0.0, 0.0, 1.0];
        assert!((wasserstein1(&a, &near) - 1.0).abs() < 1e-12);
        assert!((wasserstein1(&a, &far) - 3.0).abs() < 1e-12);
        assert!(wasserstein1(&a, &far) > wasserstein1(&a, &near));
    }

    #[test]
    fn wasserstein_reports_rank_center_sample_worse() {
        let f = gaussianish(1000);
        let all: Vec<usize> = (0..1000).collect();
        let center: Vec<usize> = (0..1000).filter(|&i| f.row(i)[0].abs() < 0.2).collect();
        let w_all = wasserstein_reports(&f, &all, 50)[0];
        let w_center = wasserstein_reports(&f, &center, 50)[0];
        assert!(w_all < 1e-9);
        assert!(w_center > 1.0, "center-only W1 {w_center}");
    }

    #[test]
    fn spatial_cov_detects_clumps() {
        let clumped: Vec<usize> = (0..100).collect(); // all in the first slab
        let spread: Vec<usize> = (0..100).map(|i| i * 100).collect();
        let c1 = spatial_cov(&clumped, 10_000, 10);
        let c2 = spatial_cov(&spread, 10_000, 10);
        assert!(c1 > 2.0, "clumped CoV {c1}");
        assert!(c2 < 0.1, "spread CoV {c2}");
    }

    #[test]
    fn spatial_cov_empty_is_zero() {
        assert_eq!(spatial_cov(&[], 100, 10), 0.0);
    }
}
