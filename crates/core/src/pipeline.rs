//! End-to-end sampling pipeline: configuration, two-phase execution, and
//! run statistics.
//!
//! This is the Rust analogue of `subsample.py` + its YAML configs: a
//! [`SamplingConfig`] names the hypercube selector, the point method, the
//! budgets, and the variables; [`run_dataset`] executes phase 1 and phase 2
//! over every snapshot, parallelizing across hypercubes exactly where the
//! reference implementation parallelizes across MPI ranks.

use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sickle_field::io as fio;
use sickle_field::{Dataset, SampleSet, Snapshot, Tiling};

use crate::hypercube::HypercubeSelector;
use crate::samplers::{
    FullSampler, LhsSampler, MaxEntSampler, PointSampler, RandomSampler, StratifiedSampler,
};
use crate::uips::UipsSampler;

/// Phase-2 point-selection method (config-file facing).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", tag = "kind")]
pub enum PointMethod {
    /// Keep all points in each selected cube.
    Full,
    /// Uniform random.
    Random,
    /// Deterministic uniform stride in grid order.
    Uniform,
    /// Latin-hypercube-style spread.
    Lhs,
    /// Quantile-stratified on the cluster variable.
    Stratified {
        /// Number of strata.
        strata: usize,
    },
    /// Maximum-entropy cluster-weighted selection.
    MaxEnt {
        /// k-means cluster count.
        num_clusters: usize,
        /// Histogram bins for cluster PDFs.
        bins: usize,
    },
    /// Uniform-in-phase-space acceptance sampling.
    Uips {
        /// Bins per feature dimension.
        bins_per_dim: usize,
    },
    /// UIPS with a Gaussian-mixture density estimator (the smooth-density
    /// alternative to binning; see [`crate::gmm`]).
    UipsGmm {
        /// Mixture components.
        components: usize,
    },
    /// POD/DEIM projection-based selection baseline (see [`crate::pod`]).
    PodDeim,
}

impl PointMethod {
    /// Instantiates the sampler.
    pub fn build(&self) -> Box<dyn PointSampler> {
        match *self {
            PointMethod::Full => Box::new(FullSampler),
            PointMethod::Random => Box::new(RandomSampler),
            PointMethod::Uniform => Box::new(crate::samplers::UniformStrideSampler),
            PointMethod::Lhs => Box::new(LhsSampler),
            PointMethod::Stratified { strata } => Box::new(StratifiedSampler { strata }),
            PointMethod::MaxEnt { num_clusters, bins } => Box::new(MaxEntSampler {
                num_clusters,
                bins,
                ..Default::default()
            }),
            PointMethod::Uips { bins_per_dim } => Box::new(UipsSampler {
                bins_per_dim,
                ..Default::default()
            }),
            PointMethod::UipsGmm { components } => Box::new(crate::gmm::UipsGmmSampler {
                components,
                ..Default::default()
            }),
            PointMethod::PodDeim => Box::new(crate::pod::PodSampler),
        }
    }

    /// Config-facing name (matches the paper's `Xfull`, `Xmaxent`, ... minus
    /// the `X` prefix).
    pub fn name(&self) -> &'static str {
        match self {
            PointMethod::Full => "full",
            PointMethod::Random => "random",
            PointMethod::Uniform => "uniform",
            PointMethod::Lhs => "lhs",
            PointMethod::Stratified { .. } => "stratified",
            PointMethod::MaxEnt { .. } => "maxent",
            PointMethod::Uips { .. } => "uips",
            PointMethod::UipsGmm { .. } => "uips-gmm",
            PointMethod::PodDeim => "pod-deim",
        }
    }
}

/// Phase-1 hypercube-selection method (config-file facing).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum CubeMethod {
    /// Uniform random cubes.
    Random,
    /// Entropy-weighted cubes.
    MaxEnt,
}

impl CubeMethod {
    /// Converts to the executable selector.
    pub fn build(&self) -> HypercubeSelector {
        match self {
            CubeMethod::Random => HypercubeSelector::Random,
            CubeMethod::MaxEnt => HypercubeSelector::maxent_default(),
        }
    }
}

/// Snapshot-level (temporal) selection applied before spatial sampling
/// (paper §4.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", tag = "kind")]
pub enum TemporalMethod {
    /// Keep every snapshot (default).
    #[default]
    All,
    /// Evenly strided subset of `count` snapshots (the naive cadence).
    Stride {
        /// Snapshots to keep.
        count: usize,
    },
    /// Greedy max-KL novelty selection of `count` snapshots.
    Novelty {
        /// Snapshots to keep.
        count: usize,
        /// Histogram bins for the novelty PDFs.
        bins: usize,
    },
    /// Online adaptive selection: keep snapshots whose PDF diverges from
    /// the kept mixture by more than `threshold` nats.
    Adaptive {
        /// KL threshold in nats.
        threshold: f64,
        /// Histogram bins.
        bins: usize,
    },
}

/// Full sampling configuration — the Rust mirror of the paper's YAML files
/// (e.g. `Hmaxent-Xmaxent-32.yaml`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Hypercube (phase 1) selection method.
    pub hypercubes: CubeMethod,
    /// Number of hypercubes to keep per snapshot.
    pub num_hypercubes: usize,
    /// Hypercube edge length in grid points (the paper's `nxsl` etc.).
    pub cube_edge: usize,
    /// Point (phase 2) selection method.
    pub method: PointMethod,
    /// Point budget per hypercube (the paper's `num_samples`, e.g. 3277 =
    /// 10% of 32³).
    pub num_samples: usize,
    /// K-means cluster variable name (Table 1's KCV).
    pub cluster_var: String,
    /// Feature variables extracted into the sample sets (inputs + outputs).
    pub feature_vars: Vec<String>,
    /// Base RNG seed; every (snapshot, cube) pair derives its own stream.
    pub seed: u64,
    /// Temporal (snapshot-level) selection applied before spatial sampling.
    #[serde(default)]
    pub temporal: TemporalMethod,
}

impl SamplingConfig {
    /// A `Hmaxent-Xmaxent` configuration matching the paper's SST defaults.
    pub fn maxent_default(cluster_var: &str, feature_vars: &[&str]) -> Self {
        SamplingConfig {
            hypercubes: CubeMethod::MaxEnt,
            num_hypercubes: 8,
            cube_edge: 16,
            method: PointMethod::MaxEnt {
                num_clusters: 20,
                bins: 100,
            },
            num_samples: 410, // ~10% of 16^3
            cluster_var: cluster_var.to_string(),
            feature_vars: feature_vars.iter().map(|s| s.to_string()).collect(),
            seed: 0,
            temporal: TemporalMethod::All,
        }
    }

    /// The `Hmaxent-Xmaxent-32`-style case name used in result tables.
    pub fn case_name(&self) -> String {
        format!(
            "H{}-X{}-{}",
            match self.hypercubes {
                CubeMethod::Random => "random",
                CubeMethod::MaxEnt => "maxent",
            },
            self.method.name(),
            self.cube_edge
        )
    }

    /// All variables to extract: `feature_vars` with the cluster variable
    /// appended if missing. Returns `(vars, cluster_col)`.
    pub fn extraction_vars(&self) -> (Vec<String>, usize) {
        let mut vars = self.feature_vars.clone();
        let cluster_col = match vars.iter().position(|v| v == &self.cluster_var) {
            Some(c) => c,
            None => {
                vars.push(self.cluster_var.clone());
                vars.len() - 1
            }
        };
        (vars, cluster_col)
    }
}

/// Run statistics (the pipeline's answer to the paper's "Total Energy
/// Consumed"/"Elapsed Time" log lines; energy itself is modeled by
/// `sickle-energy` from these counts).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SamplingStats {
    /// Dense points scanned by phase 2 (selected cubes × cube volume).
    pub points_in: usize,
    /// Points retained.
    pub points_out: usize,
    /// Hypercubes selected in total.
    pub cubes_selected: usize,
    /// Dense points scanned by phase 1 (whole grid × snapshots — cube
    /// scoring reads everything once).
    pub phase1_points: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
}

impl SamplingStats {
    /// Retention fraction (`points_out / points_in`).
    pub fn retention(&self) -> f64 {
        if self.points_in == 0 {
            0.0
        } else {
            self.points_out as f64 / self.points_in as f64
        }
    }
}

/// Output of a full dataset run: per-snapshot lists of per-cube sample sets.
#[derive(Clone, Debug)]
pub struct SamplingOutput {
    /// `sets[snapshot][cube]`.
    pub sets: Vec<Vec<SampleSet>>,
    /// Aggregate statistics.
    pub stats: SamplingStats,
    /// The executed configuration (for provenance).
    pub config: SamplingConfig,
}

impl SamplingOutput {
    /// Flattens all sample sets of one snapshot into a single merged set.
    pub fn merged_snapshot(&self, snap: usize) -> SampleSet {
        SampleSet::merge(&self.sets[snap])
    }

    /// Total retained points.
    pub fn total_points(&self) -> usize {
        self.sets.iter().flatten().map(SampleSet::len).sum()
    }
}

/// Derives a per-(snapshot, cube) RNG stream from the base seed via
/// SplitMix64 mixing — parallel execution order cannot perturb results.
///
/// Public because every executor (the in-process rayon pipeline here, the
/// ranked thread executor in `sickle-hpc`) must draw from the same streams:
/// that is the determinism contract (DESIGN.md §9) that makes rank counts,
/// work redistribution, and retries invisible in the output.
pub fn derive_rng(seed: u64, snapshot: usize, cube: usize) -> StdRng {
    // `cube` may be usize::MAX (the per-snapshot sentinel), so the +1 must wrap.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul((snapshot as u64).wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul((cube as u64).wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Runs the two-phase pipeline on one snapshot, returning one sample set per
/// selected hypercube. Cubes are processed in parallel.
pub fn run_snapshot(
    snap: &Snapshot,
    snapshot_index: usize,
    cfg: &SamplingConfig,
) -> Vec<SampleSet> {
    let _snap_span = sickle_obs::span!("sample.snapshot", snapshot = snapshot_index);
    let tiling = Tiling::cubic(snap.grid, cfg.cube_edge);
    let count = cfg.num_hypercubes.min(tiling.len());
    let mut rng = derive_rng(cfg.seed, snapshot_index, usize::MAX);
    let selector = cfg.hypercubes.build();
    let cube_ids = {
        let _p1 = sickle_obs::span!("sample.phase1.select", tiles = tiling.len(), keep = count);
        selector.select(&tiling, snap, &cfg.cluster_var, count, &mut rng)
    };
    let (vars, cluster_col) = cfg.extraction_vars();
    let sampler = cfg.method.build();

    // Rayon workers run on pool threads with their own (empty) span stacks,
    // so the phase-2 spans must name their parent explicitly.
    let parent = sickle_obs::current_span_id();
    cube_ids
        .par_iter()
        .map(|&cube_id| {
            let _cube = sickle_obs::child_span!(parent, "sample.phase2.cube", cube = cube_id);
            let (features, indices) = tiling.extract(snap, cube_id, &vars);
            let mut rng = derive_rng(cfg.seed, snapshot_index, cube_id);
            let picked = sampler.select(&features, cluster_col, cfg.num_samples, &mut rng);
            sickle_obs::counter!("sample.points_out", picked.len());
            let sel_features = features.gather(&picked);
            let sel_indices: Vec<usize> = picked.iter().map(|&p| indices[p]).collect();
            SampleSet::new(sel_features, sel_indices, snap.time, snapshot_index)
                .with_hypercube(cube_id)
        })
        .collect()
}

/// Selects the snapshot indices the configuration's temporal method keeps.
pub fn temporal_selection(dataset: &Dataset, cfg: &SamplingConfig) -> Vec<usize> {
    let total = dataset.num_snapshots();
    match cfg.temporal {
        TemporalMethod::All => (0..total).collect(),
        TemporalMethod::Stride { count } => {
            crate::temporal::uniform_stride(total, count.clamp(1, total))
        }
        TemporalMethod::Novelty { count, bins } => {
            let mut sel = crate::temporal::novelty_select(
                dataset,
                &cfg.cluster_var,
                count.clamp(1, total),
                bins,
            );
            sel.sort_unstable();
            sel
        }
        TemporalMethod::Adaptive { threshold, bins } => {
            crate::temporal::adaptive_select(dataset, &cfg.cluster_var, bins, threshold)
        }
    }
}

/// Runs the pipeline over every temporally selected snapshot of a dataset.
pub fn run_dataset(dataset: &Dataset, cfg: &SamplingConfig) -> SamplingOutput {
    let _run = sickle_obs::span!(
        "sample.run_dataset",
        snapshots = dataset.num_snapshots(),
        cubes_per_snapshot = cfg.num_hypercubes
    );
    let t0 = std::time::Instant::now();
    let keep = {
        let _t = sickle_obs::span!("sample.temporal", total = dataset.num_snapshots());
        temporal_selection(dataset, cfg)
    };
    let sets: Vec<Vec<SampleSet>> = keep
        .iter()
        .map(|&i| run_snapshot(&dataset.snapshots[i], i, cfg))
        .collect();
    let cube_points = cfg
        .cube_edge
        .pow(if dataset.grid().nz == 1 { 2 } else { 3 });
    let cubes_selected: usize = sets.iter().map(Vec::len).sum();
    let stats = SamplingStats {
        points_in: cubes_selected * cube_points,
        points_out: sets.iter().flatten().map(SampleSet::len).sum(),
        cubes_selected,
        phase1_points: dataset.grid().len() * keep.len(),
        elapsed_secs: t0.elapsed().as_secs_f64(),
    };
    let secs = stats.elapsed_secs.max(1e-12);
    sickle_obs::histogram!("sample.points_per_sec", stats.points_out as f64 / secs);
    sickle_obs::histogram!("sample.cubes_per_sec", cubes_selected as f64 / secs);
    SamplingOutput {
        sets,
        stats,
        config: cfg.clone(),
    }
}

/// Fingerprint of a sampling configuration (FNV-1a over its canonical JSON,
/// in hex-string form so it survives the JSON manifest round-trip), used to
/// guard checkpoints against being resumed into the wrong run.
pub fn config_fingerprint(cfg: &SamplingConfig) -> String {
    let json = serde_json::to_string(cfg).expect("config serializes");
    fio::fnv1a64_hex(json.as_bytes())
}

fn shard_file_name(snapshot_index: usize) -> String {
    format!("snap_{snapshot_index:05}.sklshard")
}

/// Tries to restore one snapshot's sample sets from a checkpoint entry,
/// verifying the manifest hash. Any failure (missing file, hash mismatch,
/// decode error) returns `None` and the snapshot is recomputed.
fn restore_snapshot(dir: &Path, entry: &fio::ManifestEntry) -> Option<Vec<SampleSet>> {
    let path = dir.join(&entry.file);
    let bytes = std::fs::read(&path).ok()?;
    if fio::fnv1a64_hex(&bytes) != entry.hash {
        sickle_obs::warn!(
            "checkpoint",
            "hash mismatch for {} — recomputing snapshot {}",
            entry.file,
            entry.snapshot_index
        );
        return None;
    }
    match fio::decode_sample_sets(&bytes) {
        Ok(sets) => Some(sets),
        Err(e) => {
            sickle_obs::warn!(
                "checkpoint",
                "failed to decode {}: {e} — recomputing snapshot {}",
                entry.file,
                entry.snapshot_index
            );
            None
        }
    }
}

/// Runs the pipeline over a dataset with snapshot-granularity checkpointing:
/// after each snapshot completes, its per-cube sample sets are written as a
/// hashed shard under `dir` and recorded in an atomically-updated
/// `manifest.json`. A rerun with the same configuration skips every
/// snapshot whose shard still verifies, so a process killed between
/// snapshots resumes where it left off; the restored output is bit-identical
/// to an uninterrupted [`run_dataset`] (the determinism contract, DESIGN.md
/// §9). A manifest from a *different* configuration is ignored wholesale.
///
/// # Errors
/// Propagates I/O errors from shard or manifest writes. Unreadable or
/// corrupt checkpoint state is never an error — those snapshots are simply
/// recomputed.
pub fn run_dataset_resumable(
    dataset: &Dataset,
    cfg: &SamplingConfig,
    dir: &Path,
) -> std::io::Result<SamplingOutput> {
    let _run = sickle_obs::span!(
        "sample.run_dataset_resumable",
        snapshots = dataset.num_snapshots()
    );
    let t0 = std::time::Instant::now();
    std::fs::create_dir_all(dir)?;
    let fingerprint = config_fingerprint(cfg);
    let manifest_path = dir.join("manifest.json");
    let mut manifest = match fio::CheckpointManifest::load(&manifest_path) {
        Ok(m) if m.config_hash == fingerprint => m,
        Ok(_) => {
            sickle_obs::warn!(
                "checkpoint",
                "manifest at {} belongs to a different configuration — starting fresh",
                manifest_path.display()
            );
            fio::CheckpointManifest::new(fingerprint.clone())
        }
        Err(_) => fio::CheckpointManifest::new(fingerprint.clone()),
    };

    let keep = {
        let _t = sickle_obs::span!("sample.temporal", total = dataset.num_snapshots());
        temporal_selection(dataset, cfg)
    };
    let mut sets: Vec<Vec<SampleSet>> = Vec::with_capacity(keep.len());
    for &i in &keep {
        if let Some(restored) = manifest.entry(i).and_then(|e| restore_snapshot(dir, e)) {
            sickle_obs::counter!("checkpoint.skipped", 1usize);
            sickle_obs::info!("checkpoint", "snapshot {i}: restored from checkpoint");
            sets.push(restored);
            continue;
        }
        let snap_sets = run_snapshot(&dataset.snapshots[i], i, cfg);
        let w0 = std::time::Instant::now();
        {
            let _w = sickle_obs::span!("checkpoint.write", snapshot = i);
            let bytes = fio::encode_sample_sets(&snap_sets);
            let file = shard_file_name(i);
            let path = dir.join(&file);
            let tmp = dir.join(format!("{file}.tmp"));
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, &path)?;
            manifest.upsert(fio::ManifestEntry {
                snapshot_index: i,
                file,
                hash: fio::fnv1a64_hex(&bytes),
                sets: snap_sets.len(),
                points: snap_sets.iter().map(SampleSet::len).sum(),
            });
            manifest.save_atomic(&manifest_path)?;
        }
        sickle_obs::histogram!("checkpoint.write_secs", w0.elapsed().as_secs_f64());
        sets.push(snap_sets);
    }

    let cube_points = cfg
        .cube_edge
        .pow(if dataset.grid().nz == 1 { 2 } else { 3 });
    let cubes_selected: usize = sets.iter().map(Vec::len).sum();
    let stats = SamplingStats {
        points_in: cubes_selected * cube_points,
        points_out: sets.iter().flatten().map(SampleSet::len).sum(),
        cubes_selected,
        phase1_points: dataset.grid().len() * keep.len(),
        elapsed_secs: t0.elapsed().as_secs_f64(),
    };
    Ok(SamplingOutput {
        sets,
        stats,
        config: cfg.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_field::{DatasetMeta, Grid3};

    fn test_dataset(snapshots: usize) -> Dataset {
        let grid = Grid3::new(16, 16, 16, 1.0, 1.0, 1.0);
        let meta = DatasetMeta::new("T", "test", "q", &["u", "q"], &[]);
        let mut d = Dataset::new(meta);
        for s in 0..snapshots {
            let u: Vec<f64> = (0..grid.len())
                .map(|i| ((i * 31 + s * 7) % 100) as f64 * 0.01)
                .collect();
            let q: Vec<f64> = (0..grid.len())
                .map(|i| {
                    if i % 50 == 0 {
                        10.0
                    } else {
                        ((i * 17) % 100) as f64 * 0.001
                    }
                })
                .collect();
            d.push(
                Snapshot::new(grid, s as f64)
                    .with_var("u", u)
                    .with_var("q", q),
            );
        }
        d
    }

    fn test_config() -> SamplingConfig {
        SamplingConfig {
            hypercubes: CubeMethod::MaxEnt,
            num_hypercubes: 4,
            cube_edge: 8,
            method: PointMethod::MaxEnt {
                num_clusters: 5,
                bins: 32,
            },
            num_samples: 51, // ~10% of 8^3
            cluster_var: "q".to_string(),
            feature_vars: vec!["u".to_string(), "q".to_string()],
            seed: 7,
            temporal: TemporalMethod::All,
        }
    }

    #[test]
    fn temporal_stride_reduces_snapshots() {
        let d = test_dataset(6);
        let mut cfg = test_config();
        cfg.temporal = TemporalMethod::Stride { count: 3 };
        let out = run_dataset(&d, &cfg);
        assert_eq!(out.sets.len(), 3);
        // Stats reflect the reduced snapshot count.
        assert_eq!(out.stats.cubes_selected, 3 * 4);
    }

    #[test]
    fn temporal_novelty_runs_and_keeps_count() {
        let d = test_dataset(6);
        let mut cfg = test_config();
        cfg.temporal = TemporalMethod::Novelty { count: 2, bins: 16 };
        let out = run_dataset(&d, &cfg);
        assert_eq!(out.sets.len(), 2);
    }

    #[test]
    fn temporal_adaptive_collapses_repetitive_data() {
        let d = test_dataset(8); // near-identical snapshots
        let mut cfg = test_config();
        cfg.temporal = TemporalMethod::Adaptive {
            threshold: 0.5,
            bins: 16,
        };
        let out = run_dataset(&d, &cfg);
        assert!(out.sets.len() < 8, "kept {} snapshots", out.sets.len());
        assert!(!out.sets.is_empty());
    }

    #[test]
    fn temporal_default_is_all_and_serde_backcompat() {
        // Old config JSON without a temporal key must still parse.
        let json = r#"{
            "hypercubes": "random",
            "num_hypercubes": 2,
            "cube_edge": 8,
            "method": {"kind": "random"},
            "num_samples": 10,
            "cluster_var": "q",
            "feature_vars": ["q"],
            "seed": 0
        }"#;
        let cfg: SamplingConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.temporal, TemporalMethod::All);
    }

    #[test]
    fn pipeline_respects_budgets() {
        let d = test_dataset(2);
        let out = run_dataset(&d, &test_config());
        assert_eq!(out.sets.len(), 2);
        for snap_sets in &out.sets {
            assert_eq!(snap_sets.len(), 4);
            for s in snap_sets {
                assert_eq!(s.len(), 51);
                assert!(s.hypercube.is_some());
            }
        }
        assert_eq!(out.total_points(), 2 * 4 * 51);
        assert!((out.stats.retention() - 51.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn retention_of_degenerate_stats_is_zero_not_nan() {
        // A run that selected nothing (empty dataset, zero cubes) must
        // report 0.0 retention, never 0/0 = NaN — this number lands in CSVs
        // and JSON benchmark reports downstream.
        let stats = SamplingStats {
            points_in: 0,
            points_out: 0,
            cubes_selected: 0,
            phase1_points: 0,
            elapsed_secs: 0.0,
        };
        assert_eq!(stats.retention(), 0.0);
        assert!(stats.retention().is_finite());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let d = test_dataset(1);
        let cfg = test_config();
        let a = run_dataset(&d, &cfg);
        let b = run_dataset(&d, &cfg);
        assert_eq!(a.sets[0][0].indices, b.sets[0][0].indices);
        assert_eq!(a.sets[0][0].features.data, b.sets[0][0].features.data);
    }

    #[test]
    fn different_seeds_differ() {
        let d = test_dataset(1);
        let mut cfg = test_config();
        let a = run_dataset(&d, &cfg);
        cfg.seed = 8;
        let b = run_dataset(&d, &cfg);
        assert_ne!(a.sets[0][0].indices, b.sets[0][0].indices);
    }

    #[test]
    fn full_method_keeps_whole_cubes() {
        let d = test_dataset(1);
        let mut cfg = test_config();
        cfg.method = PointMethod::Full;
        let out = run_dataset(&d, &cfg);
        for s in &out.sets[0] {
            assert_eq!(s.len(), 512); // 8^3
        }
        assert!((out.stats.retention() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_snapshot_concatenates() {
        let d = test_dataset(1);
        let out = run_dataset(&d, &test_config());
        let merged = out.merged_snapshot(0);
        assert_eq!(merged.len(), 4 * 51);
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = test_config();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SamplingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.case_name(), cfg.case_name());
        assert_eq!(back.num_samples, cfg.num_samples);
        assert_eq!(back.method, cfg.method);
    }

    #[test]
    fn case_name_matches_paper_convention() {
        let cfg = test_config();
        assert_eq!(cfg.case_name(), "Hmaxent-Xmaxent-8");
    }

    #[test]
    fn extraction_vars_appends_missing_cluster_var() {
        let mut cfg = test_config();
        cfg.feature_vars = vec!["u".to_string()];
        let (vars, col) = cfg.extraction_vars();
        assert_eq!(vars, vec!["u".to_string(), "q".to_string()]);
        assert_eq!(col, 1);
    }

    #[test]
    fn sample_indices_are_valid_grid_points() {
        let d = test_dataset(1);
        let out = run_dataset(&d, &test_config());
        let n = d.grid().len();
        for s in out.sets[0].iter() {
            assert!(s.indices.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn two_dimensional_dataset_works() {
        let grid = Grid3::new(32, 32, 1, 1.0, 1.0, 1.0);
        let meta = DatasetMeta::new("T2", "test 2d", "q", &["q"], &[]);
        let mut d = Dataset::new(meta);
        let q: Vec<f64> = (0..grid.len()).map(|i| (i % 97) as f64).collect();
        d.push(Snapshot::new(grid, 0.0).with_var("q", q));
        let cfg = SamplingConfig {
            hypercubes: CubeMethod::Random,
            num_hypercubes: 4,
            cube_edge: 8,
            method: PointMethod::Random,
            num_samples: 6,
            cluster_var: "q".to_string(),
            feature_vars: vec!["q".to_string()],
            seed: 1,
            temporal: TemporalMethod::All,
        };
        let out = run_dataset(&d, &cfg);
        assert_eq!(out.total_points(), 24);
        // 2D cubes are 8x8 = 64 points.
        assert_eq!(out.stats.points_in, 4 * 64);
    }
}
