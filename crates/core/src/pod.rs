//! Proper orthogonal decomposition (POD) and DEIM-style point selection —
//! the "projection-based methods" baseline family the paper's Background
//! lists (Berkooz et al. 1993; also the sparse-sensor-placement line of
//! Manohar et al. that §5.1 cites).
//!
//! POD is computed by the method of snapshots: eigendecompose the small
//! `m × m` snapshot correlation matrix (Jacobi rotations — no external
//! linear algebra), lift eigenvectors to spatial modes. [`deim_points`]
//! then picks interpolation points by the discrete empirical interpolation
//! method, and [`PodSampler`] wraps the whole thing as a `PointSampler`
//! baseline: DEIM points first, then leverage-score-ordered fill.

use rand::rngs::StdRng;
use sickle_field::FeatureMatrix;

use crate::samplers::PointSampler;

/// Jacobi eigendecomposition of a symmetric matrix (row-major `m x m`).
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvectors are columns of the returned row-major matrix.
pub fn jacobi_eigen(mat: &[f64], m: usize, sweeps: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(mat.len(), m * m, "matrix shape mismatch");
    let mut a = mat.to_vec();
    // v starts as identity.
    let mut v = vec![0.0; m * m];
    for i in 0..m {
        v[i * m + i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0;
        for p in 0..m {
            for q in (p + 1)..m {
                off += a[p * m + q] * a[p * m + q];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..m {
            for q in (p + 1)..m {
                let apq = a[p * m + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = a[p * m + p];
                let aqq = a[q * m + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of a.
                for i in 0..m {
                    let aip = a[i * m + p];
                    let aiq = a[i * m + q];
                    a[i * m + p] = c * aip - s * aiq;
                    a[i * m + q] = s * aip + c * aiq;
                }
                for j in 0..m {
                    let apj = a[p * m + j];
                    let aqj = a[q * m + j];
                    a[p * m + j] = c * apj - s * aqj;
                    a[q * m + j] = s * apj + c * aqj;
                }
                // Accumulate rotations into v.
                for i in 0..m {
                    let vip = v[i * m + p];
                    let viq = v[i * m + q];
                    v[i * m + p] = c * vip - s * viq;
                    v[i * m + q] = s * vip + c * viq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..m).collect();
    let evals: Vec<f64> = (0..m).map(|i| a[i * m + i]).collect();
    order.sort_by(|&x, &y| {
        evals[y]
            .partial_cmp(&evals[x])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let sorted_vals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    let mut sorted_vecs = vec![0.0; m * m];
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..m {
            sorted_vecs[r * m + new_c] = v[r * m + old_c];
        }
    }
    (sorted_vals, sorted_vecs)
}

/// POD of `snapshots` (each a length-`n` field): returns `(modes, energy)`
/// where `modes` is row-major `n x r` (orthonormal columns) and `energy`
/// the corresponding eigenvalues, with `r = min(rank, snapshots)` modes
/// retained.
pub fn pod_modes(snapshots: &[&[f64]], rank: usize) -> (Vec<f64>, Vec<f64>, usize) {
    assert!(!snapshots.is_empty(), "POD needs at least one snapshot");
    let m = snapshots.len();
    let n = snapshots[0].len();
    assert!(
        snapshots.iter().all(|s| s.len() == n),
        "snapshot length mismatch"
    );
    // Correlation matrix C = X^T X / m (m x m).
    let mut corr = vec![0.0; m * m];
    for i in 0..m {
        for j in i..m {
            let dot: f64 = snapshots[i]
                .iter()
                .zip(snapshots[j])
                .map(|(a, b)| a * b)
                .sum();
            corr[i * m + j] = dot / m as f64;
            corr[j * m + i] = corr[i * m + j];
        }
    }
    let (evals, evecs) = jacobi_eigen(&corr, m, 50);
    let r = rank.min(m).max(1);
    // Lift: phi_k = sum_i V[i][k] x_i / sqrt(m * lambda_k).
    let mut modes = vec![0.0; n * r];
    let mut kept = 0;
    for k in 0..r {
        let lam = evals[k];
        if lam <= 1e-14 {
            break;
        }
        let scale = 1.0 / (m as f64 * lam).sqrt();
        for (i, snap) in snapshots.iter().enumerate() {
            let w = evecs[i * m + k] * scale;
            if w == 0.0 {
                continue;
            }
            for (p, &x) in snap.iter().enumerate() {
                modes[p * r + k] += w * x;
            }
        }
        kept += 1;
    }
    (modes, evals[..r].to_vec(), kept)
}

/// Solves a small dense linear system `A x = b` by Gaussian elimination
/// with partial pivoting (row-major `k x k`).
fn solve_small(a: &mut [f64], b: &mut [f64], k: usize) {
    for col in 0..k {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..k {
            if a[r * k + col].abs() > a[piv * k + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for j in 0..k {
                a.swap(col * k + j, piv * k + j);
            }
            b.swap(col, piv);
        }
        let d = a[col * k + col];
        if d.abs() < 1e-300 {
            continue;
        }
        for r in (col + 1)..k {
            let f = a[r * k + col] / d;
            if f == 0.0 {
                continue;
            }
            for j in col..k {
                a[r * k + j] -= f * a[col * k + j];
            }
            b[r] -= f * b[col];
        }
    }
    for col in (0..k).rev() {
        let d = a[col * k + col];
        if d.abs() < 1e-300 {
            b[col] = 0.0;
            continue;
        }
        let mut s = b[col];
        for j in (col + 1)..k {
            s -= a[col * k + j] * b[j];
        }
        b[col] = s / d;
    }
}

/// DEIM point selection over row-major `modes` (`n x r`): returns `r`
/// distinct point indices, greedily maximizing the interpolation residual.
pub fn deim_points(modes: &[f64], n: usize, r: usize) -> Vec<usize> {
    assert_eq!(modes.len(), n * r, "modes shape mismatch");
    assert!(r >= 1, "need at least one mode");
    let col = |k: usize| -> Vec<f64> { (0..n).map(|p| modes[p * r + k]).collect() };
    let mut points = Vec::with_capacity(r);
    // First point: argmax |phi_0|.
    let u0 = col(0);
    let first = u0
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    points.push(first);
    for k in 1..r {
        // Solve U[P, :k] c = u_k[P], residual = u_k - U[:, :k] c.
        let uk = col(k);
        let kk = points.len();
        let mut a = vec![0.0; kk * kk];
        let mut b = vec![0.0; kk];
        for (ri, &p) in points.iter().enumerate() {
            for ci in 0..kk {
                a[ri * kk + ci] = modes[p * r + ci];
            }
            b[ri] = uk[p];
        }
        solve_small(&mut a, &mut b, kk);
        let mut best = (0usize, -1.0f64);
        for p in 0..n {
            if points.contains(&p) {
                continue;
            }
            let mut approx = 0.0;
            for ci in 0..kk {
                approx += modes[p * r + ci] * b[ci];
            }
            let res = (uk[p] - approx).abs();
            if res > best.1 {
                best = (p, res);
            }
        }
        points.push(best.0);
    }
    points
}

/// POD/DEIM sampling baseline: treats each feature column as a "snapshot",
/// computes POD modes over the points, places DEIM points, and fills the
/// remaining budget by leverage score (row norm of the mode matrix).
#[derive(Clone, Copy, Debug, Default)]
pub struct PodSampler;

impl PointSampler for PodSampler {
    fn name(&self) -> &'static str {
        "pod-deim"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }
        let d = features.dim();
        let cols: Vec<Vec<f64>> = (0..d).map(|c| features.column(c)).collect();
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let (modes, _energy, kept) = pod_modes(&views, d);
        if kept == 0 {
            return (0..budget).collect();
        }
        // pod_modes allocates `alloc` columns but only `kept` are valid;
        // repack into a compact n x r matrix for DEIM.
        let alloc = d.min(views.len()).max(1);
        let r = kept.min(budget).max(1);
        let mut compact = vec![0.0; n * r];
        for p in 0..n {
            for k in 0..r {
                compact[p * r + k] = modes[p * alloc + k];
            }
        }
        let mut picked = deim_points(&compact, n, r);
        if picked.len() < budget {
            // Leverage-score fill.
            let mut lev: Vec<(f64, usize)> = (0..n)
                .map(|p| {
                    let s: f64 = (0..r)
                        .map(|k| compact[p * r + k] * compact[p * r + k])
                        .sum();
                    (s, p)
                })
                .collect();
            lev.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut taken = vec![false; n];
            for &p in &picked {
                taken[p] = true;
            }
            for (_, p) in lev {
                if picked.len() >= budget {
                    break;
                }
                if !taken[p] {
                    taken[p] = true;
                    picked.push(p);
                }
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::validate_selection;
    use rand::SeedableRng;

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2, 30);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = (vecs[0], vecs[2]);
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0.0 - v0.1).abs() < 1e-8 || (v0.0 + v0.1).abs() < 1e-8);
    }

    #[test]
    fn jacobi_eigenvalues_sum_to_trace() {
        let m = 5;
        let mut mat = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                mat[i * m + j] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
        }
        let (vals, _) = jacobi_eigen(&mat, m, 50);
        let trace: f64 = (0..m).map(|i| mat[i * m + i]).sum();
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
        // Sorted descending.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn pod_recovers_rank_one_field() {
        // Snapshots are multiples of one profile -> exactly one nonzero mode.
        let base: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let s1: Vec<f64> = base.iter().map(|v| 2.0 * v).collect();
        let s2: Vec<f64> = base.iter().map(|v| -1.0 * v).collect();
        let s3: Vec<f64> = base.iter().map(|v| 0.5 * v).collect();
        let (modes, energy, kept) = pod_modes(&[&s1, &s2, &s3], 3);
        assert_eq!(
            kept, 1,
            "rank-1 data must keep one mode (energies {energy:?})"
        );
        // Mode is proportional to base (normalized).
        let norm: f64 = base.iter().map(|v| v * v).sum::<f64>().sqrt();
        for (p, &b) in base.iter().enumerate() {
            let expect = b / norm;
            let got = modes[p * 3]; // r = 3 columns allocated, col 0 valid
            assert!(
                (got - expect).abs() < 1e-8 || (got + expect).abs() < 1e-8,
                "p={p}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn pod_modes_are_orthonormal() {
        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).cos()).collect();
        let c: Vec<f64> = (0..64)
            .map(|i| a[i] + 0.3 * b[i] + (i as f64 * 1.3).sin() * 0.1)
            .collect();
        let (modes, _, kept) = pod_modes(&[&a, &b, &c], 3);
        for k1 in 0..kept {
            for k2 in 0..kept {
                let dot: f64 = (0..64).map(|p| modes[p * 3 + k1] * modes[p * 3 + k2]).sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "({k1},{k2}) dot {dot}");
            }
        }
    }

    #[test]
    fn deim_picks_mode_extrema() {
        // Single mode: DEIM's first point is the argmax of |mode|.
        let n = 40;
        let mode: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let argmax = mode
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
            .unwrap()
            .0;
        let pts = deim_points(&mode, n, 1);
        assert_eq!(pts, vec![argmax]);
    }

    #[test]
    fn deim_points_are_distinct() {
        let n = 60;
        let r = 4;
        let mut modes = vec![0.0; n * r];
        for p in 0..n {
            for k in 0..r {
                modes[p * r + k] = ((p * (k + 1)) as f64 * 0.13).sin();
            }
        }
        let pts = deim_points(&modes, n, r);
        let mut s = pts.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), r);
    }

    #[test]
    fn pod_sampler_contract() {
        let data: Vec<f64> = (0..300 * 3)
            .map(|i| ((i * 31) % 17) as f64 * 0.1 + if i % 151 == 0 { 5.0 } else { 0.0 })
            .collect();
        let features = FeatureMatrix::new(vec!["a".into(), "b".into(), "c".into()], data);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for budget in [1usize, 10, 100, 299, 300] {
            let picked = PodSampler.select(&features, 0, budget, &mut rng);
            validate_selection(&picked, 300, budget);
            assert_eq!(picked.len(), budget.min(300));
        }
    }
}
