//! Phase-2 point samplers (paper §4, Fig. 3 right panel).
//!
//! Every sampler answers the same question: *given the feature rows of one
//! hypercube and a point budget, which rows are retained?* The trait-object
//! design mirrors the reference framework's "pluggable architecture that
//! makes it easy to integrate other sampling strategies".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sickle_field::FeatureMatrix;

use crate::entropy::{
    adjacency_matrix, allocate_budget, node_strengths, strength_weights, ClusterDistributions,
};
use crate::kmeans::{KMeans, KMeansConfig};

/// A strategy for selecting point rows within a hypercube.
pub trait PointSampler: Send + Sync {
    /// Short name used in configs and result tables (e.g. `"maxent"`).
    fn name(&self) -> &'static str;

    /// Selects up to `budget` distinct row indices from `features`.
    ///
    /// `cluster_col` is the column index of the K-means cluster variable
    /// (ignored by methods that don't cluster). Implementations must return
    /// distinct indices, each `< features.len()`, and must return all rows
    /// when `budget >= features.len()`.
    fn select(
        &self,
        features: &FeatureMatrix,
        cluster_col: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize>;
}

/// Keep every point — the paper's `Xfull` dense baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullSampler;

impl PointSampler for FullSampler {
    fn name(&self) -> &'static str {
        "full"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        _budget: usize,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        (0..features.len()).collect()
    }
}

/// Uniform random sampling without replacement (`Xrandom`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomSampler;

impl PointSampler for RandomSampler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        rand::seq::index::sample(rng, n, budget).into_vec()
    }
}

/// Latin-hypercube-style selection (`Xlhs`): equal-width bins along every
/// feature dimension; points are accepted greedily when they occupy
/// previously unfilled bins, spreading coverage across the whole feature
/// range in each dimension.
#[derive(Clone, Copy, Debug, Default)]
pub struct LhsSampler;

impl PointSampler for LhsSampler {
    fn name(&self) -> &'static str {
        "lhs"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 {
            return Vec::new();
        }
        let d = features.dim();
        let (mins, maxs) = features.column_ranges();
        let bin_of = |v: f64, j: usize| -> usize {
            let span = maxs[j] - mins[j];
            if span <= 0.0 {
                0
            } else {
                (((v - mins[j]) / span * budget as f64) as usize).min(budget - 1)
            }
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut filled = vec![vec![false; budget]; d];
        let mut picked = Vec::with_capacity(budget);
        let mut taken = vec![false; n];
        // Pass 1: strict — all of the point's bins must be free.
        for &i in &order {
            if picked.len() >= budget {
                break;
            }
            let row = features.row(i);
            if row
                .iter()
                .enumerate()
                .all(|(j, &v)| !filled[j][bin_of(v, j)])
            {
                for (j, &v) in row.iter().enumerate() {
                    filled[j][bin_of(v, j)] = true;
                }
                taken[i] = true;
                picked.push(i);
            }
        }
        // Pass 2: relaxed — at least one free bin.
        for &i in &order {
            if picked.len() >= budget {
                break;
            }
            if taken[i] {
                continue;
            }
            let row = features.row(i);
            if row
                .iter()
                .enumerate()
                .any(|(j, &v)| !filled[j][bin_of(v, j)])
            {
                for (j, &v) in row.iter().enumerate() {
                    filled[j][bin_of(v, j)] = true;
                }
                taken[i] = true;
                picked.push(i);
            }
        }
        // Pass 3: random fill.
        for &i in &order {
            if picked.len() >= budget {
                break;
            }
            if !taken[i] {
                taken[i] = true;
                picked.push(i);
            }
        }
        picked
    }
}

/// Deterministic uniform-stride selection (`Xuniform`): every `n/budget`-th
/// point in grid order — the naive cadence baseline of the paper's Fig. 9
/// MATEY study and its temporal-sampling discussion.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformStrideSampler;

impl PointSampler for UniformStrideSampler {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 {
            return Vec::new();
        }
        (0..budget).map(|i| i * n / budget).collect()
    }
}

/// Quantile-stratified sampling on the cluster variable (`Xstratified`):
/// equal-count strata, equal budget per stratum.
#[derive(Clone, Copy, Debug)]
pub struct StratifiedSampler {
    /// Number of quantile strata.
    pub strata: usize,
}

impl Default for StratifiedSampler {
    fn default() -> Self {
        StratifiedSampler { strata: 10 }
    }
}

impl PointSampler for StratifiedSampler {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        cluster_col: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }
        let strata = self.strata.max(1).min(n);
        let values = features.column(cluster_col);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Equal-count strata boundaries over the sorted order.
        let weights = vec![1.0 / strata as f64; strata];
        let caps: Vec<usize> = (0..strata)
            .map(|s| {
                let start = s * n / strata;
                let end = (s + 1) * n / strata;
                end - start
            })
            .collect();
        let alloc = allocate_budget(&weights, &caps, budget);
        let mut picked = Vec::with_capacity(budget);
        for (s, &take) in alloc.iter().enumerate() {
            let start = s * n / strata;
            let end = (s + 1) * n / strata;
            let members = &order[start..end];
            let chosen = rand::seq::index::sample(rng, members.len(), take.min(members.len()));
            picked.extend(chosen.into_iter().map(|j| members[j]));
        }
        picked
    }
}

/// Importance sampling on the cluster variable (named alongside random,
/// stratified, and LHS in paper §4's opening list): each point's retention
/// probability is proportional to `|q_i − median(q)|^alpha`, drawn without
/// replacement via Efraimidis–Spirakis exponential keys. `alpha = 1` is
/// plain deviation-weighted importance; larger `alpha` sharpens toward
/// extremes.
#[derive(Clone, Copy, Debug)]
pub struct ImportanceSampler {
    /// Deviation exponent.
    pub alpha: f64,
}

impl Default for ImportanceSampler {
    fn default() -> Self {
        ImportanceSampler { alpha: 1.0 }
    }
}

impl PointSampler for ImportanceSampler {
    fn name(&self) -> &'static str {
        "importance"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        cluster_col: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        use rand::Rng;
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }
        let values = features.column(cluster_col);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[n / 2];
        // A-Res keys: key = u^(1/w); top-`budget` keys form the sample.
        let mut keyed: Vec<(f64, usize)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let w = (v - median).abs().powf(self.alpha).max(1e-12);
                let u: f64 = rng.gen::<f64>().max(1e-15);
                (u.powf(1.0 / w), i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        keyed.truncate(budget);
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

/// Maximum-entropy point selection (`Xmaxent`, paper §4.1 phase 2):
/// mini-batch k-means on the cluster variable, per-cluster PDFs, KL
/// adjacency, node strengths, and strength-weighted budget allocation with
/// uniform draws inside each cluster.
#[derive(Clone, Copy, Debug)]
pub struct MaxEntSampler {
    /// Number of clusters (the paper uses 5–20 depending on dataset).
    pub num_clusters: usize,
    /// Histogram bins for the per-cluster PDFs (paper fixes 100).
    pub bins: usize,
    /// Strength temperature τ (1 = paper behaviour).
    pub temperature: f64,
    /// Mini-batch k-means configuration knobs.
    pub batch_size: usize,
    /// K-means iterations.
    pub iterations: usize,
}

impl Default for MaxEntSampler {
    fn default() -> Self {
        MaxEntSampler {
            num_clusters: 20,
            bins: 100,
            temperature: 1.0,
            batch_size: 1024,
            iterations: 30,
        }
    }
}

impl PointSampler for MaxEntSampler {
    fn name(&self) -> &'static str {
        "maxent"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        cluster_col: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        use rand::Rng;
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }
        let values = features.column(cluster_col);
        let km = KMeans::fit(
            &values,
            1,
            &KMeansConfig {
                k: self.num_clusters,
                batch_size: self.batch_size,
                iterations: self.iterations,
                seed: rng.gen(),
            },
        );
        let labels = km.assign(&values);
        let dists = ClusterDistributions::estimate(&values, &labels, km.k, self.bins);
        let strengths = node_strengths(&adjacency_matrix(&dists));
        let weights = strength_weights(&strengths, self.temperature);
        let alloc = allocate_budget(&weights, &dists.sizes, budget);

        // Group member indices per cluster, then draw uniformly within each.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); km.k];
        for (i, &l) in labels.iter().enumerate() {
            members[l].push(i);
        }
        let mut picked = Vec::with_capacity(budget);
        for (c, &take) in alloc.iter().enumerate() {
            let m = &members[c];
            let take = take.min(m.len());
            let chosen = rand::seq::index::sample(rng, m.len(), take);
            picked.extend(chosen.into_iter().map(|j| m[j]));
        }
        picked
    }
}

/// Validates a sampler result against the trait contract; shared by tests
/// and property tests.
pub fn validate_selection(indices: &[usize], n: usize, budget: usize) {
    assert!(indices.len() <= n);
    if budget >= n {
        assert_eq!(
            indices.len(),
            n,
            "must return all rows when budget covers them"
        );
    }
    let mut seen = vec![false; n];
    for &i in indices {
        assert!(i < n, "index {i} out of range {n}");
        assert!(!seen[i], "duplicate index {i}");
        seen[i] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Bimodal 1D features: a dense blob at 0 and a rare tail at 10.
    fn bimodal(n: usize, tail_frac: f64) -> FeatureMatrix {
        let tail = (n as f64 * tail_frac) as usize;
        let mut data = Vec::with_capacity(n);
        for i in 0..n - tail {
            data.push((i % 100) as f64 * 0.001);
        }
        for i in 0..tail {
            data.push(10.0 + (i % 10) as f64 * 0.01);
        }
        FeatureMatrix::new(vec!["q".into()], data)
    }

    fn all_samplers() -> Vec<Box<dyn PointSampler>> {
        vec![
            Box::new(FullSampler),
            Box::new(RandomSampler),
            Box::new(LhsSampler),
            Box::new(StratifiedSampler::default()),
            Box::new(MaxEntSampler {
                num_clusters: 5,
                bins: 50,
                ..Default::default()
            }),
        ]
    }

    #[test]
    fn all_samplers_satisfy_contract() {
        let features = bimodal(500, 0.05);
        for s in all_samplers() {
            for &budget in &[0usize, 1, 50, 499, 500, 1000] {
                let mut rng = StdRng::seed_from_u64(1);
                let idx = s.select(&features, 0, budget, &mut rng);
                if s.name() == "full" {
                    assert_eq!(idx.len(), 500);
                } else {
                    validate_selection(&idx, 500, budget);
                    assert_eq!(idx.len(), budget.min(500), "{} budget {budget}", s.name());
                }
            }
        }
    }

    #[test]
    fn maxent_overweights_rare_tail() {
        // 5% of the data is a far-away tail; MaxEnt should retain a much
        // larger tail share than random does at a 10% budget.
        let n = 2000;
        let features = bimodal(n, 0.05);
        let budget = n / 10;
        let tail_lo = 5.0;
        let count_tail = |idx: &[usize]| {
            idx.iter()
                .filter(|&&i| features.row(i)[0] > tail_lo)
                .count() as f64
                / idx.len() as f64
        };
        let mut maxent_frac = 0.0;
        let mut random_frac = 0.0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = MaxEntSampler {
                num_clusters: 5,
                bins: 50,
                ..Default::default()
            }
            .select(&features, 0, budget, &mut rng);
            maxent_frac += count_tail(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            let r = RandomSampler.select(&features, 0, budget, &mut rng);
            random_frac += count_tail(&r);
        }
        maxent_frac /= 5.0;
        random_frac /= 5.0;
        assert!(
            maxent_frac > 2.0 * random_frac,
            "maxent tail {maxent_frac:.3} vs random tail {random_frac:.3}"
        );
    }

    #[test]
    fn stratified_covers_all_quantiles() {
        let features = bimodal(1000, 0.10);
        let mut rng = StdRng::seed_from_u64(2);
        let idx = StratifiedSampler { strata: 10 }.select(&features, 0, 100, &mut rng);
        // Tail points occupy the top decile; stratified must include some.
        let tail = idx.iter().filter(|&&i| features.row(i)[0] > 5.0).count();
        assert!(tail >= 5, "stratified picked {tail} tail points");
    }

    #[test]
    fn lhs_spreads_across_range() {
        let features = bimodal(1000, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let idx = LhsSampler.select(&features, 0, 20, &mut rng);
        let vals: Vec<f64> = idx.iter().map(|&i| features.row(i)[0]).collect();
        let low = vals.iter().filter(|&&v| v < 5.0).count();
        let high = vals.iter().filter(|&&v| v >= 5.0).count();
        assert!(
            low > 0 && high > 0,
            "LHS must cover both modes: {low}/{high}"
        );
    }

    #[test]
    fn random_is_unbiased_on_average() {
        let n = 1000;
        let features = bimodal(n, 0.10);
        let mut total_tail = 0.0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let idx = RandomSampler.select(&features, 0, 100, &mut rng);
            total_tail += idx.iter().filter(|&&i| features.row(i)[0] > 5.0).count() as f64;
        }
        let mean_tail = total_tail / 20.0;
        assert!(
            (mean_tail - 10.0).abs() < 4.0,
            "mean tail picks {mean_tail}"
        );
    }

    #[test]
    fn importance_prefers_deviant_points() {
        let n = 1000;
        let features = bimodal(n, 0.05); // tail at 10.0, bulk near 0
        let mut rng = StdRng::seed_from_u64(5);
        let idx = ImportanceSampler::default().select(&features, 0, 100, &mut rng);
        validate_selection(&idx, n, 100);
        let tail = idx.iter().filter(|&&i| features.row(i)[0] > 5.0).count();
        // 5% tail in the source, |q - median| weighting must boost it.
        assert!(tail >= 30, "importance picked only {tail} tail points");
    }

    #[test]
    fn importance_contract_on_constant_data() {
        let features = FeatureMatrix::new(vec!["q".into()], vec![2.0; 50]);
        let mut rng = StdRng::seed_from_u64(6);
        let idx = ImportanceSampler::default().select(&features, 0, 10, &mut rng);
        validate_selection(&idx, 50, 10);
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn maxent_handles_constant_data() {
        let features = FeatureMatrix::new(vec!["q".into()], vec![1.0; 100]);
        let mut rng = StdRng::seed_from_u64(4);
        let idx = MaxEntSampler::default().select(&features, 0, 10, &mut rng);
        validate_selection(&idx, 100, 10);
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn sampler_names_are_distinct() {
        let names: Vec<&str> = all_samplers().iter().map(|s| s.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
