//! Streaming (in-situ) sampling — the paper's "integration with in-situ,
//! streaming, and online training frameworks like SmartSim" extension.
//!
//! A solver produces points one at a time; nothing can be revisited and
//! memory is bounded by the budget. [`StreamingSampler`] keeps a per-bin
//! reservoir over the cluster variable: a short calibration prefix fixes
//! the binning range, every subsequent point undergoes classic reservoir
//! sampling *within its bin*, and at [`finish`](StreamingSampler::finish)
//! the budget is allocated across bins by inverse-frequency weighting —
//! the streaming analogue of entropy-weighted selection, over-retaining
//! rare (tail) bins exactly as batch MaxEnt does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::entropy::allocate_budget;

/// One reservoir entry: the point's stream index and its feature row.
#[derive(Clone, Debug)]
struct Kept {
    index: usize,
    features: Vec<f64>,
}

/// Bounded-memory streaming sampler over a scalar cluster variable.
pub struct StreamingSampler {
    bins: usize,
    budget: usize,
    /// Per-bin reservoir capacity (bounded memory: `bins * cap`).
    cap: usize,
    /// Inverse-frequency temperature (1 = proportional to rarity).
    temperature: f64,
    calibration: Vec<(usize, f64, Vec<f64>)>,
    calibration_size: usize,
    lo: f64,
    hi: f64,
    calibrated: bool,
    reservoirs: Vec<Vec<Kept>>,
    counts: Vec<u64>,
    seen: usize,
    rng: StdRng,
}

impl StreamingSampler {
    /// Creates a sampler retaining `budget` of the stream, binning the
    /// cluster variable into `bins` bins whose range is fixed after
    /// `calibration_size` points.
    ///
    /// # Panics
    /// Panics on zero bins/budget.
    pub fn new(budget: usize, bins: usize, calibration_size: usize, seed: u64) -> Self {
        assert!(bins > 0 && budget > 0, "degenerate streaming sampler");
        // Per-bin capacity equals the budget so the budget stays satisfiable
        // even when one bin holds nearly everything; memory is bounded by
        // `bins * budget` regardless of stream length.
        let cap = budget;
        StreamingSampler {
            bins,
            budget,
            cap,
            temperature: 1.0,
            calibration: Vec::with_capacity(calibration_size),
            calibration_size: calibration_size.max(1),
            lo: 0.0,
            hi: 1.0,
            calibrated: false,
            reservoirs: vec![Vec::new(); bins],
            counts: vec![0; bins],
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the rarity temperature (builder style); 0 = uniform across
    /// occupied bins, 1 = proportional to inverse frequency.
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Number of points observed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Current bounded memory use in retained points.
    pub fn retained(&self) -> usize {
        self.reservoirs.iter().map(Vec::len).sum::<usize>() + self.calibration.len()
    }

    #[inline]
    fn bin_of(&self, v: f64) -> usize {
        sickle_simd::bin_index(v, self.lo, self.hi, self.bins)
    }

    fn calibrate(&mut self) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, v, _) in &self.calibration {
            if v.is_finite() {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
        }
        if !lo.is_finite() || hi <= lo {
            lo = 0.0;
            hi = 1.0;
        }
        // Widen: the stream will exceed the prefix's range.
        let span = hi - lo;
        self.lo = lo - 0.25 * span;
        self.hi = hi + 0.25 * span;
        self.calibrated = true;
        let staged: Vec<(usize, f64, Vec<f64>)> = std::mem::take(&mut self.calibration);
        for (index, value, features) in staged {
            self.admit(index, value, features);
        }
    }

    fn admit(&mut self, index: usize, value: f64, features: Vec<f64>) {
        let b = self.bin_of(value);
        self.counts[b] += 1;
        let res = &mut self.reservoirs[b];
        if res.len() < self.cap {
            res.push(Kept { index, features });
        } else {
            // Classic reservoir replacement: keep each of the bin's points
            // with equal probability cap/count.
            let j = self.rng.gen_range(0..self.counts[b]) as usize;
            if j < self.cap {
                res[j] = Kept { index, features };
            }
        }
    }

    /// Observes one point: its stream `index`, cluster-variable `value`,
    /// and feature row.
    pub fn push(&mut self, index: usize, value: f64, features: &[f64]) {
        self.seen += 1;
        if !self.calibrated {
            self.calibration.push((index, value, features.to_vec()));
            if self.calibration.len() >= self.calibration_size {
                self.calibrate();
            }
            return;
        }
        self.admit(index, value, features.to_vec());
    }

    /// Finalizes the stream: allocates the budget across bins by
    /// inverse-frequency weights and returns `(indices, feature_rows)`.
    pub fn finish(mut self) -> (Vec<usize>, Vec<Vec<f64>>) {
        if !self.calibrated {
            self.calibrate();
        }
        let weights: Vec<f64> = self
            .counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0.0
                } else {
                    (1.0 / c as f64).powf(self.temperature)
                }
            })
            .collect();
        let caps: Vec<usize> = self.reservoirs.iter().map(Vec::len).collect();
        let alloc = allocate_budget(&weights, &caps, self.budget);
        let mut indices = Vec::with_capacity(self.budget);
        let mut rows = Vec::with_capacity(self.budget);
        for (res, take) in self.reservoirs.into_iter().zip(alloc) {
            for kept in res.into_iter().take(take) {
                indices.push(kept.index);
                rows.push(kept.features);
            }
        }
        (indices, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A skewed stream: 98% near zero, 2% rare tail at 10.
    fn skewed_stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 50 == 0 {
                    10.0 + (i % 7) as f64 * 0.01
                } else {
                    (i % 100) as f64 * 0.001
                }
            })
            .collect()
    }

    #[test]
    fn respects_budget_and_memory_bound() {
        let stream = skewed_stream(10_000);
        let budget = 200;
        let mut s = StreamingSampler::new(budget, 20, 100, 1);
        for (i, &v) in stream.iter().enumerate() {
            s.push(i, v, &[v]);
            assert!(s.retained() <= 20 * budget + 100, "memory blew up");
        }
        assert_eq!(s.seen(), 10_000);
        let (idx, rows) = s.finish();
        assert_eq!(idx.len(), budget, "kept {}", idx.len());
        assert_eq!(idx.len(), rows.len());
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), idx.len(), "duplicate stream indices");
    }

    #[test]
    fn overweights_rare_tail_like_maxent() {
        let stream = skewed_stream(10_000);
        let mut s = StreamingSampler::new(200, 20, 100, 2);
        for (i, &v) in stream.iter().enumerate() {
            s.push(i, v, &[v]);
        }
        let (_, rows) = s.finish();
        let tail = rows.iter().filter(|r| r[0] > 5.0).count() as f64 / rows.len() as f64;
        // Tail is 2% of the stream; inverse-frequency retention must boost
        // it several-fold.
        assert!(tail > 0.10, "tail fraction {tail}");
    }

    #[test]
    fn deterministic_under_seed() {
        let stream = skewed_stream(5_000);
        let run = |seed| {
            let mut s = StreamingSampler::new(100, 10, 50, seed);
            for (i, &v) in stream.iter().enumerate() {
                s.push(i, v, &[v]);
            }
            s.finish().0
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn short_stream_finishes_before_calibration() {
        let mut s = StreamingSampler::new(10, 5, 1000, 0);
        for i in 0..8 {
            s.push(i, i as f64, &[i as f64]);
        }
        let (idx, _) = s.finish();
        assert!(!idx.is_empty());
        assert!(idx.len() <= 8);
    }

    #[test]
    fn temperature_zero_is_uniform_over_bins() {
        let stream = skewed_stream(5_000);
        let mut s = StreamingSampler::new(100, 10, 100, 3).with_temperature(0.0);
        for (i, &v) in stream.iter().enumerate() {
            s.push(i, v, &[v]);
        }
        let (_, rows) = s.finish();
        // Occupied bins are the dense cluster (bins near 0) and the tail
        // bin; uniform split keeps roughly half and half.
        let tail = rows.iter().filter(|r| r[0] > 5.0).count() as f64 / rows.len() as f64;
        assert!(tail > 0.2, "uniform-over-bins tail {tail}");
    }
}
