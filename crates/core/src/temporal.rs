//! Temporal (snapshot-level) intelligent sampling (paper §4.3).
//!
//! CFD outputs are usually written at a fixed cadence chosen *a priori*,
//! so periodic flows (vortex shedding in OF2D) produce many snapshots that
//! occupy the same region of the input PDF. This module scores snapshots by
//! distributional novelty and keeps only the informative ones: a greedy
//! selection that repeatedly adds the snapshot whose feature PDF diverges
//! most (max KL) from the mixture of already-selected snapshots.

use sickle_field::stats::{kl_divergence, shannon_entropy};
use sickle_field::{Dataset, Histogram};

/// Uniform-stride baseline: `count` snapshot indices evenly spaced over
/// `total` (always includes index 0).
///
/// # Panics
/// Panics if `count == 0` or `count > total`.
pub fn uniform_stride(total: usize, count: usize) -> Vec<usize> {
    assert!(
        count > 0 && count <= total,
        "invalid stride selection {count}/{total}"
    );
    (0..count).map(|i| i * total / count).collect()
}

/// Per-snapshot histograms of `var` over a shared global range.
fn snapshot_histograms(dataset: &Dataset, var: &str, bins: usize) -> Vec<Histogram> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in &dataset.snapshots {
        for &v in s.expect_var(var) {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    dataset
        .snapshots
        .iter()
        .map(|s| {
            let mut h = Histogram::new(lo, hi, bins);
            h.extend(s.expect_var(var));
            h
        })
        .collect()
}

/// Greedy maximum-novelty snapshot selection: seeds with the
/// highest-entropy snapshot, then repeatedly adds the snapshot maximizing
/// `KL(candidate ‖ mixture-of-selected)`. Returns `count` snapshot indices
/// in selection order.
///
/// # Panics
/// Panics if `count == 0` or exceeds the number of snapshots.
pub fn novelty_select(dataset: &Dataset, var: &str, count: usize, bins: usize) -> Vec<usize> {
    let total = dataset.num_snapshots();
    assert!(
        count > 0 && count <= total,
        "invalid selection {count}/{total}"
    );
    let hists = snapshot_histograms(dataset, var, bins);
    let pmfs: Vec<Vec<f64>> = hists.iter().map(Histogram::pmf).collect();

    // Seed: highest-entropy snapshot (broadest coverage on its own).
    let seed = pmfs
        .iter()
        .map(|p| shannon_entropy(p))
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut selected = vec![seed];
    let mut mixture = hists[seed].clone();

    while selected.len() < count {
        let mix_pmf = mixture.pmf();
        let mut best = None;
        let mut best_kl = f64::NEG_INFINITY;
        for (i, p) in pmfs.iter().enumerate() {
            if selected.contains(&i) {
                continue;
            }
            let kl = kl_divergence(p, &mix_pmf);
            if kl > best_kl {
                best_kl = kl;
                best = Some(i);
            }
        }
        let pick = best.expect("count <= total guarantees a candidate");
        selected.push(pick);
        mixture.merge(&hists[pick]);
    }
    selected
}

/// Adaptive online snapshot selection — the paper's "adaptive temporal
/// sampling responsive to transient phenomena" extension.
///
/// Snapshots arrive in time order; one is kept whenever its feature PDF
/// diverges from the mixture of *already kept* snapshots by more than
/// `threshold` nats (the first snapshot is always kept). Steady/periodic
/// stretches therefore collapse to a few representatives while transients
/// are always captured, without knowing the snapshot count in advance.
pub fn adaptive_select(dataset: &Dataset, var: &str, bins: usize, threshold: f64) -> Vec<usize> {
    assert!(dataset.num_snapshots() > 0, "empty dataset");
    let hists = snapshot_histograms(dataset, var, bins);
    let mut selected = vec![0usize];
    let mut mixture = hists[0].clone();
    for (i, h) in hists.iter().enumerate().skip(1) {
        let kl = kl_divergence(&h.pmf(), &mixture.pmf());
        if kl > threshold {
            selected.push(i);
            mixture.merge(h);
        }
    }
    selected
}

/// Per-snapshot novelty scores against the full-dataset mixture — a cheap
/// diagnostic for plotting which snapshots carry new information.
pub fn novelty_scores(dataset: &Dataset, var: &str, bins: usize) -> Vec<f64> {
    let hists = snapshot_histograms(dataset, var, bins);
    let mut mixture = hists[0].clone();
    for h in &hists[1..] {
        mixture.merge(h);
    }
    let mix_pmf = mixture.pmf();
    hists
        .iter()
        .map(|h| kl_divergence(&h.pmf(), &mix_pmf))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_field::{DatasetMeta, Grid3, Snapshot};

    /// Builds a dataset whose snapshots mostly repeat one distribution, with
    /// one "novel" snapshot at a shifted range.
    fn repetitive_dataset(novel_at: usize, total: usize) -> Dataset {
        let grid = Grid3::new(4, 4, 4, 1.0, 1.0, 1.0);
        let meta = DatasetMeta::new("T", "test", "q", &["q"], &[]);
        let mut d = Dataset::new(meta);
        for s in 0..total {
            let data: Vec<f64> = (0..64)
                .map(|i| {
                    if s == novel_at {
                        5.0 + (i % 8) as f64 * 0.1 // shifted distribution
                    } else {
                        (i % 8) as f64 * 0.1 + (s % 3) as f64 * 0.01 // repeats
                    }
                })
                .collect();
            d.push(Snapshot::new(grid, s as f64).with_var("q", data));
        }
        d
    }

    #[test]
    fn uniform_stride_is_even() {
        assert_eq!(uniform_stride(10, 5), vec![0, 2, 4, 6, 8]);
        assert_eq!(uniform_stride(10, 10), (0..10).collect::<Vec<_>>());
        assert_eq!(uniform_stride(7, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "invalid stride")]
    fn uniform_stride_rejects_zero() {
        let _ = uniform_stride(10, 0);
    }

    #[test]
    fn novelty_select_finds_the_novel_snapshot() {
        let d = repetitive_dataset(7, 12);
        let sel = novelty_select(&d, "q", 2, 32);
        assert!(sel.contains(&7), "novel snapshot 7 not in {sel:?}");
    }

    #[test]
    fn novelty_select_returns_requested_count_distinct() {
        let d = repetitive_dataset(3, 10);
        let sel = novelty_select(&d, "q", 6, 32);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn novelty_scores_peak_at_novel_snapshot() {
        let d = repetitive_dataset(4, 10);
        let scores = novelty_scores(&d, "q", 32);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 4, "scores {scores:?}");
    }

    #[test]
    fn adaptive_select_catches_transient() {
        let d = repetitive_dataset(7, 15);
        let sel = adaptive_select(&d, "q", 32, 0.5);
        assert!(sel.contains(&0), "first snapshot always kept");
        assert!(sel.contains(&7), "transient missed: {sel:?}");
        // Repetitive stretches collapse: far fewer than all snapshots kept.
        assert!(sel.len() < 8, "kept too many: {sel:?}");
    }

    #[test]
    fn adaptive_threshold_controls_count() {
        let d = repetitive_dataset(5, 12);
        let loose = adaptive_select(&d, "q", 32, 1e-6);
        // KL against epsilon-smoothed empty bins tops out near ln(1/eps) ~ 28,
        // so "unreachable" means beyond that.
        let tight = adaptive_select(&d, "q", 32, 100.0);
        assert!(loose.len() >= tight.len());
        assert_eq!(tight, vec![0], "unreachable threshold keeps only the seed");
    }

    #[test]
    fn selecting_all_snapshots_is_permutation() {
        let d = repetitive_dataset(1, 6);
        let mut sel = novelty_select(&d, "q", 6, 16);
        sel.sort_unstable();
        assert_eq!(sel, (0..6).collect::<Vec<_>>());
    }
}
