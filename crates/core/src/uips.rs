//! Uniform-in-phase-space (UIPS) sampling, after Hassanaly et al. (2023).
//!
//! The goal is a sample whose *phase-space* (feature-space) distribution is
//! uniform over the occupied region: estimate the data density `ρ(x)` and
//! accept each point with probability `p_i = min(1, C/ρ_i)`, with `C` chosen
//! so the expected accepted count equals the budget.
//!
//! The reference implementation offers normalizing flows or binning for the
//! density estimate; like the paper's temporal pipeline we use binning
//! ("binning was adopted ... due to implementation simplicity"): a joint
//! histogram over all feature dimensions, held in a hash map so only
//! occupied bins cost memory. `C` is found by bisection (the acceptance
//! count is monotone in `C`), and an optional refinement loop re-estimates
//! the density on the accepted set — the knob paper §4.2's iterative flows
//! would tune.

use rand::rngs::StdRng;
use sickle_field::FeatureMatrix;
use std::collections::HashMap;

use crate::samplers::PointSampler;

/// UIPS sampler configuration.
#[derive(Clone, Copy, Debug)]
pub struct UipsSampler {
    /// Bins per feature dimension for the joint density histogram.
    pub bins_per_dim: usize,
    /// Density-refinement iterations (0 = single-shot acceptance).
    pub refine_iterations: usize,
}

impl Default for UipsSampler {
    fn default() -> Self {
        UipsSampler {
            bins_per_dim: 10,
            refine_iterations: 1,
        }
    }
}

/// Joint-histogram bin key for a feature row.
fn bin_key(row: &[f64], mins: &[f64], maxs: &[f64], bins: usize) -> u64 {
    let mut key: u64 = 0;
    for (j, &v) in row.iter().enumerate() {
        let span = maxs[j] - mins[j];
        let b = if span <= 0.0 {
            0
        } else {
            (((v - mins[j]) / span * bins as f64) as usize).min(bins - 1)
        };
        key = key.wrapping_mul(1_000_003).wrapping_add(b as u64 + 1);
        let _ = j;
    }
    key
}

/// Finds the per-bin cap `c` such that `Σ min(count_b, c) ≈ budget` by
/// bisection (monotone in `c`).
fn solve_cap(counts: &[f64], budget: usize) -> f64 {
    let expected = |c: f64| -> f64 { counts.iter().map(|&k| k.min(c)).sum() };
    let max_c = counts.iter().cloned().fold(0.0, f64::max).max(1.0);
    let (mut lo, mut hi) = (0.0, max_c);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < budget as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Finds `C` such that `Σ min(1, C/ρ_i) ≈ budget` by bisection — the
/// continuous acceptance-probability form of the UIPS threshold, exposed for
/// diagnostic use and tested directly.
pub fn solve_threshold(rho: &[f64], budget: usize) -> f64 {
    let expected = |c: f64| -> f64 {
        rho.iter()
            .map(|&r| if r <= 0.0 { 1.0 } else { (c / r).min(1.0) })
            .sum()
    };
    let max_rho = rho.iter().cloned().fold(0.0, f64::max).max(1.0);
    let (mut lo, mut hi) = (0.0, max_rho);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < budget as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Groups row indices by joint-histogram bin.
fn group_by_bin(features: &FeatureMatrix, bins: usize) -> Vec<Vec<usize>> {
    let (mins, maxs) = features.column_ranges();
    let mut map: HashMap<u64, Vec<usize>> = HashMap::new();
    for i in 0..features.len() {
        map.entry(bin_key(features.row(i), &mins, &maxs, bins))
            .or_default()
            .push(i);
    }
    let mut groups: Vec<Vec<usize>> = map.into_values().collect();
    // Hash-map iteration order is nondeterministic; sort by first member for
    // reproducibility under a fixed seed.
    groups.sort_by_key(|g| g[0]);
    groups
}

impl PointSampler for UipsSampler {
    fn name(&self) -> &'static str {
        "uips"
    }

    fn select(
        &self,
        features: &FeatureMatrix,
        _c: usize,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        use rand::seq::SliceRandom;
        let n = features.len();
        if budget >= n {
            return (0..n).collect();
        }
        if budget == 0 || n == 0 {
            return Vec::new();
        }

        // Iterative refinement: if the binning is too coarse to spread the
        // budget (few occupied bins each holding a large quota), double the
        // resolution and re-bin, up to `refine_iterations` times. This is
        // the binned analogue of UIPS's iterative flow refinement.
        let mut bins = self.bins_per_dim.max(2);
        let mut groups = group_by_bin(features, bins);
        for _ in 0..self.refine_iterations {
            if groups.len() * 2 < budget {
                bins *= 2;
                groups = group_by_bin(features, bins);
            } else {
                break;
            }
        }

        // Solve the per-bin cap `c` so that sum(min(count_b, c)) == budget:
        // accepted samples are then uniform across occupied phase-space
        // bins, saturating only sparse bins.
        let counts: Vec<f64> = groups.iter().map(|g| g.len() as f64).collect();
        let cap = solve_cap(&counts, budget);
        let base = cap.floor();
        let mut quotas: Vec<usize> = counts.iter().map(|&c| c.min(base) as usize).collect();
        let mut assigned: usize = quotas.iter().sum();

        // Distribute the fractional remainder one-by-one among bins with
        // spare capacity, in shuffled order (unbiased tie-breaking).
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.shuffle(rng);
        let mut cursor = 0;
        while assigned < budget {
            let b = order[cursor % order.len()];
            if quotas[b] < groups[b].len() {
                quotas[b] += 1;
                assigned += 1;
            }
            cursor += 1;
            debug_assert!(cursor < order.len() * (budget + 2), "quota loop stuck");
        }

        // Draw uniformly within each bin.
        let mut picked = Vec::with_capacity(budget);
        for (g, &q) in groups.iter().zip(quotas.iter()) {
            if q == 0 {
                continue;
            }
            let chosen = rand::seq::index::sample(rng, g.len(), q.min(g.len()));
            picked.extend(chosen.into_iter().map(|j| g[j]));
        }
        picked
    }
}

/// Phase-space occupancy uniformity diagnostic (used for the paper's Fig. 4):
/// bins the selected rows into the same joint histogram and returns the
/// coefficient of variation of occupied-bin counts. Uniform coverage → low
/// CoV; clumping → high CoV.
pub fn phase_space_cov(features: &FeatureMatrix, indices: &[usize], bins_per_dim: usize) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let (mins, maxs) = features.column_ranges();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &i in indices {
        *counts
            .entry(bin_key(features.row(i), &mins, &maxs, bins_per_dim.max(2)))
            .or_insert(0) += 1;
    }
    let vals: Vec<f64> = counts.values().map(|&c| c as f64).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::{validate_selection, RandomSampler};
    use rand::SeedableRng;

    /// Heavily skewed 1D data: 95% in a dense blob, 5% spread wide.
    fn skewed(n: usize) -> FeatureMatrix {
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            if i % 20 == 0 {
                // Sparse points pseudo-uniform over 0..10.
                data.push((i.wrapping_mul(7919) % 1000) as f64 * 0.01);
            } else {
                data.push(5.0 + (i % 7) as f64 * 0.001); // dense blob at 5
            }
        }
        FeatureMatrix::new(vec!["q".into()], data)
    }

    #[test]
    fn contract_holds() {
        let features = skewed(800);
        for &budget in &[0usize, 1, 80, 799, 800, 2000] {
            let mut rng = StdRng::seed_from_u64(1);
            let idx = UipsSampler::default().select(&features, 0, budget, &mut rng);
            validate_selection(&idx, 800, budget);
            assert_eq!(idx.len(), budget.min(800));
        }
    }

    #[test]
    fn flattens_skewed_density() {
        // UIPS-selected points should cover phase space more uniformly than
        // a random draw from the skewed source.
        let features = skewed(2000);
        let budget = 150;
        let mut rng = StdRng::seed_from_u64(2);
        let uips = UipsSampler::default().select(&features, 0, budget, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let rand_idx = RandomSampler.select(&features, 0, budget, &mut rng);
        let cov_uips = phase_space_cov(&features, &uips, 10);
        let cov_rand = phase_space_cov(&features, &rand_idx, 10);
        assert!(
            cov_uips < 0.7 * cov_rand,
            "UIPS CoV {cov_uips:.3} should beat random CoV {cov_rand:.3}"
        );
    }

    #[test]
    fn threshold_solver_hits_budget() {
        let rho = vec![1.0, 1.0, 10.0, 10.0, 100.0];
        let c = solve_threshold(&rho, 3);
        let expected: f64 = rho.iter().map(|&r| (c / r).min(1.0)).sum();
        assert!((expected - 3.0).abs() < 1e-6, "expected {expected}");
    }

    #[test]
    fn uniform_data_acceptance_is_uniform() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let features = FeatureMatrix::new(vec!["q".into()], data);
        let mut rng = StdRng::seed_from_u64(3);
        let idx = UipsSampler::default().select(&features, 0, 100, &mut rng);
        // Every decile of the range should be populated.
        let mut deciles = [0usize; 10];
        for &i in &idx {
            let v = features.row(i)[0];
            deciles[((v * 10.0) as usize).min(9)] += 1;
        }
        assert!(deciles.iter().all(|&d| d > 0), "deciles {deciles:?}");
    }

    #[test]
    fn constant_features_dont_crash() {
        let features = FeatureMatrix::new(vec!["q".into()], vec![3.0; 50]);
        let mut rng = StdRng::seed_from_u64(4);
        let idx = UipsSampler::default().select(&features, 0, 10, &mut rng);
        validate_selection(&idx, 50, 10);
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn multidim_keys_distinguish_dims() {
        // (0.9, 0.1) and (0.1, 0.9) must land in different joint bins.
        let mins = vec![0.0, 0.0];
        let maxs = vec![1.0, 1.0];
        let a = bin_key(&[0.9, 0.1], &mins, &maxs, 10);
        let b = bin_key(&[0.1, 0.9], &mins, &maxs, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn phase_space_cov_zero_for_empty() {
        let features = skewed(10);
        assert_eq!(phase_space_cov(&features, &[], 10), 0.0);
    }
}
