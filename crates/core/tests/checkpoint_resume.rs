//! Checkpoint/resume semantics of `run_dataset_resumable`: snapshot shards
//! are written as the run progresses, a resumed run skips every snapshot
//! whose shard verifies against the manifest hash, and the restored output
//! is bit-identical to an uninterrupted `run_dataset`.

use std::path::PathBuf;

use sickle_core::pipeline::{
    run_dataset, run_dataset_resumable, CubeMethod, PointMethod, SamplingConfig, SamplingOutput,
    TemporalMethod,
};
use sickle_field::{Dataset, DatasetMeta, Grid3, Snapshot};

fn dataset(snapshots: usize) -> Dataset {
    let grid = Grid3::new(16, 16, 16, 1.0, 1.0, 1.0);
    let meta = DatasetMeta::new("T", "checkpoint test", "q", &["u", "q"], &[]);
    let mut d = Dataset::new(meta);
    for s in 0..snapshots {
        let u: Vec<f64> = (0..grid.len())
            .map(|i| ((i * 31 + s * 7) % 100) as f64 * 0.01)
            .collect();
        let q: Vec<f64> = (0..grid.len())
            .map(|i| {
                if i % 50 == s {
                    10.0
                } else {
                    ((i * 17 + s) % 100) as f64 * 0.001
                }
            })
            .collect();
        d.push(
            Snapshot::new(grid, s as f64)
                .with_var("u", u)
                .with_var("q", q),
        );
    }
    d
}

fn config() -> SamplingConfig {
    SamplingConfig {
        hypercubes: CubeMethod::MaxEnt,
        num_hypercubes: 4,
        cube_edge: 8,
        method: PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        num_samples: 51,
        cluster_var: "q".to_string(),
        feature_vars: vec!["u".to_string(), "q".to_string()],
        seed: 11,
        temporal: TemporalMethod::All,
    }
}

/// Fresh scratch directory per test (removed on entry, not exit, so a
/// failing test leaves its state behind for inspection).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sickle_ckpt_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_outputs_identical(a: &SamplingOutput, b: &SamplingOutput) {
    assert_eq!(a.sets.len(), b.sets.len(), "snapshot count");
    for (snap_a, snap_b) in a.sets.iter().zip(&b.sets) {
        assert_eq!(snap_a.len(), snap_b.len(), "cube count");
        for (sa, sb) in snap_a.iter().zip(snap_b) {
            assert_eq!(sa.hypercube, sb.hypercube);
            assert_eq!(sa.snapshot_index, sb.snapshot_index);
            assert_eq!(sa.indices, sb.indices);
            assert_eq!(sa.features.data, sb.features.data);
            assert_eq!(sa.features.names, sb.features.names);
        }
    }
}

#[test]
fn checkpointed_run_matches_plain_run() {
    let d = dataset(3);
    let cfg = config();
    let dir = scratch("matches_plain");
    let plain = run_dataset(&d, &cfg);
    let ckpt = run_dataset_resumable(&d, &cfg, &dir).unwrap();
    assert_outputs_identical(&plain, &ckpt);
    assert!(dir.join("manifest.json").exists());
    assert!(dir.join("snap_00000.sklshard").exists());
    assert!(dir.join("snap_00002.sklshard").exists());
}

#[test]
fn resume_skips_completed_snapshots() {
    let d = dataset(3);
    let cfg = config();
    let dir = scratch("resume_skips");
    let first = run_dataset_resumable(&d, &cfg, &dir).unwrap();

    // Tamper with the dataset. If the resumed run recomputed any snapshot,
    // its output would change; loading from checkpoint must preserve the
    // original results exactly.
    let mut tampered = dataset(3);
    for snap in &mut tampered.snapshots {
        for var in &mut snap.vars {
            for v in var.iter_mut() {
                *v += 100.0;
            }
        }
    }
    let resumed = run_dataset_resumable(&tampered, &cfg, &dir).unwrap();
    assert_outputs_identical(&first, &resumed);
}

#[test]
fn killing_between_snapshots_resumes_where_it_stopped() {
    // Simulate a process killed after two of three snapshots: run on the
    // truncated dataset first, then hand the full dataset to a fresh call
    // with the same checkpoint directory.
    let full = dataset(3);
    let truncated = dataset(2);
    let cfg = config();
    let dir = scratch("kill_between");
    let partial = run_dataset_resumable(&truncated, &cfg, &dir).unwrap();
    assert_eq!(partial.sets.len(), 2);

    let resumed = run_dataset_resumable(&full, &cfg, &dir).unwrap();
    let plain = run_dataset(&full, &cfg);
    assert_outputs_identical(&plain, &resumed);
}

#[test]
fn corrupt_shard_is_recomputed_not_trusted() {
    let d = dataset(2);
    let cfg = config();
    let dir = scratch("corrupt_shard");
    let first = run_dataset_resumable(&d, &cfg, &dir).unwrap();

    // Flip bytes in snapshot 1's shard; the manifest hash no longer matches.
    let shard = dir.join("snap_00001.sklshard");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&shard, bytes).unwrap();

    let resumed = run_dataset_resumable(&d, &cfg, &dir).unwrap();
    assert_outputs_identical(&first, &resumed);
    // The recomputed shard must verify again on a third run.
    let third = run_dataset_resumable(&d, &cfg, &dir).unwrap();
    assert_outputs_identical(&first, &third);
}

#[test]
fn foreign_config_checkpoint_is_ignored() {
    let d = dataset(2);
    let cfg = config();
    let dir = scratch("foreign_config");
    run_dataset_resumable(&d, &cfg, &dir).unwrap();

    // A different seed is a different run; its results must not be reused.
    let mut cfg2 = cfg.clone();
    cfg2.seed = 99;
    let fresh = run_dataset_resumable(&d, &cfg2, &dir).unwrap();
    let plain = run_dataset(&d, &cfg2);
    assert_outputs_identical(&plain, &fresh);
}

#[test]
fn temporal_selection_checkpoints_by_snapshot_index() {
    // Stride selection keeps snapshots {0, 2}; the checkpoint must key
    // shards by dataset snapshot index, not by position in the kept list.
    let d = dataset(4);
    let mut cfg = config();
    cfg.temporal = TemporalMethod::Stride { count: 2 };
    let dir = scratch("temporal_stride");
    let first = run_dataset_resumable(&d, &cfg, &dir).unwrap();
    assert_eq!(first.sets.len(), 2);
    assert!(dir.join("snap_00000.sklshard").exists());
    assert!(!dir.join("snap_00001.sklshard").exists());
    let resumed = run_dataset_resumable(&d, &cfg, &dir).unwrap();
    assert_outputs_identical(&first, &resumed);
    let plain = run_dataset(&d, &cfg);
    assert_outputs_identical(&plain, &first);
}
