//! Golden-regression test for the two-phase MaxEnt sampler: the phase-1
//! hypercube selection and phase-2 retained point indices on a seeded 16³
//! synthetic snapshot are pinned to a committed JSON file. Any algorithmic
//! drift — a changed RNG stream, a reordered reduction, a tweaked entropy
//! estimate — shows up as a readable diff, not a silent behavior change.
//!
//! To intentionally re-baseline after a deliberate algorithm change:
//!
//! ```text
//! SICKLE_UPDATE_GOLDEN=1 cargo test -p sickle-core --test golden_maxent
//! ```

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use sickle_cfd::synth::{generate, SynthConfig};
use sickle_core::pipeline::{
    run_snapshot, CubeMethod, PointMethod, SamplingConfig, TemporalMethod,
};

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct GoldenCube {
    /// Phase-1 selected hypercube id, in selection order.
    cube: usize,
    /// Phase-2 retained grid-point indices for this cube, in retention order.
    indices: Vec<usize>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    description: String,
    grid: Vec<usize>,
    synth_seed: usize,
    sampling_seed: usize,
    cubes: Vec<GoldenCube>,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("maxent_16cube.json")
}

fn compute_golden() -> Golden {
    let synth = SynthConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..SynthConfig::default()
    };
    let snap = generate(&synth, 42);
    let cfg = SamplingConfig {
        hypercubes: CubeMethod::MaxEnt,
        num_hypercubes: 4,
        cube_edge: 8,
        method: PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        num_samples: 40,
        cluster_var: "u".to_string(),
        feature_vars: vec!["u".to_string(), "v".to_string(), "w".to_string()],
        seed: 42,
        temporal: TemporalMethod::All,
    };
    let sets = run_snapshot(&snap, 0, &cfg);
    Golden {
        description: "MaxEnt phase-1 cube selection + phase-2 retained points, \
                      16^3 synthetic HIT snapshot (synth seed 42, sampling seed 42)"
            .to_string(),
        grid: vec![16, 16, 16],
        synth_seed: 42,
        sampling_seed: 42,
        cubes: sets
            .iter()
            .map(|s| GoldenCube {
                cube: s.hypercube.expect("phase-1 cube id"),
                indices: s.indices.clone(),
            })
            .collect(),
    }
}

/// A human-readable description of how `actual` drifted from `expected`.
fn diff_report(expected: &Golden, actual: &Golden) -> String {
    let mut report = String::new();
    let exp_cubes: Vec<usize> = expected.cubes.iter().map(|c| c.cube).collect();
    let act_cubes: Vec<usize> = actual.cubes.iter().map(|c| c.cube).collect();
    if exp_cubes != act_cubes {
        report.push_str(&format!(
            "phase-1 cube selection drifted:\n  expected {exp_cubes:?}\n  actual   {act_cubes:?}\n"
        ));
    }
    for (e, a) in expected.cubes.iter().zip(&actual.cubes) {
        if e.cube != a.cube || e.indices == a.indices {
            continue;
        }
        let first_diff = e
            .indices
            .iter()
            .zip(&a.indices)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| e.indices.len().min(a.indices.len()));
        report.push_str(&format!(
            "phase-2 points drifted in cube {}: {} expected vs {} actual points, \
             first difference at position {} (expected {:?}, actual {:?})\n",
            e.cube,
            e.indices.len(),
            a.indices.len(),
            first_diff,
            e.indices.get(first_diff),
            a.indices.get(first_diff),
        ));
    }
    report
}

#[test]
fn maxent_selection_matches_committed_golden() {
    let actual = compute_golden();
    let path = golden_path();
    if std::env::var("SICKLE_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(&path, json).unwrap();
        println!("golden regenerated at {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden at {} ({e}); regenerate with SICKLE_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let expected: Golden = serde_json::from_str(&text).expect("golden parses");
    if expected != actual {
        let report = diff_report(&expected, &actual);
        panic!(
            "MaxEnt sampling drifted from the committed golden.\n{report}\
             If this change is intentional, re-baseline with:\n  \
             SICKLE_UPDATE_GOLDEN=1 cargo test -p sickle-core --test golden_maxent"
        );
    }
}

#[test]
fn golden_run_is_reproducible_in_process() {
    // The golden only makes sense if the computation is deterministic within
    // one build; two back-to-back runs must agree exactly.
    assert_eq!(compute_golden(), compute_golden());
}
