//! # sickle-energy
//!
//! Deterministic energy accounting for the reproduction.
//!
//! The paper measures energy with Frontier's Cray PM counters. Those are
//! hardware-specific; the reproduction substitutes an explicit machine
//! model: every kernel reports FLOPs executed and bytes moved, and
//!
//! ```text
//! E = flops · e_flop + bytes · e_byte + t_modeled · P_idle
//! ```
//!
//! with constants calibrated to a Frontier node (MI250X + EPYC "Trento").
//! The paper's headline claims are *relative* energies (e.g. MaxEnt 85 kJ
//! vs. full 3183 kJ ⇒ 38×); those ratios are preserved because the dominant
//! term scales with `samples × parameters × epochs` — the paper's own cost
//! model (Eq. 3), implemented here as [`cost_to_train`].
//!
//! Meters are thread-safe (atomic counters) so parallel training workers and
//! rayon sampling kernels can record concurrently.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod report;

pub use report::EnergyReport;

/// Energy/performance constants for one machine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: String,
    /// Joules per double-precision-equivalent FLOP (≈10 pJ on MI250X-class
    /// accelerators; Kogge & Shalf 2013 give the 100× data-movement gap).
    pub energy_per_flop: f64,
    /// Joules per byte moved off-chip (≈1 nJ — the "over 100 times greater"
    /// movement cost the paper's introduction cites).
    pub energy_per_byte: f64,
    /// Idle/base power in watts attributed to the allocation while running.
    pub idle_power: f64,
    /// Sustained FLOP/s for modeled-time estimates.
    pub flops_per_sec: f64,
    /// Sustained bytes/s for modeled-time estimates.
    pub bytes_per_sec: f64,
}

impl MachineModel {
    /// One Frontier node: 4× MI250X (8 GCDs) + 64-core EPYC 7713.
    pub fn frontier_node() -> Self {
        MachineModel {
            name: "frontier-node".to_string(),
            energy_per_flop: 10e-12,
            energy_per_byte: 1e-9,
            idle_power: 600.0,
            // ~50 TF/s sustained DP per node (well under peak, as real
            // training achieves), ~10 TB/s aggregate HBM.
            flops_per_sec: 5.0e13,
            bytes_per_sec: 1.0e13,
        }
    }

    /// One MI250X graphics compute die (GCD) — the paper's per-MPI-rank
    /// training unit (8 ranks/node).
    pub fn frontier_gcd() -> Self {
        MachineModel {
            name: "frontier-gcd".to_string(),
            energy_per_flop: 10e-12,
            energy_per_byte: 1e-9,
            idle_power: 75.0,
            flops_per_sec: 6.0e12,
            bytes_per_sec: 1.3e12,
        }
    }

    /// A CPU-only rank (sampling runs on CPUs in the paper's workflow).
    pub fn frontier_cpu_rank() -> Self {
        MachineModel {
            name: "frontier-cpu-rank".to_string(),
            energy_per_flop: 50e-12,
            energy_per_byte: 5e-9,
            idle_power: 4.0, // 225 W / 56 usable cores
            flops_per_sec: 3.0e10,
            bytes_per_sec: 1.0e10,
        }
    }
}

/// Thread-safe FLOP/byte accumulator tied to a machine model.
#[derive(Debug)]
pub struct EnergyMeter {
    model: MachineModel,
    flops: AtomicU64,
    bytes: AtomicU64,
    start: Instant,
}

impl EnergyMeter {
    /// Creates a meter and starts its wall clock.
    pub fn new(model: MachineModel) -> Self {
        EnergyMeter {
            model,
            flops: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Records `n` floating-point operations. While tracing is enabled the
    /// count is mirrored into the process-wide `sickle-obs` totals so open
    /// spans attribute it to their energy sub-totals.
    #[inline]
    pub fn record_flops(&self, n: u64) {
        self.flops.fetch_add(n, Ordering::Relaxed);
        if sickle_obs::enabled() {
            sickle_obs::metrics::add_flops(n);
        }
    }

    /// Records `n` bytes moved. Mirrored into `sickle-obs` like
    /// [`record_flops`](Self::record_flops).
    #[inline]
    pub fn record_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
        if sickle_obs::enabled() {
            sickle_obs::metrics::add_bytes(n);
        }
    }

    /// Total FLOPs recorded so far.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Total bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Elapsed wall-clock seconds since creation.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The machine model in use.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Produces the energy report for everything recorded so far, using
    /// *modeled* time (deterministic: flops/throughput + bytes/bandwidth) so
    /// results are reproducible across hosts. Wall time is reported
    /// alongside for reference.
    pub fn report(&self) -> EnergyReport {
        let flops = self.flops() as f64;
        let bytes = self.bytes() as f64;
        let modeled_time = flops / self.model.flops_per_sec + bytes / self.model.bytes_per_sec;
        EnergyReport {
            machine: self.model.name.clone(),
            flops: self.flops(),
            bytes: self.bytes(),
            compute_joules: flops * self.model.energy_per_flop,
            movement_joules: bytes * self.model.energy_per_byte,
            idle_joules: modeled_time * self.model.idle_power,
            modeled_secs: modeled_time,
            wall_secs: self.elapsed_secs(),
        }
    }
}

/// The paper's Eq. 3: `Cost to Train ≈ O(c(m)) + O(m · p · e)` — returns the
/// modeled energy in joules for training `e` epochs of `m` samples through a
/// `p`-parameter model on `machine`, plus a sampling-phase cost.
///
/// `flops_per_sample_param` calibrates how many FLOPs one sample × one
/// parameter costs per epoch (≈6 for dense nets: 2 forward + 4 backward).
pub fn cost_to_train(
    sampling_joules: f64,
    m_samples: usize,
    p_params: usize,
    e_epochs: usize,
    flops_per_sample_param: f64,
    machine: &MachineModel,
) -> f64 {
    let train_flops = m_samples as f64 * p_params as f64 * e_epochs as f64 * flops_per_sample_param;
    let modeled_time = train_flops / machine.flops_per_sec;
    sampling_joules + train_flops * machine.energy_per_flop + modeled_time * machine.idle_power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_atomically() {
        let meter = EnergyMeter::new(MachineModel::frontier_node());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        meter.record_flops(10);
                        meter.record_bytes(3);
                    }
                });
            }
        });
        assert_eq!(meter.flops(), 40_000);
        assert_eq!(meter.bytes(), 12_000);
    }

    #[test]
    fn report_is_deterministic_in_counts() {
        let meter = EnergyMeter::new(MachineModel::frontier_node());
        meter.record_flops(1_000_000_000);
        meter.record_bytes(1_000_000);
        let r = meter.report();
        assert!((r.compute_joules - 1e9 * 10e-12).abs() < 1e-12);
        assert!((r.movement_joules - 1e6 * 1e-9).abs() < 1e-12);
        assert!(r.total_joules() > 0.0);
    }

    #[test]
    fn movement_dominates_per_unit() {
        // The motivating claim: moving a datum costs >100x computing it.
        let m = MachineModel::frontier_node();
        assert!(m.energy_per_byte * 8.0 > 100.0 * m.energy_per_flop);
    }

    #[test]
    fn cost_model_scales_linearly_in_each_factor() {
        let m = MachineModel::frontier_node();
        let base = cost_to_train(0.0, 1000, 10_000, 100, 6.0, &m);
        assert!((cost_to_train(0.0, 2000, 10_000, 100, 6.0, &m) / base - 2.0).abs() < 1e-9);
        assert!((cost_to_train(0.0, 1000, 20_000, 100, 6.0, &m) / base - 2.0).abs() < 1e-9);
        assert!((cost_to_train(0.0, 1000, 10_000, 200, 6.0, &m) / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_cost_amortizes() {
        // Eq. 3's point: the sampling overhead c(m) is fixed while training
        // cost scales with epochs, so subsampling wins at high epoch counts.
        let m = MachineModel::frontier_node();
        let full = cost_to_train(0.0, 100_000, 1_000_000, 1000, 6.0, &m);
        let sampled = cost_to_train(500.0, 10_000, 1_000_000, 1000, 6.0, &m);
        assert!(sampled < 0.2 * full, "sampled {sampled} vs full {full}");
    }

    #[test]
    fn gcd_is_smaller_than_node() {
        let node = MachineModel::frontier_node();
        let gcd = MachineModel::frontier_gcd();
        assert!(gcd.flops_per_sec < node.flops_per_sec);
        assert!(gcd.idle_power < node.idle_power);
    }
}
