//! Energy report type and formatting, matching the log lines the paper's
//! artifact instructions grep for (`Total Energy Consumed`, `Elapsed Time`).

use serde::{Deserialize, Serialize};

/// The result of an [`EnergyMeter`](crate::EnergyMeter) accounting pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Machine model name.
    pub machine: String,
    /// FLOPs executed.
    pub flops: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Energy attributed to computation (J).
    pub compute_joules: f64,
    /// Energy attributed to data movement (J).
    pub movement_joules: f64,
    /// Idle/base energy over the modeled duration (J).
    pub idle_joules: f64,
    /// Modeled execution time (s), deterministic from the counts.
    pub modeled_secs: f64,
    /// Observed wall-clock time (s), host-dependent, for reference only.
    pub wall_secs: f64,
}

impl EnergyReport {
    /// Total modeled energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.movement_joules + self.idle_joules
    }

    /// Total modeled energy in kilojoules (the unit of the paper's Fig. 8).
    pub fn total_kilojoules(&self) -> f64 {
        self.total_joules() / 1e3
    }

    /// Sums two reports from the same machine model (e.g. sampling +
    /// training phases, as the artifact instructions do: "Add CPU energy
    /// from subsampling to total energy from training").
    ///
    /// # Panics
    /// Panics if the machine names differ.
    pub fn combined(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            machine: if self.machine == other.machine {
                self.machine.clone()
            } else {
                format!("{}+{}", self.machine, other.machine)
            },
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            compute_joules: self.compute_joules + other.compute_joules,
            movement_joules: self.movement_joules + other.movement_joules,
            idle_joules: self.idle_joules + other.idle_joules,
            modeled_secs: self.modeled_secs + other.modeled_secs,
            wall_secs: self.wall_secs + other.wall_secs,
        }
    }

    /// The paper-style log block.
    pub fn log_lines(&self) -> String {
        format!(
            "Total Energy Consumed: {:.3} kJ\nElapsed Time: {:.3} s (modeled), {:.3} s (wall)\nFLOPs: {} Bytes: {}",
            self.total_kilojoules(),
            self.modeled_secs,
            self.wall_secs,
            self.flops,
            self.bytes
        )
    }
}

impl std::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {:.3} kJ (compute {:.3}, movement {:.3}, idle {:.3})",
            self.machine,
            self.total_kilojoules(),
            self.compute_joules / 1e3,
            self.movement_joules / 1e3,
            self.idle_joules / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> EnergyReport {
        EnergyReport {
            machine: "m".to_string(),
            flops: 100,
            bytes: 10,
            compute_joules: 1.0,
            movement_joules: 2.0,
            idle_joules: 3.0,
            modeled_secs: 4.0,
            wall_secs: 5.0,
        }
    }

    #[test]
    fn totals_add_up() {
        let r = sample_report();
        assert_eq!(r.total_joules(), 6.0);
        assert_eq!(r.total_kilojoules(), 0.006);
    }

    #[test]
    fn combined_sums_fields() {
        let r = sample_report().combined(&sample_report());
        assert_eq!(r.flops, 200);
        assert_eq!(r.total_joules(), 12.0);
        assert_eq!(r.machine, "m");
    }

    #[test]
    fn combined_different_machines_concatenates_names() {
        let mut other = sample_report();
        other.machine = "n".to_string();
        let r = sample_report().combined(&other);
        assert_eq!(r.machine, "m+n");
    }

    #[test]
    fn log_lines_contain_paper_grep_targets() {
        let lines = sample_report().log_lines();
        assert!(lines.contains("Total Energy Consumed"));
        assert!(lines.contains("Elapsed Time"));
    }

    #[test]
    fn display_is_compact() {
        let s = sample_report().to_string();
        assert!(s.starts_with("[m]"));
        assert!(s.contains("kJ"));
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let j = serde_json::to_string(&r).unwrap();
        let back: EnergyReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.flops, r.flops);
        assert_eq!(back.total_joules(), r.total_joules());
    }
}
