//! Arbitrary-length FFT via Bluestein's chirp-z algorithm.
//!
//! The paper's real grids are not powers of two (SST-P1F4 is 514×512×256;
//! SST-P1F100 is 4098×1024×4086), so a production port needs transforms of
//! arbitrary length. Bluestein rewrites a length-`n` DFT as a circular
//! convolution of chirp-modulated sequences, evaluated with one
//! power-of-two FFT pair of length `m ≥ 2n − 1`:
//!
//! ```text
//! X_k = conj(c_k) · IFFT( FFT(x·c) ⊙ FFT(ĉ) )_k,   c_j = exp(-iπ j²/n)
//! ```
//!
//! [`AnyFft`] dispatches: power-of-two lengths use the radix-2
//! [`FftPlan`](crate::FftPlan) directly; everything else uses Bluestein.

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for forward/inverse complex FFTs of *any* fixed length.
#[derive(Clone, Debug)]
pub struct AnyFft {
    n: usize,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    Pow2(FftPlan),
    Bluestein(Bluestein),
}

#[derive(Clone, Debug)]
struct Bluestein {
    /// Padded power-of-two length.
    m: usize,
    inner: FftPlan,
    /// Chirp `c_j = exp(-i π j² / n)` for j = 0..n.
    chirp: Vec<Complex>,
    /// FFT of the zero-padded conjugate-chirp kernel (length m).
    kernel_hat: Vec<Complex>,
}

impl Bluestein {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = FftPlan::new(m);
        // j^2 mod 2n keeps the phase argument exact for large j.
        let chirp: Vec<Complex> = (0..n)
            .map(|j| {
                let jj = (j * j) % (2 * n);
                Complex::from_polar_unit(-std::f64::consts::PI * jj as f64 / n as f64)
            })
            .collect();
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            let v = chirp[j].conj();
            kernel[j] = v;
            kernel[m - j] = v;
        }
        inner.forward(&mut kernel);
        Bluestein {
            m,
            inner,
            chirp,
            kernel_hat: kernel,
        }
    }

    fn forward(&self, data: &mut [Complex]) {
        let n = data.len();
        let mut a = vec![Complex::ZERO; self.m];
        for j in 0..n {
            a[j] = data[j] * self.chirp[j];
        }
        self.inner.forward(&mut a);
        for (v, &k) in a.iter_mut().zip(self.kernel_hat.iter()) {
            *v *= k;
        }
        self.inner.inverse(&mut a);
        for k in 0..n {
            data[k] = a[k] * self.chirp[k];
        }
    }
}

impl AnyFft {
    /// Creates a plan of length `n ≥ 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let kind = if crate::is_power_of_two(n) {
            Kind::Pow2(FftPlan::new(n))
        } else {
            Kind::Bluestein(Bluestein::new(n))
        };
        AnyFft { n, kind }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns true if this plan uses the Bluestein path.
    pub fn is_bluestein(&self) -> bool {
        matches!(self.kind, Kind::Bluestein(_))
    }

    /// In-place forward transform.
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        match &self.kind {
            Kind::Pow2(p) => p.forward(data),
            Kind::Bluestein(b) => b.forward(data),
        }
    }

    /// In-place inverse transform (normalized by `1/n`).
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        match &self.kind {
            Kind::Pow2(p) => p.inverse(data),
            Kind::Bluestein(b) => {
                // IFFT(x) = conj(FFT(conj(x))) / n.
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                b.forward(data);
                let inv = 1.0 / self.n as f64;
                for v in data.iter_mut() {
                    *v = v.conj().scale(inv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft_for_awkward_sizes() {
        for &n in &[1usize, 2, 3, 5, 6, 7, 9, 12, 17, 30, 100, 257] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.71).sin(), (i as f64 * 0.37).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut got = input.clone();
            AnyFft::new(n).forward(&mut got);
            assert_close(&got, &expected, 1e-8 * n as f64);
        }
    }

    #[test]
    fn roundtrip_identity_arbitrary_sizes() {
        for &n in &[3usize, 10, 37, 100, 514] {
            let plan = AnyFft::new(n);
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new(((i * 31) % 17) as f64 - 8.0, ((i * 7) % 13) as f64))
                .collect();
            let mut data = input.clone();
            plan.forward(&mut data);
            plan.inverse(&mut data);
            assert_close(&data, &input, 1e-8);
        }
    }

    #[test]
    fn paper_grid_514_single_mode() {
        // The SST-P1F4 x-extent. exp(2 pi i 5 j / 514) -> peak at k = 5.
        let n = 514;
        let input: Vec<Complex> = (0..n)
            .map(|j| {
                Complex::from_polar_unit(2.0 * std::f64::consts::PI * 5.0 * j as f64 / n as f64)
            })
            .collect();
        let mut data = input;
        let plan = AnyFft::new(n);
        assert!(plan.is_bluestein());
        plan.forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            let expect = if k == 5 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-6, "mode {k}: {}", v.abs());
        }
    }

    #[test]
    fn power_of_two_dispatches_to_radix2() {
        assert!(!AnyFft::new(64).is_bluestein());
        assert!(AnyFft::new(100).is_bluestein());
    }

    #[test]
    fn parseval_holds_for_bluestein() {
        let n = 37;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        AnyFft::new(n).forward(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }
}
