//! Minimal double-precision complex number type.
//!
//! Only the operations needed by the FFT kernels and the pseudo-spectral
//! solver are implemented; the type is `Copy` and `#[repr(C)]` so buffers of
//! `Complex` can be reinterpreted as interleaved `f64` pairs when serialized.

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number on the unit circle at angle `theta` (radians):
    /// `exp(i * theta)`.
    #[inline]
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Multiplication by `i` (a quarter-turn rotation), cheaper than a full
    /// complex multiply and used heavily by spectral differentiation.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex::new(-self.im, self.re)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl DivAssign<f64> for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        let inv = 1.0 / rhs;
        self.re *= inv;
        self.im *= inv;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z / z, Complex::ONE));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex::new(25.0, 0.0)));
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z.mul_i(), z * Complex::I));
    }

    #[test]
    fn polar_unit_circle() {
        use std::f64::consts::PI;
        assert!(close(Complex::from_polar_unit(0.0), Complex::ONE));
        assert!(close(Complex::from_polar_unit(PI / 2.0), Complex::I));
        let z = Complex::from_polar_unit(1.234);
        assert!((z.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_by_scalar() {
        let z = Complex::new(2.0, 4.0);
        assert!(close(z / 2.0, Complex::new(1.0, 2.0)));
        let mut w = z;
        w /= 4.0;
        assert!(close(w, Complex::new(0.5, 1.0)));
    }
}
