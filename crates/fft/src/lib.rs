//! # sickle-fft
//!
//! A small, dependency-light FFT library supporting power-of-two complex and
//! real transforms in one, two, and three dimensions, with rayon-parallel
//! multi-dimensional transforms.
//!
//! This crate exists because the paper's 3D turbulence substrates (SST and
//! GESTS) are produced by Fourier pseudo-spectral solvers; re-implementing the
//! transform from scratch keeps the reproduction self-contained.
//!
//! ## Example
//!
//! ```
//! use sickle_fft::{Complex, FftPlan};
//!
//! let plan = FftPlan::new(8);
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let orig = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! for (a, b) in data.iter().zip(orig.iter()) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

mod bluestein;
mod complex;
mod nd;
mod plan;
mod real;
mod realnd;

pub use bluestein::AnyFft;
pub use complex::Complex;
pub use nd::{Fft2d, Fft3d};
pub use plan::FftPlan;
pub use real::RealFft;
pub use realnd::{RealFft2d, RealFft3d};

/// Returns `true` if `n` is a power of two (and nonzero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Naive O(n^2) discrete Fourier transform, used as a reference in tests and
/// for tiny transforms where plan setup is not worthwhile.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex::new(ang.cos(), ang.sin());
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1000));
    }

    #[test]
    fn naive_dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = dft_naive(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12);
            assert!(v.im.abs() < 1e-12);
        }
    }
}
