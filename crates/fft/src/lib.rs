//! # sickle-fft
//!
//! A small, dependency-light FFT library supporting power-of-two complex and
//! real transforms in one, two, and three dimensions, with rayon-parallel
//! multi-dimensional transforms.
//!
//! This crate exists because the paper's 3D turbulence substrates (SST and
//! GESTS) are produced by Fourier pseudo-spectral solvers; re-implementing the
//! transform from scratch keeps the reproduction self-contained.
//!
//! ## Example
//!
//! ```
//! use sickle_fft::{Complex, FftPlan};
//!
//! let plan = FftPlan::new(8);
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let orig = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! for (a, b) in data.iter().zip(orig.iter()) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

mod bluestein;
mod complex;
mod nd;
mod plan;
mod real;
mod realnd;

pub use bluestein::AnyFft;
pub use complex::Complex;
pub use nd::{Fft2d, Fft3d};
pub use plan::FftPlan;
pub use real::RealFft;
pub use realnd::{RealFft2d, RealFft3d};
// The workspace-wide kernel switch, re-exported so FFT consumers can force a
// variant without depending on sickle-simd directly.
pub use sickle_simd::{kernel, set_kernel, Kernel};

/// Returns `true` if `n` is a power of two (and nonzero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Analytic flop estimate for one length-`n` complex FFT: the standard
/// `5 n log2 n` radix-2 count (per butterfly: one complex multiply = 6 flops
/// and two complex adds = 4 flops, over `n/2 · log2 n` butterflies).
pub fn fft_flops(n: usize) -> u64 {
    if n < 2 {
        return 0;
    }
    5 * n as u64 * n.trailing_zeros() as u64
}

/// Analytic flop estimate for one length-`n` real-to-complex (or
/// complex-to-real) FFT: a half-length complex FFT plus the O(n) untangle
/// pass (~14 flops per conjugate bin pair).
pub fn rfft_flops(n: usize) -> u64 {
    fft_flops(n / 2) + 7 * n as u64 / 2
}

/// Analytic flop estimate for one 3D real-to-complex transform of shape
/// `(nx, ny, nz)`: `nx·ny` real rows plus the strided complex passes over
/// the `nzc = nz/2 + 1` half-spectrum.
pub fn rfft3d_flops(nx: usize, ny: usize, nz: usize) -> u64 {
    let nzc = (nz / 2 + 1) as u64;
    (nx * ny) as u64 * rfft_flops(nz)
        + nx as u64 * nzc * fft_flops(ny)
        + ny as u64 * nzc * fft_flops(nx)
}

/// Naive O(n^2) discrete Fourier transform, used as a reference in tests and
/// for tiny transforms where plan setup is not worthwhile.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex::new(ang.cos(), ang.sin());
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1000));
    }

    #[test]
    fn naive_dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = dft_naive(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12);
            assert!(v.im.abs() < 1e-12);
        }
    }
}
