//! Multi-dimensional FFTs over row-major buffers, parallelized with rayon.
//!
//! Layouts:
//! - 2D: `index = x * ny + y` (y contiguous)
//! - 3D: `index = (x * ny + y) * nz + z` (z contiguous)
//!
//! Transforms along non-contiguous axes gather each pencil into a scratch
//! buffer, transform it, and scatter back; pencils are processed in parallel.

use rayon::prelude::*;

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for 2D complex FFTs of fixed shape `(nx, ny)`.
#[derive(Clone, Debug)]
pub struct Fft2d {
    nx: usize,
    ny: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
}

/// Direction selector used internally by the axis kernels.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Dir {
    Forward,
    Inverse,
}

fn transform_contiguous(plan: &FftPlan, data: &mut [Complex], dir: Dir) {
    let n = plan.len();
    data.par_chunks_mut(n).for_each(|row| match dir {
        Dir::Forward => plan.forward(row),
        Dir::Inverse => plan.inverse_unnormalized(row),
    });
}

/// Transforms pencils of length `count` spaced `stride` apart; there are
/// `outer * inner` pencils, where a pencil `(o, i)` starts at
/// `o * block + i` with `block = count * stride`.
pub(crate) fn transform_strided(
    plan: &FftPlan,
    data: &mut [Complex],
    outer: usize,
    inner: usize,
    stride: usize,
    dir: Dir,
) {
    let count = plan.len();
    let block = count * stride;
    // Each (outer, inner) pencil touches a disjoint set of indices, so we
    // parallelize over pencils via unsafe shared access wrapped in a raw
    // pointer; disjointness is guaranteed by the index arithmetic.
    struct SendPtr(*mut Complex);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    impl SendPtr {
        #[inline]
        fn get(&self) -> *mut Complex {
            self.0
        }
    }
    let ptr = SendPtr(data.as_mut_ptr());
    (0..outer * inner).into_par_iter().for_each_init(
        || vec![Complex::ZERO; count],
        |scratch, pid| {
            let o = pid / inner;
            let i = pid % inner;
            let base = o * block + i;
            let p = ptr.get();
            unsafe {
                for (k, s) in scratch.iter_mut().enumerate() {
                    *s = *p.add(base + k * stride);
                }
            }
            match dir {
                Dir::Forward => plan.forward(scratch),
                Dir::Inverse => plan.inverse_unnormalized(scratch),
            }
            unsafe {
                for (k, s) in scratch.iter().enumerate() {
                    *p.add(base + k * stride) = *s;
                }
            }
        },
    );
}

impl Fft2d {
    /// Creates a 2D plan; both dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2d {
            nx,
            ny,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
        }
    }

    /// Shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward 2D transform.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        transform_contiguous(&self.plan_y, data, Dir::Forward);
        transform_strided(&self.plan_x, data, 1, self.ny, self.ny, Dir::Forward);
    }

    /// In-place inverse 2D transform (normalized by `1/(nx*ny)`).
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        transform_contiguous(&self.plan_y, data, Dir::Inverse);
        transform_strided(&self.plan_x, data, 1, self.ny, self.ny, Dir::Inverse);
        let scale = 1.0 / self.len() as f64;
        data.par_iter_mut().for_each(|v| *v = v.scale(scale));
    }
}

/// Plan for 3D complex FFTs of fixed shape `(nx, ny, nz)`.
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3d {
    /// Creates a 3D plan; all dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3d {
            nx,
            ny,
            nz,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
            plan_z: FftPlan::new(nz),
        }
    }

    /// Shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn run(&self, data: &mut [Complex], dir: Dir) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        // z axis: contiguous rows.
        transform_contiguous(&self.plan_z, data, dir);
        // y axis: stride nz, inner nz, outer nx.
        transform_strided(&self.plan_y, data, self.nx, self.nz, self.nz, dir);
        // x axis: stride ny*nz, inner ny*nz, outer 1.
        transform_strided(
            &self.plan_x,
            data,
            1,
            self.ny * self.nz,
            self.ny * self.nz,
            dir,
        );
    }

    /// In-place forward 3D transform.
    pub fn forward(&self, data: &mut [Complex]) {
        self.run(data, Dir::Forward);
    }

    /// In-place inverse 3D transform (normalized by the grid size).
    pub fn inverse(&self, data: &mut [Complex]) {
        self.run(data, Dir::Inverse);
        let scale = 1.0 / self.len() as f64;
        data.par_iter_mut().for_each(|v| *v = v.scale(scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn fft2d_roundtrip() {
        let (nx, ny) = (8, 16);
        let plan = Fft2d::new(nx, ny);
        let input: Vec<Complex> = (0..nx * ny)
            .map(|i| Complex::new((i % 7) as f64, (i % 5) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn fft2d_separable_mode() {
        // exp(i*2pi*(2x/nx + 3y/ny)) should produce a single peak at (2, 3).
        let (nx, ny) = (8, 8);
        let plan = Fft2d::new(nx, ny);
        let tau = 2.0 * std::f64::consts::PI;
        let mut data: Vec<Complex> = Vec::with_capacity(nx * ny);
        for x in 0..nx {
            for y in 0..ny {
                let phase = tau * (2.0 * x as f64 / nx as f64 + 3.0 * y as f64 / ny as f64);
                data.push(Complex::from_polar_unit(phase));
            }
        }
        plan.forward(&mut data);
        for x in 0..nx {
            for y in 0..ny {
                let v = data[x * ny + y].abs();
                let expect = if (x, y) == (2, 3) {
                    (nx * ny) as f64
                } else {
                    0.0
                };
                assert!((v - expect).abs() < 1e-8, "({x},{y}): {v}");
            }
        }
    }

    #[test]
    fn fft3d_roundtrip() {
        let (nx, ny, nz) = (4, 8, 16);
        let plan = Fft3d::new(nx, ny, nz);
        let input: Vec<Complex> = (0..nx * ny * nz)
            .map(|i| Complex::new(((i * 31) % 17) as f64 - 8.0, ((i * 13) % 11) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn fft3d_single_mode_peak() {
        let (nx, ny, nz) = (8, 4, 4);
        let plan = Fft3d::new(nx, ny, nz);
        let tau = 2.0 * std::f64::consts::PI;
        let (kx, ky, kz) = (3usize, 1usize, 2usize);
        let mut data = Vec::with_capacity(nx * ny * nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let phase = tau
                        * (kx as f64 * x as f64 / nx as f64
                            + ky as f64 * y as f64 / ny as f64
                            + kz as f64 * z as f64 / nz as f64);
                    data.push(Complex::from_polar_unit(phase));
                }
            }
        }
        plan.forward(&mut data);
        let total = (nx * ny * nz) as f64;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let v = data[(x * ny + y) * nz + z].abs();
                    let expect = if (x, y, z) == (kx, ky, kz) {
                        total
                    } else {
                        0.0
                    };
                    assert!((v - expect).abs() < 1e-8, "({x},{y},{z}): {v}");
                }
            }
        }
    }

    #[test]
    fn fft3d_dc_of_constant_field() {
        let plan = Fft3d::new(4, 4, 4);
        let mut data = vec![Complex::new(2.5, 0.0); 64];
        plan.forward(&mut data);
        assert!((data[0].re - 160.0).abs() < 1e-9);
        for v in &data[1..] {
            assert!(v.abs() < 1e-9);
        }
    }
}
