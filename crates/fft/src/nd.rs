//! Multi-dimensional FFTs over row-major buffers, parallelized with rayon.
//!
//! Layouts:
//! - 2D: `index = x * ny + y` (y contiguous)
//! - 3D: `index = (x * ny + y) * nz + z` (z contiguous)
//!
//! Transforms along non-contiguous axes gather each pencil into a scratch
//! buffer, transform it, and scatter back; pencils are processed in parallel.

use rayon::prelude::*;
use sickle_simd::Kernel;

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for 2D complex FFTs of fixed shape `(nx, ny)`.
#[derive(Clone, Debug)]
pub struct Fft2d {
    nx: usize,
    ny: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
}

/// Direction selector used internally by the axis kernels.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Dir {
    Forward,
    Inverse,
}

pub(crate) fn transform_contiguous_with(
    plan: &FftPlan,
    data: &mut [Complex],
    dir: Dir,
    kernel: Kernel,
) {
    let n = plan.len();
    match kernel {
        Kernel::Naive => data.par_chunks_mut(n).for_each(|row| match dir {
            Dir::Forward => plan.forward(row),
            Dir::Inverse => plan.inverse_unnormalized(row),
        }),
        // Rows go through the pair-interleaved transform two at a time (an
        // odd final row falls back to the single-row path). The interleave/
        // deinterleave copies are sequential sweeps the hardware prefetcher
        // handles; the butterflies then run with full vector lanes.
        Kernel::Optimized => data.par_chunks_mut(2 * n).for_each_init(
            || vec![Complex::ZERO; 2 * n],
            |scratch, rows| {
                if rows.len() < 2 * n {
                    match dir {
                        Dir::Forward => plan.forward(rows),
                        Dir::Inverse => plan.inverse_unnormalized(rows),
                    }
                    return;
                }
                let (r0, r1) = rows.split_at_mut(n);
                for k in 0..n {
                    scratch[2 * k] = r0[k];
                    scratch[2 * k + 1] = r1[k];
                }
                match dir {
                    Dir::Forward => plan.forward2(scratch),
                    Dir::Inverse => plan.inverse2_unnormalized(scratch),
                }
                for k in 0..n {
                    r0[k] = scratch[2 * k];
                    r1[k] = scratch[2 * k + 1];
                }
            },
        ),
    }
}

/// Shared-access wrapper for disjoint-pencil parallelism: each pencil (or
/// pencil pair) touches a disjoint index set, guaranteed by the index
/// arithmetic of the caller.
struct SendPtr(*mut Complex);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}
impl SendPtr {
    #[inline]
    fn get(&self) -> *mut Complex {
        self.0
    }
}

/// Transforms pencils of length `count` spaced `stride` apart; there are
/// `outer * inner` pencils, where a pencil `(o, i)` starts at
/// `o * block + i` with `block = count * stride`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transform_strided_with(
    plan: &FftPlan,
    data: &mut [Complex],
    outer: usize,
    inner: usize,
    stride: usize,
    dir: Dir,
    kernel: Kernel,
) {
    let count = plan.len();
    let block = count * stride;
    let total = outer * inner;
    let ptr = SendPtr(data.as_mut_ptr());
    let pencil_base = |pid: usize| (pid / inner) * block + pid % inner;
    match kernel {
        Kernel::Naive => (0..total).into_par_iter().for_each_init(
            || vec![Complex::ZERO; count],
            |scratch, pid| {
                let base = pencil_base(pid);
                let p = ptr.get();
                unsafe {
                    for (k, s) in scratch.iter_mut().enumerate() {
                        *s = *p.add(base + k * stride);
                    }
                }
                match dir {
                    Dir::Forward => plan.forward(scratch),
                    Dir::Inverse => plan.inverse_unnormalized(scratch),
                }
                unsafe {
                    for (k, s) in scratch.iter().enumerate() {
                        *p.add(base + k * stride) = *s;
                    }
                }
            },
        ),
        // Pencil pairs gathered interleaved: the gather/scatter costs the
        // same strided traffic as two single pencils, but the transform in
        // between runs on full vector lanes.
        //
        // Dealiased spectra reach the inverse passes with most pencils
        // identically zero (the 2/3-rule mask zeroes ~55% of x-pencils and
        // ~33% of y-pencils at 64^3). The inverse transform of an all-zero
        // pencil is all zeros, so once the gather confirms that, both the
        // butterflies and the scatter are skipped — memory already holds
        // the zeros. Only sign-of-zero can differ from the naive path.
        Kernel::Optimized => {
            let all_zero =
                |s: &[Complex]| dir == Dir::Inverse && s.iter().all(|c| c.re == 0.0 && c.im == 0.0);
            (0..total / 2).into_par_iter().for_each_init(
                || vec![Complex::ZERO; 2 * count],
                |scratch, q| {
                    let b0 = pencil_base(2 * q);
                    let b1 = pencil_base(2 * q + 1);
                    let p = ptr.get();
                    unsafe {
                        for k in 0..count {
                            scratch[2 * k] = *p.add(b0 + k * stride);
                            scratch[2 * k + 1] = *p.add(b1 + k * stride);
                        }
                    }
                    if all_zero(scratch) {
                        return;
                    }
                    match dir {
                        Dir::Forward => plan.forward2(scratch),
                        Dir::Inverse => plan.inverse2_unnormalized(scratch),
                    }
                    unsafe {
                        for k in 0..count {
                            *p.add(b0 + k * stride) = scratch[2 * k];
                            *p.add(b1 + k * stride) = scratch[2 * k + 1];
                        }
                    }
                },
            );
            if total % 2 == 1 {
                let base = pencil_base(total - 1);
                let mut scratch = vec![Complex::ZERO; count];
                for (k, s) in scratch.iter_mut().enumerate() {
                    *s = data[base + k * stride];
                }
                if all_zero(&scratch) {
                    return;
                }
                match dir {
                    Dir::Forward => plan.forward(&mut scratch),
                    Dir::Inverse => plan.inverse_unnormalized(&mut scratch),
                }
                for (k, s) in scratch.iter().enumerate() {
                    data[base + k * stride] = *s;
                }
            }
        }
    }
}

impl Fft2d {
    /// Creates a 2D plan; both dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2d {
            nx,
            ny,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
        }
    }

    /// Shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward 2D transform.
    pub fn forward(&self, data: &mut [Complex]) {
        self.forward_with(data, sickle_simd::kernel());
    }

    /// In-place inverse 2D transform (normalized by `1/(nx*ny)`).
    pub fn inverse(&self, data: &mut [Complex]) {
        self.inverse_with(data, sickle_simd::kernel());
    }

    /// [`Self::forward`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch).
    #[doc(hidden)]
    pub fn forward_with(&self, data: &mut [Complex], kernel: Kernel) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        transform_contiguous_with(&self.plan_y, data, Dir::Forward, kernel);
        transform_strided_with(
            &self.plan_x,
            data,
            1,
            self.ny,
            self.ny,
            Dir::Forward,
            kernel,
        );
    }

    /// [`Self::inverse`] with an explicit kernel choice.
    #[doc(hidden)]
    pub fn inverse_with(&self, data: &mut [Complex], kernel: Kernel) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        transform_contiguous_with(&self.plan_y, data, Dir::Inverse, kernel);
        transform_strided_with(
            &self.plan_x,
            data,
            1,
            self.ny,
            self.ny,
            Dir::Inverse,
            kernel,
        );
        let scale = 1.0 / self.len() as f64;
        data.par_iter_mut().for_each(|v| *v = v.scale(scale));
    }
}

/// Plan for 3D complex FFTs of fixed shape `(nx, ny, nz)`.
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3d {
    /// Creates a 3D plan; all dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3d {
            nx,
            ny,
            nz,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
            plan_z: FftPlan::new(nz),
        }
    }

    /// Shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn run(&self, data: &mut [Complex], dir: Dir, kernel: Kernel) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        // z axis: contiguous rows.
        transform_contiguous_with(&self.plan_z, data, dir, kernel);
        // y axis: stride nz, inner nz, outer nx.
        transform_strided_with(&self.plan_y, data, self.nx, self.nz, self.nz, dir, kernel);
        // x axis: stride ny*nz, inner ny*nz, outer 1.
        transform_strided_with(
            &self.plan_x,
            data,
            1,
            self.ny * self.nz,
            self.ny * self.nz,
            dir,
            kernel,
        );
    }

    /// In-place forward 3D transform.
    pub fn forward(&self, data: &mut [Complex]) {
        self.run(data, Dir::Forward, sickle_simd::kernel());
    }

    /// In-place inverse 3D transform (normalized by the grid size).
    pub fn inverse(&self, data: &mut [Complex]) {
        self.inverse_with(data, sickle_simd::kernel());
    }

    /// [`Self::forward`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch).
    #[doc(hidden)]
    pub fn forward_with(&self, data: &mut [Complex], kernel: Kernel) {
        self.run(data, Dir::Forward, kernel);
    }

    /// [`Self::inverse`] with an explicit kernel choice.
    #[doc(hidden)]
    pub fn inverse_with(&self, data: &mut [Complex], kernel: Kernel) {
        self.run(data, Dir::Inverse, kernel);
        let scale = 1.0 / self.len() as f64;
        data.par_iter_mut().for_each(|v| *v = v.scale(scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn fft2d_roundtrip() {
        let (nx, ny) = (8, 16);
        let plan = Fft2d::new(nx, ny);
        let input: Vec<Complex> = (0..nx * ny)
            .map(|i| Complex::new((i % 7) as f64, (i % 5) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn fft2d_separable_mode() {
        // exp(i*2pi*(2x/nx + 3y/ny)) should produce a single peak at (2, 3).
        let (nx, ny) = (8, 8);
        let plan = Fft2d::new(nx, ny);
        let tau = 2.0 * std::f64::consts::PI;
        let mut data: Vec<Complex> = Vec::with_capacity(nx * ny);
        for x in 0..nx {
            for y in 0..ny {
                let phase = tau * (2.0 * x as f64 / nx as f64 + 3.0 * y as f64 / ny as f64);
                data.push(Complex::from_polar_unit(phase));
            }
        }
        plan.forward(&mut data);
        for x in 0..nx {
            for y in 0..ny {
                let v = data[x * ny + y].abs();
                let expect = if (x, y) == (2, 3) {
                    (nx * ny) as f64
                } else {
                    0.0
                };
                assert!((v - expect).abs() < 1e-8, "({x},{y}): {v}");
            }
        }
    }

    #[test]
    fn fft3d_roundtrip() {
        let (nx, ny, nz) = (4, 8, 16);
        let plan = Fft3d::new(nx, ny, nz);
        let input: Vec<Complex> = (0..nx * ny * nz)
            .map(|i| Complex::new(((i * 31) % 17) as f64 - 8.0, ((i * 13) % 11) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn fft3d_single_mode_peak() {
        let (nx, ny, nz) = (8, 4, 4);
        let plan = Fft3d::new(nx, ny, nz);
        let tau = 2.0 * std::f64::consts::PI;
        let (kx, ky, kz) = (3usize, 1usize, 2usize);
        let mut data = Vec::with_capacity(nx * ny * nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let phase = tau
                        * (kx as f64 * x as f64 / nx as f64
                            + ky as f64 * y as f64 / ny as f64
                            + kz as f64 * z as f64 / nz as f64);
                    data.push(Complex::from_polar_unit(phase));
                }
            }
        }
        plan.forward(&mut data);
        let total = (nx * ny * nz) as f64;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let v = data[(x * ny + y) * nz + z].abs();
                    let expect = if (x, y, z) == (kx, ky, kz) {
                        total
                    } else {
                        0.0
                    };
                    assert!((v - expect).abs() < 1e-8, "({x},{y},{z}): {v}");
                }
            }
        }
    }

    #[test]
    fn fft3d_dc_of_constant_field() {
        let plan = Fft3d::new(4, 4, 4);
        let mut data = vec![Complex::new(2.5, 0.0); 64];
        plan.forward(&mut data);
        assert!((data[0].re - 160.0).abs() < 1e-9);
        for v in &data[1..] {
            assert!(v.abs() < 1e-9);
        }
    }
}
