//! One-dimensional power-of-two FFT plan.
//!
//! The plan precomputes bit-reversal permutation indices and per-stage twiddle
//! factors once, so repeated transforms of the same length (the common case in
//! a pseudo-spectral solver, which transforms thousands of pencils per step)
//! pay no setup cost and perform no allocation.

use crate::complex::Complex;

/// A reusable plan for forward/inverse complex FFTs of a fixed power-of-two
/// length, using the iterative radix-2 Cooley–Tukey algorithm.
///
/// The forward transform computes `X[k] = sum_j x[j] exp(-2*pi*i*j*k/n)`;
/// the inverse applies the conjugate transform and divides by `n`, so
/// `inverse(forward(x)) == x` up to rounding.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index for each position (identity-skipping pairs stored
    /// as (i, j) with i < j so the permutation is swap-based).
    swaps: Vec<(u32, u32)>,
    /// Twiddle factors for the forward transform, concatenated per stage:
    /// stage with half-size `m` contributes `m` factors `exp(-i*pi*t/m)`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            crate::is_power_of_two(n),
            "FFT length {n} must be a power of two"
        );
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        if bits > 0 {
            for i in 0..n {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if i < j {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        // Precompute twiddles per stage. Stages have half-sizes 1, 2, 4, ... n/2.
        let mut twiddles = Vec::with_capacity(n.max(1));
        let mut m = 1;
        while m < n {
            for t in 0..m {
                let ang = -std::f64::consts::PI * t as f64 / m as f64;
                twiddles.push(Complex::from_polar_unit(ang));
            }
            m <<= 1;
        }
        FftPlan { n, swaps, twiddles }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    fn butterflies(&self, data: &mut [Complex], conjugate: bool) {
        let n = self.n;
        let mut m = 1; // half-size of the current butterfly group
        let mut toff = 0; // offset into the twiddle table
        while m < n {
            let step = m << 1;
            let tw = &self.twiddles[toff..toff + m];
            let mut base = 0;
            while base < n {
                for (t, &twt) in tw.iter().enumerate() {
                    let w = if conjugate { twt.conj() } else { twt };
                    let a = data[base + t];
                    let b = data[base + t + m] * w;
                    data[base + t] = a + b;
                    data[base + t + m] = a - b;
                }
                base += step;
            }
            toff += m;
            m = step;
        }
    }

    /// In-place forward transform.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse transform, normalized by `1/n`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, true);
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// In-place inverse transform **without** the `1/n` normalization.
    ///
    /// Multi-dimensional wrappers use this to apply the overall normalization
    /// once instead of per-axis.
    pub fn inverse_unnormalized(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, true);
    }

    // -- pair-interleaved transforms ------------------------------------
    //
    // Two independent length-n sequences `a` and `b` stored interleaved
    // (`data[2k] = a[k]`, `data[2k+1] = b[k]`, total length `2n`) are
    // transformed together. Each butterfly then operates on a full 256-bit
    // vector (one complex from each sequence), so the AVX2 path keeps all
    // four f64 lanes busy — a lone radix-2 complex butterfly only fills
    // half a register. The multi-dimensional drivers feed row/pencil pairs
    // through these entry points.

    #[inline]
    fn permute2(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            let (i, j) = (i as usize, j as usize);
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
    }

    /// Scalar lane-pair butterflies (non-AVX2 fallback). Identical FP
    /// expressions to [`Self::butterflies`], applied per lane.
    fn butterflies2_portable(&self, data: &mut [Complex], conjugate: bool) {
        let n = self.n;
        let mut m = 1;
        let mut toff = 0;
        while m < n {
            let step = m << 1;
            let tw = &self.twiddles[toff..toff + m];
            let mut base = 0;
            while base < n {
                for (t, &twt) in tw.iter().enumerate() {
                    let w = if conjugate { twt.conj() } else { twt };
                    for lane in 0..2 {
                        let lo = 2 * (base + t) + lane;
                        let hi = 2 * (base + t + m) + lane;
                        let a = data[lo];
                        let b = data[hi] * w;
                        data[lo] = a + b;
                        data[hi] = a - b;
                    }
                }
                base += step;
            }
            toff += m;
            m = step;
        }
    }

    /// AVX2+FMA lane-pair butterflies: one 256-bit vector holds the pair
    /// `(a[k], b[k])` as four f64s `[a.re, a.im, b.re, b.im]`. The complex
    /// multiply by the broadcast twiddle `w` uses `fmaddsub` (subtract in
    /// even lanes, add in odd lanes), computing both sequences' butterflies
    /// per instruction. The `t == 0` column (`w == 1`) skips the multiply.
    ///
    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and
    /// `data.len() == 2 * self.n`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn butterflies2_fma(&self, data: &mut [Complex], conjugate: bool) {
        use std::arch::x86_64::*;
        let n = self.n;
        let sign = if conjugate { -1.0 } else { 1.0 };
        // Complex is #[repr(C)] { re: f64, im: f64 }, so the pair at
        // pair-index p starts at f64 offset 4*p.
        let p = data.as_mut_ptr().cast::<f64>();
        let mut m = 1;
        let mut toff = 0;
        while m < n {
            let step = m << 1;
            let tw = &self.twiddles[toff..toff + m];
            let mut base = 0;
            while base < n {
                // t == 0: w == 1, plain add/sub.
                {
                    let lo = p.add(4 * base);
                    let hi = p.add(4 * (base + m));
                    let a = _mm256_loadu_pd(lo);
                    let b = _mm256_loadu_pd(hi);
                    _mm256_storeu_pd(lo, _mm256_add_pd(a, b));
                    _mm256_storeu_pd(hi, _mm256_sub_pd(a, b));
                }
                for (t, w) in tw.iter().enumerate().skip(1) {
                    let wre = _mm256_set1_pd(w.re);
                    let wim = _mm256_set1_pd(w.im * sign);
                    let lo = p.add(4 * (base + t));
                    let hi = p.add(4 * (base + t + m));
                    let a = _mm256_loadu_pd(lo);
                    let b = _mm256_loadu_pd(hi);
                    // [b.im, b.re] per 128-bit half, times w.im, combined
                    // with b*w.re: even lanes re·re − im·im, odd lanes
                    // im·re + re·im — one complex multiply per sequence.
                    let bsw = _mm256_permute_pd::<0b0101>(b);
                    let tprod = _mm256_mul_pd(bsw, wim);
                    let bw = _mm256_fmaddsub_pd(b, wre, tprod);
                    _mm256_storeu_pd(lo, _mm256_add_pd(a, bw));
                    _mm256_storeu_pd(hi, _mm256_sub_pd(a, bw));
                }
                base += step;
            }
            toff += m;
            m = step;
        }
    }

    #[inline]
    fn butterflies2(&self, data: &mut [Complex], conjugate: bool) {
        #[cfg(target_arch = "x86_64")]
        if sickle_simd::fma_available() {
            // SAFETY: avx2 + fma verified; length checked by the caller.
            unsafe { self.butterflies2_fma(data, conjugate) };
            return;
        }
        self.butterflies2_portable(data, conjugate);
    }

    /// Forward transform of two sequences stored interleaved
    /// (`data[2k]` = sequence 0, `data[2k+1]` = sequence 1).
    ///
    /// # Panics
    /// Panics if `data.len() != 2 * self.len()`.
    pub fn forward2(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), 2 * self.n, "pair buffer length mismatch");
        self.permute2(data);
        self.butterflies2(data, false);
    }

    /// Inverse transform (normalized by `1/n`) of two interleaved sequences.
    ///
    /// # Panics
    /// Panics if `data.len() != 2 * self.len()`.
    pub fn inverse2(&self, data: &mut [Complex]) {
        self.inverse2_unnormalized(data);
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// Inverse transform **without** normalization of two interleaved
    /// sequences.
    ///
    /// # Panics
    /// Panics if `data.len() != 2 * self.len()`.
    pub fn inverse2_unnormalized(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), 2 * self.n, "pair buffer length mismatch");
        self.permute2(data);
        self.butterflies2(data, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut got = input.clone();
            FftPlan::new(n).forward(&mut got);
            assert_close(&got, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = FftPlan::new(n);
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * 31 % 17) as f64, (i * 7 % 13) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn pure_mode_has_single_peak() {
        // x[j] = exp(2*pi*i*3*j/n) transforms to n * delta[k - 3].
        let n = 32;
        let input: Vec<Complex> = (0..n)
            .map(|j| {
                Complex::from_polar_unit(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64)
            })
            .collect();
        let mut data = input;
        FftPlan::new(n).forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "mode {k}: {v:?}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        FftPlan::new(n).forward(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn pair_transform_matches_two_single_transforms() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let plan = FftPlan::new(n);
            let a: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
                .collect();
            let b: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.73).cos() - 0.2, (i as f64 * 0.11).sin()))
                .collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            plan.forward(&mut fa);
            plan.forward(&mut fb);
            let mut pair: Vec<Complex> = (0..2 * n)
                .map(|i| if i % 2 == 0 { a[i / 2] } else { b[i / 2] })
                .collect();
            plan.forward2(&mut pair);
            for k in 0..n {
                for (lane, f) in [(&fa, 0), (&fb, 1)].map(|(f, l)| (l, f)) {
                    let got = pair[2 * k + lane];
                    let want = f[k];
                    assert!(
                        (got.re - want.re).abs() < 1e-10 * n as f64
                            && (got.im - want.im).abs() < 1e-10 * n as f64,
                        "n={n} k={k} lane={lane}: {got:?} != {want:?}"
                    );
                }
            }
            plan.inverse2(&mut pair);
            for k in 0..n {
                let (ga, gb) = (pair[2 * k], pair[2 * k + 1]);
                assert!((ga.re - a[k].re).abs() < 1e-10 && (ga.im - a[k].im).abs() < 1e-10);
                assert!((gb.re - b[k].re).abs() < 1e-10 && (gb.im - b[k].im).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn pair_portable_matches_pair_dispatch() {
        let n = 64;
        let plan = FftPlan::new(n);
        let mut pair: Vec<Complex> = (0..2 * n)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let mut portable = pair.clone();
        plan.forward2(&mut pair);
        plan.permute2(&mut portable);
        plan.butterflies2_portable(&mut portable, false);
        for (g, w) in pair.iter().zip(&portable) {
            assert!(
                (g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12,
                "{g:?} != {w:?}"
            );
        }
    }

    #[test]
    fn linearity() {
        let n = 16;
        let plan = FftPlan::new(n);
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, -(i as f64))).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fs);
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fs, &combined, 1e-9);
    }
}
