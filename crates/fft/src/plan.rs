//! One-dimensional power-of-two FFT plan.
//!
//! The plan precomputes bit-reversal permutation indices and per-stage twiddle
//! factors once, so repeated transforms of the same length (the common case in
//! a pseudo-spectral solver, which transforms thousands of pencils per step)
//! pay no setup cost and perform no allocation.

use crate::complex::Complex;

/// A reusable plan for forward/inverse complex FFTs of a fixed power-of-two
/// length, using the iterative radix-2 Cooley–Tukey algorithm.
///
/// The forward transform computes `X[k] = sum_j x[j] exp(-2*pi*i*j*k/n)`;
/// the inverse applies the conjugate transform and divides by `n`, so
/// `inverse(forward(x)) == x` up to rounding.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index for each position (identity-skipping pairs stored
    /// as (i, j) with i < j so the permutation is swap-based).
    swaps: Vec<(u32, u32)>,
    /// Twiddle factors for the forward transform, concatenated per stage:
    /// stage with half-size `m` contributes `m` factors `exp(-i*pi*t/m)`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            crate::is_power_of_two(n),
            "FFT length {n} must be a power of two"
        );
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        if bits > 0 {
            for i in 0..n {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if i < j {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        // Precompute twiddles per stage. Stages have half-sizes 1, 2, 4, ... n/2.
        let mut twiddles = Vec::with_capacity(n.max(1));
        let mut m = 1;
        while m < n {
            for t in 0..m {
                let ang = -std::f64::consts::PI * t as f64 / m as f64;
                twiddles.push(Complex::from_polar_unit(ang));
            }
            m <<= 1;
        }
        FftPlan { n, swaps, twiddles }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    fn butterflies(&self, data: &mut [Complex], conjugate: bool) {
        let n = self.n;
        let mut m = 1; // half-size of the current butterfly group
        let mut toff = 0; // offset into the twiddle table
        while m < n {
            let step = m << 1;
            let tw = &self.twiddles[toff..toff + m];
            let mut base = 0;
            while base < n {
                for t in 0..m {
                    let w = if conjugate { tw[t].conj() } else { tw[t] };
                    let a = data[base + t];
                    let b = data[base + t + m] * w;
                    data[base + t] = a + b;
                    data[base + t + m] = a - b;
                }
                base += step;
            }
            toff += m;
            m = step;
        }
    }

    /// In-place forward transform.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse transform, normalized by `1/n`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, true);
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// In-place inverse transform **without** the `1/n` normalization.
    ///
    /// Multi-dimensional wrappers use this to apply the overall normalization
    /// once instead of per-axis.
    pub fn inverse_unnormalized(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.permute(data);
        self.butterflies(data, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut got = input.clone();
            FftPlan::new(n).forward(&mut got);
            assert_close(&got, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = FftPlan::new(n);
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * 31 % 17) as f64, (i * 7 % 13) as f64))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn pure_mode_has_single_peak() {
        // x[j] = exp(2*pi*i*3*j/n) transforms to n * delta[k - 3].
        let n = 32;
        let input: Vec<Complex> = (0..n)
            .map(|j| {
                Complex::from_polar_unit(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64)
            })
            .collect();
        let mut data = input;
        FftPlan::new(n).forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "mode {k}: {v:?}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        FftPlan::new(n).forward(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn linearity() {
        let n = 16;
        let plan = FftPlan::new(n);
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, -(i as f64))).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fs);
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fs, &combined, 1e-9);
    }
}
