//! Real-input FFT using the standard "pack two reals into one complex"
//! length-halving trick.
//!
//! A length-`n` real signal is transformed with a single length-`n/2` complex
//! FFT plus an O(n) untangling pass, producing the `n/2 + 1` non-redundant
//! Hermitian coefficients.

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for forward/inverse real FFTs of fixed even power-of-two length.
#[derive(Clone, Debug)]
pub struct RealFft {
    n: usize,
    half_plan: FftPlan,
    /// Twiddles `exp(-i*pi*k/ (n/2))` for the untangling pass, k = 0..n/4+1.
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Creates a real-FFT plan of length `n` (power of two, `n >= 2`).
    ///
    /// # Panics
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && crate::is_power_of_two(n),
            "real FFT length {n} must be a power of two >= 2"
        );
        let half = n / 2;
        let twiddles = (0..=half / 2)
            .map(|k| Complex::from_polar_unit(-std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        RealFft {
            n,
            half_plan: FftPlan::new(half),
            twiddles,
        }
    }

    /// Transform length (number of real input samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex output coefficients (`n/2 + 1`).
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform: `input` has `n` reals, returns `n/2 + 1` complex
    /// coefficients `X[0..=n/2]` (DC and Nyquist bins are purely real).
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.spectrum_len()];
        self.forward_into(input, &mut out);
        out
    }

    /// Zero-allocation forward transform into a caller-provided buffer of
    /// `n/2 + 1` coefficients. The length-`n/2` complex sub-FFT runs in place
    /// inside `out`, so no scratch is needed.
    ///
    /// # Panics
    /// Panics if `input.len() != n` or `out.len() != n/2 + 1`.
    pub fn forward_into(&self, input: &[f64], out: &mut [Complex]) {
        assert_eq!(input.len(), self.n, "buffer length mismatch");
        assert_eq!(out.len(), self.spectrum_len(), "spectrum length mismatch");
        let half = self.n / 2;
        // Pack even samples into re, odd into im, directly in `out[..half]`.
        for (j, slot) in out[..half].iter_mut().enumerate() {
            *slot = Complex::new(input[2 * j], input[2 * j + 1]);
        }
        self.half_plan.forward(&mut out[..half]);

        // Untangle in place: with E[k], O[k] the FFTs of even/odd
        // subsequences,
        //   Z[k]        = E[k] + i O[k]
        //   conj(Z[h-k]) = E[k] - i O[k]
        // so E and O are recovered by symmetric combinations, and
        //   X[k] = E[k] + w^k O[k],  w = exp(-2 pi i / n).
        // Each iteration reads and writes only slots {k, half-k}, so reading
        // both before writing keeps the in-place update exact.
        let z0 = out[0];
        for k in 1..=half / 2 {
            let zk = out[k];
            let zmk = out[half - k].conj();
            let e = (zk + zmk).scale(0.5);
            let o = (zk - zmk).scale(0.5).mul_i().scale(-1.0); // -i*(..)/1 => O[k]
            let w = self.twiddles[k];
            out[k] = e + w * o;
            // Mirror bin: X[h - k] = E[k].conj-symmetric partner.
            let w2 = Complex::new(-w.re, w.im); // exp(-i*pi*(half-k)/half) = -conj(w)
            out[half - k] = e.conj() + w2 * o.conj();
        }
        // DC and Nyquist from the k = 0 combination directly (purely real).
        out[0] = Complex::new(z0.re + z0.im, 0.0);
        out[half] = Complex::new(z0.re - z0.im, 0.0);
    }

    /// Inverse transform from `n/2 + 1` Hermitian coefficients back to `n`
    /// real samples (normalized; `inverse(forward(x)) == x`).
    ///
    /// # Panics
    /// Panics on spectrum length mismatch.
    pub fn inverse(&self, spectrum: &[Complex]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.inverse_into(spectrum, &mut out);
        out
    }

    /// Zero-allocation inverse transform into a caller-provided buffer of `n`
    /// reals. The length-`n/2` complex sub-FFT runs inside `out` reinterpreted
    /// as complex pairs, so no scratch is needed.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn inverse_into(&self, spectrum: &[Complex], out: &mut [f64]) {
        self.inverse_into_scaled(spectrum, out, 1.0);
    }

    /// Like [`RealFft::inverse_into`] but multiplies the result by `scale`,
    /// letting multi-dimensional wrappers fold their per-axis normalization
    /// into the repack pass for free.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn inverse_into_scaled(&self, spectrum: &[Complex], out: &mut [f64], scale: f64) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "spectrum length mismatch"
        );
        assert_eq!(out.len(), self.n, "buffer length mismatch");
        let half = self.n / 2;
        // `out` holds n = 2*half f64s; viewed as `half` (re, im) pairs it is
        // exactly the packed complex buffer the sub-FFT needs, and unpacking
        // the result back to interleaved reals is then a no-op. Complex is
        // repr(C) { re: f64, im: f64 } with the same alignment as f64, so the
        // cast is sound, and the regions are the same allocation.
        let z: &mut [Complex] =
            unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<Complex>(), half) };
        // Repack: Z[k] = E[k] + i O[k] with E[k] = (X[k] + conj(X[h-k]))/2,
        // O[k] = w^{-k} (X[k] - conj(X[h-k]))/2.
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spectrum[k];
            let xmk = spectrum[half - k].conj();
            let e = (xk + xmk).scale(0.5);
            // w^{-k} = conj(w^k); for k > half/2 use w^k = -conj(w^{half-k}),
            // hence w^{-k} = -w^{half-k}.
            let winv = if k <= half / 2 {
                self.twiddles[k].conj()
            } else {
                let w = self.twiddles[half - k];
                Complex::new(-w.re, -w.im)
            };
            let o = winv * (xk - xmk).scale(0.5);
            *zk = (e + o.mul_i()).scale(scale);
        }
        self.half_plan.inverse(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    #[test]
    fn forward_matches_full_complex_dft() {
        for &n in &[4usize, 8, 16, 64] {
            let input: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64)
                .collect();
            let as_complex: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let expected = dft_naive(&as_complex);
            let got = RealFft::new(n).forward(&input);
            for k in 0..=n / 2 {
                assert!(
                    (got[k].re - expected[k].re).abs() < 1e-8,
                    "n={n} k={k}: {:?} vs {:?}",
                    got[k],
                    expected[k]
                );
                assert!((got[k].im - expected[k].im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = RealFft::new(n);
        let input: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let back = plan.inverse(&plan.forward(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let input: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 3.0 + 1.0).collect();
        let spec = RealFft::new(n).forward(&input);
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
        let mean: f64 = input.iter().sum::<f64>();
        assert!((spec[0].re - mean).abs() < 1e-9);
    }
}
