//! Real-input FFT using the standard "pack two reals into one complex"
//! length-halving trick.
//!
//! A length-`n` real signal is transformed with a single length-`n/2` complex
//! FFT plus an O(n) untangling pass, producing the `n/2 + 1` non-redundant
//! Hermitian coefficients.

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for forward/inverse real FFTs of fixed even power-of-two length.
#[derive(Clone, Debug)]
pub struct RealFft {
    n: usize,
    half_plan: FftPlan,
    /// Twiddles `exp(-i*pi*k/ (n/2))` for the untangling pass, k = 0..n/4+1.
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Creates a real-FFT plan of length `n` (power of two, `n >= 2`).
    ///
    /// # Panics
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && crate::is_power_of_two(n), "real FFT length {n} must be a power of two >= 2");
        let half = n / 2;
        let twiddles = (0..=half / 2)
            .map(|k| Complex::from_polar_unit(-std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        RealFft { n, half_plan: FftPlan::new(half), twiddles }
    }

    /// Transform length (number of real input samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex output coefficients (`n/2 + 1`).
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform: `input` has `n` reals, returns `n/2 + 1` complex
    /// coefficients `X[0..=n/2]` (DC and Nyquist bins are purely real).
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "buffer length mismatch");
        let half = self.n / 2;
        // Pack even samples into re, odd into im.
        let mut z: Vec<Complex> = (0..half)
            .map(|j| Complex::new(input[2 * j], input[2 * j + 1]))
            .collect();
        self.half_plan.forward(&mut z);

        let mut out = vec![Complex::ZERO; half + 1];
        // Untangle: with E[k], O[k] the FFTs of even/odd subsequences,
        //   Z[k]        = E[k] + i O[k]
        //   conj(Z[h-k]) = E[k] - i O[k]
        // so E and O are recovered by symmetric combinations, and
        //   X[k] = E[k] + w^k O[k],  w = exp(-2 pi i / n).
        for k in 0..=half / 2 {
            let zk = z[k];
            let zmk = z[(half - k) % half].conj();
            let e = (zk + zmk).scale(0.5);
            let o = (zk - zmk).scale(0.5).mul_i().scale(-1.0); // -i*(..)/1 => O[k]
            let w = self.twiddles[k];
            out[k] = e + w * o;
            // Mirror bin: X[h - k] = E[k].conj-symmetric partner.
            let e2 = e.conj();
            let o2 = o.conj();
            let w2 = Complex::new(-w.re, w.im); // exp(-i*pi*(half-k)/half) = -conj(w)
            out[half - k] = e2 + w2 * o2;
        }
        // DC and Nyquist from the k = 0 combination directly (purely real).
        out[0] = Complex::new(z[0].re + z[0].im, 0.0);
        out[half] = Complex::new(z[0].re - z[0].im, 0.0);
        out
    }

    /// Inverse transform from `n/2 + 1` Hermitian coefficients back to `n`
    /// real samples (normalized; `inverse(forward(x)) == x`).
    ///
    /// # Panics
    /// Panics on spectrum length mismatch.
    pub fn inverse(&self, spectrum: &[Complex]) -> Vec<f64> {
        assert_eq!(spectrum.len(), self.spectrum_len(), "spectrum length mismatch");
        let half = self.n / 2;
        // Repack: Z[k] = E[k] + i O[k] with E[k] = (X[k] + conj(X[h-k]))/2,
        // O[k] = w^{-k} (X[k] - conj(X[h-k]))/2.
        let mut z = vec![Complex::ZERO; half];
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spectrum[k];
            let xmk = spectrum[half - k].conj();
            let e = (xk + xmk).scale(0.5);
            // w^{-k} = conj(w^k); for k > half/2 use w^k = -conj(w^{half-k}),
            // hence w^{-k} = -w^{half-k}.
            let winv = if k <= half / 2 {
                self.twiddles[k].conj()
            } else {
                let w = self.twiddles[half - k];
                Complex::new(-w.re, -w.im)
            };
            let o = winv * (xk - xmk).scale(0.5);
            *zk = e + o.mul_i();
        }
        self.half_plan.inverse(&mut z);
        let mut out = vec![0.0; self.n];
        for (j, zj) in z.iter().enumerate() {
            out[2 * j] = zj.re;
            out[2 * j + 1] = zj.im;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    #[test]
    fn forward_matches_full_complex_dft() {
        for &n in &[4usize, 8, 16, 64] {
            let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64).collect();
            let as_complex: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let expected = dft_naive(&as_complex);
            let got = RealFft::new(n).forward(&input);
            for k in 0..=n / 2 {
                assert!(
                    (got[k].re - expected[k].re).abs() < 1e-8,
                    "n={n} k={k}: {:?} vs {:?}",
                    got[k],
                    expected[k]
                );
                assert!((got[k].im - expected[k].im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = RealFft::new(n);
        let input: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let back = plan.inverse(&plan.forward(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let input: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 3.0 + 1.0).collect();
        let spec = RealFft::new(n).forward(&input);
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
        let mean: f64 = input.iter().sum::<f64>();
        assert!((spec[0].re - mean).abs() < 1e-9);
    }
}
