//! Real-input FFT using the standard "pack two reals into one complex"
//! length-halving trick.
//!
//! A length-`n` real signal is transformed with a single length-`n/2` complex
//! FFT plus an O(n) untangling pass, producing the `n/2 + 1` non-redundant
//! Hermitian coefficients.

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Plan for forward/inverse real FFTs of fixed even power-of-two length.
#[derive(Clone, Debug)]
pub struct RealFft {
    n: usize,
    half_plan: FftPlan,
    /// Twiddles `exp(-i*pi*k/ (n/2))` for the untangling pass, k = 0..n/4+1.
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Creates a real-FFT plan of length `n` (power of two, `n >= 2`).
    ///
    /// # Panics
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && crate::is_power_of_two(n),
            "real FFT length {n} must be a power of two >= 2"
        );
        let half = n / 2;
        let twiddles = (0..=half / 2)
            .map(|k| Complex::from_polar_unit(-std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        RealFft {
            n,
            half_plan: FftPlan::new(half),
            twiddles,
        }
    }

    /// Transform length (number of real input samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex output coefficients (`n/2 + 1`).
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform: `input` has `n` reals, returns `n/2 + 1` complex
    /// coefficients `X[0..=n/2]` (DC and Nyquist bins are purely real).
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.spectrum_len()];
        self.forward_into(input, &mut out);
        out
    }

    /// Zero-allocation forward transform into a caller-provided buffer of
    /// `n/2 + 1` coefficients. The length-`n/2` complex sub-FFT runs in place
    /// inside `out`, so no scratch is needed.
    ///
    /// # Panics
    /// Panics if `input.len() != n` or `out.len() != n/2 + 1`.
    pub fn forward_into(&self, input: &[f64], out: &mut [Complex]) {
        assert_eq!(input.len(), self.n, "buffer length mismatch");
        assert_eq!(out.len(), self.spectrum_len(), "spectrum length mismatch");
        let half = self.n / 2;
        // Pack even samples into re, odd into im, directly in `out[..half]`.
        for (j, slot) in out[..half].iter_mut().enumerate() {
            *slot = Complex::new(input[2 * j], input[2 * j + 1]);
        }
        self.half_plan.forward(&mut out[..half]);

        // Untangle in place: with E[k], O[k] the FFTs of even/odd
        // subsequences,
        //   Z[k]        = E[k] + i O[k]
        //   conj(Z[h-k]) = E[k] - i O[k]
        // so E and O are recovered by symmetric combinations, and
        //   X[k] = E[k] + w^k O[k],  w = exp(-2 pi i / n).
        // Each iteration reads and writes only slots {k, half-k}, so reading
        // both before writing keeps the in-place update exact.
        let z0 = out[0];
        for k in 1..=half / 2 {
            let zk = out[k];
            let zmk = out[half - k].conj();
            let (xk, xhk) = untangle_pair(zk, zmk, self.twiddles[k]);
            out[k] = xk;
            out[half - k] = xhk;
        }
        // DC and Nyquist from the k = 0 combination directly (purely real).
        out[0] = Complex::new(z0.re + z0.im, 0.0);
        out[half] = Complex::new(z0.re - z0.im, 0.0);
    }

    /// Inverse transform from `n/2 + 1` Hermitian coefficients back to `n`
    /// real samples (normalized; `inverse(forward(x)) == x`).
    ///
    /// # Panics
    /// Panics on spectrum length mismatch.
    pub fn inverse(&self, spectrum: &[Complex]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.inverse_into(spectrum, &mut out);
        out
    }

    /// Zero-allocation inverse transform into a caller-provided buffer of `n`
    /// reals. The length-`n/2` complex sub-FFT runs inside `out` reinterpreted
    /// as complex pairs, so no scratch is needed.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn inverse_into(&self, spectrum: &[Complex], out: &mut [f64]) {
        self.inverse_into_scaled(spectrum, out, 1.0);
    }

    /// Like [`RealFft::inverse_into`] but multiplies the result by `scale`,
    /// letting multi-dimensional wrappers fold their per-axis normalization
    /// into the repack pass for free.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn inverse_into_scaled(&self, spectrum: &[Complex], out: &mut [f64], scale: f64) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "spectrum length mismatch"
        );
        assert_eq!(out.len(), self.n, "buffer length mismatch");
        let half = self.n / 2;
        // `out` holds n = 2*half f64s; viewed as `half` (re, im) pairs it is
        // exactly the packed complex buffer the sub-FFT needs, and unpacking
        // the result back to interleaved reals is then a no-op. Complex is
        // repr(C) { re: f64, im: f64 } with the same alignment as f64, so the
        // cast is sound, and the regions are the same allocation.
        let z: &mut [Complex] =
            unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<Complex>(), half) };
        // Repack: Z[k] = E[k] + i O[k] with E[k] = (X[k] + conj(X[h-k]))/2,
        // O[k] = w^{-k} (X[k] - conj(X[h-k]))/2.
        for (k, zk) in z.iter_mut().enumerate() {
            *zk = self.repack_one(spectrum, k, scale);
        }
        self.half_plan.inverse(z);
    }

    /// One packed complex sample `Z[k]` of the inverse pre-pass, scaled.
    #[inline]
    fn repack_one(&self, spectrum: &[Complex], k: usize, scale: f64) -> Complex {
        let half = self.n / 2;
        let xk = spectrum[k];
        let xmk = spectrum[half - k].conj();
        let e = (xk + xmk).scale(0.5);
        // w^{-k} = conj(w^k); for k > half/2 use w^k = -conj(w^{half-k}),
        // hence w^{-k} = -w^{half-k}.
        let winv = if k <= half / 2 {
            self.twiddles[k].conj()
        } else {
            let w = self.twiddles[half - k];
            Complex::new(-w.re, -w.im)
        };
        let o = winv * (xk - xmk).scale(0.5);
        (e + o.mul_i()).scale(scale)
    }

    /// Untangles one sequence of a pair-interleaved half-FFT result into its
    /// Hermitian spectrum: reads `z[2k + lane]`, writes `out[0..=half]`.
    fn untangle_lane(&self, z: &[Complex], lane: usize, out: &mut [Complex]) {
        let half = self.n / 2;
        let z0 = z[lane];
        for k in 1..=half / 2 {
            let zk = z[2 * k + lane];
            let zmk = z[2 * (half - k) + lane].conj();
            let (xk, xhk) = untangle_pair(zk, zmk, self.twiddles[k]);
            out[k] = xk;
            // Same write order as the in-place untangle: at k == half/2 both
            // indices coincide and the mirror write wins.
            out[half - k] = xhk;
        }
        out[0] = Complex::new(z0.re + z0.im, 0.0);
        out[half] = Complex::new(z0.re - z0.im, 0.0);
    }

    /// Forward transform of two real rows at once through the
    /// pair-interleaved half-FFT (the SIMD-friendly path used by the
    /// multi-dimensional drivers). `scratch` must hold `n` complex values.
    ///
    /// # Panics
    /// Panics on any buffer length mismatch.
    pub fn forward2_into(
        &self,
        in0: &[f64],
        in1: &[f64],
        out0: &mut [Complex],
        out1: &mut [Complex],
        scratch: &mut [Complex],
    ) {
        let half = self.n / 2;
        assert_eq!(in0.len(), self.n, "buffer length mismatch");
        assert_eq!(in1.len(), self.n, "buffer length mismatch");
        assert_eq!(out0.len(), self.spectrum_len(), "spectrum length mismatch");
        assert_eq!(out1.len(), self.spectrum_len(), "spectrum length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        for j in 0..half {
            scratch[2 * j] = Complex::new(in0[2 * j], in0[2 * j + 1]);
            scratch[2 * j + 1] = Complex::new(in1[2 * j], in1[2 * j + 1]);
        }
        self.half_plan.forward2(scratch);
        self.untangle_lane(scratch, 0, out0);
        self.untangle_lane(scratch, 1, out1);
    }

    /// Inverse transform of two Hermitian spectra at once through the
    /// pair-interleaved half-FFT, each scaled by `scale`. `scratch` must
    /// hold `n` complex values.
    ///
    /// # Panics
    /// Panics on any buffer length mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn inverse2_into_scaled(
        &self,
        spec0: &[Complex],
        spec1: &[Complex],
        out0: &mut [f64],
        out1: &mut [f64],
        scratch: &mut [Complex],
        scale: f64,
    ) {
        let half = self.n / 2;
        assert_eq!(spec0.len(), self.spectrum_len(), "spectrum length mismatch");
        assert_eq!(spec1.len(), self.spectrum_len(), "spectrum length mismatch");
        assert_eq!(out0.len(), self.n, "buffer length mismatch");
        assert_eq!(out1.len(), self.n, "buffer length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        for k in 0..half {
            scratch[2 * k] = self.repack_one(spec0, k, scale);
            scratch[2 * k + 1] = self.repack_one(spec1, k, scale);
        }
        self.half_plan.inverse2(scratch);
        for k in 0..half {
            let (z0, z1) = (scratch[2 * k], scratch[2 * k + 1]);
            out0[2 * k] = z0.re;
            out0[2 * k + 1] = z0.im;
            out1[2 * k] = z1.re;
            out1[2 * k + 1] = z1.im;
        }
    }
}

/// The symmetric untangle combination shared by the in-place and lane paths:
/// given `Z[k]` and `conj(Z[h-k])`, returns `(X[k], X[h-k])`.
#[inline]
fn untangle_pair(zk: Complex, zmk: Complex, w: Complex) -> (Complex, Complex) {
    let e = (zk + zmk).scale(0.5);
    let o = (zk - zmk).scale(0.5).mul_i().scale(-1.0); // -i*(..)/1 => O[k]
    let x = e + w * o;
    // Mirror bin: X[h - k] = E[k].conj-symmetric partner.
    let w2 = Complex::new(-w.re, w.im); // exp(-i*pi*(half-k)/half) = -conj(w)
    (x, e.conj() + w2 * o.conj())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    #[test]
    fn forward_matches_full_complex_dft() {
        for &n in &[4usize, 8, 16, 64] {
            let input: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64)
                .collect();
            let as_complex: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let expected = dft_naive(&as_complex);
            let got = RealFft::new(n).forward(&input);
            for k in 0..=n / 2 {
                assert!(
                    (got[k].re - expected[k].re).abs() < 1e-8,
                    "n={n} k={k}: {:?} vs {:?}",
                    got[k],
                    expected[k]
                );
                assert!((got[k].im - expected[k].im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = RealFft::new(n);
        let input: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let back = plan.inverse(&plan.forward(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn pair_real_transform_matches_single() {
        for &n in &[2usize, 4, 8, 32, 128] {
            let plan = RealFft::new(n);
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.59).cos() - 1.5).collect();
            let (sa, sb) = (plan.forward(&a), plan.forward(&b));
            let mut pa = vec![Complex::ZERO; plan.spectrum_len()];
            let mut pb = vec![Complex::ZERO; plan.spectrum_len()];
            let mut scratch = vec![Complex::ZERO; n];
            plan.forward2_into(&a, &b, &mut pa, &mut pb, &mut scratch);
            for k in 0..plan.spectrum_len() {
                assert!(
                    (pa[k].re - sa[k].re).abs() < 1e-10 && (pa[k].im - sa[k].im).abs() < 1e-10,
                    "n={n} k={k} lane0"
                );
                assert!(
                    (pb[k].re - sb[k].re).abs() < 1e-10 && (pb[k].im - sb[k].im).abs() < 1e-10,
                    "n={n} k={k} lane1"
                );
            }
            let mut ra = vec![0.0; n];
            let mut rb = vec![0.0; n];
            plan.inverse2_into_scaled(&pa, &pb, &mut ra, &mut rb, &mut scratch, 1.0);
            for i in 0..n {
                assert!((ra[i] - a[i]).abs() < 1e-10, "n={n} i={i} lane0 roundtrip");
                assert!((rb[i] - b[i]).abs() < 1e-10, "n={n} i={i} lane1 roundtrip");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let input: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 3.0 + 1.0).collect();
        let spec = RealFft::new(n).forward(&input);
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
        let mean: f64 = input.iter().sum::<f64>();
        assert!((spec[0].re - mean).abs() < 1e-9);
    }
}
