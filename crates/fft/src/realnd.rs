//! Multi-dimensional real-to-complex FFTs storing only the Hermitian
//! half-spectrum.
//!
//! A real field is conjugate-symmetric in spectral space, so only the
//! coefficients with non-negative wavenumber along the contiguous axis are
//! stored: the last axis shrinks from `n` to `n/2 + 1`. This halves both the
//! arithmetic (the contiguous-axis transforms run at half length) and the
//! memory traffic of the remaining axis passes — the main win for a
//! pseudo-spectral solver whose fields are all real.
//!
//! Layouts (matching [`crate::Fft2d`] / [`crate::Fft3d`] on the leading axes):
//! - 2D: real `index = x * ny + y`, spectrum `index = x * nyc + y` with
//!   `nyc = ny/2 + 1`
//! - 3D: real `index = (x * ny + y) * nz + z`, spectrum
//!   `index = (x * ny + y) * nzc + z` with `nzc = nz/2 + 1`
//!
//! All transforms write into caller-provided buffers and allocate no
//! field-sized scratch: the contiguous-axis passes run in place row by row
//! (see [`RealFft::forward_into`]), and the strided passes reuse the pencil
//! machinery shared with the complex transforms.

use rayon::prelude::*;
use sickle_simd::Kernel;

use crate::complex::Complex;
use crate::nd::{transform_strided_with, Dir};
use crate::plan::FftPlan;
use crate::real::RealFft;

/// Forward-transforms contiguous real rows into half-spectrum rows, two at a
/// time under [`Kernel::Optimized`] (pair-interleaved half-FFT), row by row
/// under [`Kernel::Naive`].
fn rows_forward(row: &RealFft, real: &[f64], spec: &mut [Complex], kernel: Kernel) {
    let n = row.len();
    let nc = row.spectrum_len();
    match kernel {
        Kernel::Naive => real
            .par_chunks(n)
            .zip(spec.par_chunks_mut(nc))
            .for_each(|(r, s)| row.forward_into(r, s)),
        Kernel::Optimized => real
            .par_chunks(2 * n)
            .zip(spec.par_chunks_mut(2 * nc))
            .for_each_init(
                || vec![Complex::ZERO; n],
                |scratch, (r, s)| {
                    if r.len() == 2 * n {
                        let (r0, r1) = r.split_at(n);
                        let (s0, s1) = s.split_at_mut(nc);
                        row.forward2_into(r0, r1, s0, s1, scratch);
                    } else {
                        row.forward_into(r, s);
                    }
                },
            ),
    }
}

/// Inverse-transforms half-spectrum rows back to real rows (each scaled by
/// `scale`), pairing rows under [`Kernel::Optimized`].
fn rows_inverse(row: &RealFft, spec: &[Complex], real: &mut [f64], scale: f64, kernel: Kernel) {
    let n = row.len();
    let nc = row.spectrum_len();
    match kernel {
        Kernel::Naive => spec
            .par_chunks(nc)
            .zip(real.par_chunks_mut(n))
            .for_each(|(s, r)| row.inverse_into_scaled(s, r, scale)),
        Kernel::Optimized => spec
            .par_chunks(2 * nc)
            .zip(real.par_chunks_mut(2 * n))
            .for_each_init(
                || vec![Complex::ZERO; n],
                |scratch, (s, r)| {
                    if s.len() == 2 * nc {
                        let (s0, s1) = s.split_at(nc);
                        let (r0, r1) = r.split_at_mut(n);
                        row.inverse2_into_scaled(s0, s1, r0, r1, scratch, scale);
                    } else {
                        row.inverse_into_scaled(s, r, scale);
                    }
                },
            ),
    }
}

/// Plan for 2D real-to-complex FFTs of fixed shape `(nx, ny)`.
#[derive(Clone, Debug)]
pub struct RealFft2d {
    nx: usize,
    ny: usize,
    row: RealFft,
    plan_x: FftPlan,
}

impl RealFft2d {
    /// Creates a 2D real-FFT plan; both dimensions must be powers of two and
    /// `ny >= 2`.
    ///
    /// # Panics
    /// Panics if a dimension is not a power of two or `ny < 2`.
    pub fn new(nx: usize, ny: usize) -> Self {
        RealFft2d {
            nx,
            ny,
            row: RealFft::new(ny),
            plan_x: FftPlan::new(nx),
        }
    }

    /// Shape `(nx, ny)` of the real field.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of real samples (`nx * ny`).
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of stored half-spectrum coefficients (`nx * (ny/2 + 1)`).
    pub fn spectrum_len(&self) -> usize {
        self.nx * self.row.spectrum_len()
    }

    /// Forward transform: real field (`nx * ny`) into the half-spectrum
    /// (`nx * (ny/2 + 1)`).
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn forward(&self, real: &[f64], spec: &mut [Complex]) {
        self.forward_with(real, spec, sickle_simd::kernel());
    }

    /// Inverse transform back to a real field (normalized so that
    /// `inverse(forward(x)) == x`). **Destroys** `spec`, which doubles as the
    /// workspace for the strided pass.
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn inverse(&self, spec: &mut [Complex], real: &mut [f64]) {
        self.inverse_with(spec, real, sickle_simd::kernel());
    }

    /// [`Self::forward`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch).
    #[doc(hidden)]
    pub fn forward_with(&self, real: &[f64], spec: &mut [Complex], kernel: Kernel) {
        assert_eq!(real.len(), self.len(), "real buffer shape mismatch");
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum buffer shape mismatch"
        );
        let nyc = self.row.spectrum_len();
        rows_forward(&self.row, real, spec, kernel);
        transform_strided_with(&self.plan_x, spec, 1, nyc, nyc, Dir::Forward, kernel);
    }

    /// [`Self::inverse`] with an explicit kernel choice.
    #[doc(hidden)]
    pub fn inverse_with(&self, spec: &mut [Complex], real: &mut [f64], kernel: Kernel) {
        assert_eq!(real.len(), self.len(), "real buffer shape mismatch");
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum buffer shape mismatch"
        );
        let nyc = self.row.spectrum_len();
        transform_strided_with(&self.plan_x, spec, 1, nyc, nyc, Dir::Inverse, kernel);
        let scale = 1.0 / self.nx as f64;
        rows_inverse(&self.row, spec, real, scale, kernel);
    }
}

/// Plan for 3D real-to-complex FFTs of fixed shape `(nx, ny, nz)`.
#[derive(Clone, Debug)]
pub struct RealFft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    row: RealFft,
    plan_x: FftPlan,
    plan_y: FftPlan,
}

impl RealFft3d {
    /// Creates a 3D real-FFT plan; all dimensions must be powers of two and
    /// `nz >= 2`.
    ///
    /// # Panics
    /// Panics if a dimension is not a power of two or `nz < 2`.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        RealFft3d {
            nx,
            ny,
            nz,
            row: RealFft::new(nz),
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
        }
    }

    /// Shape `(nx, ny, nz)` of the real field.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of real samples (`nx * ny * nz`).
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns true if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stored coefficients along the contiguous axis (`nz/2 + 1`).
    pub fn nzc(&self) -> usize {
        self.row.spectrum_len()
    }

    /// Number of stored half-spectrum coefficients (`nx * ny * (nz/2 + 1)`).
    pub fn spectrum_len(&self) -> usize {
        self.nx * self.ny * self.nzc()
    }

    /// Forward transform: real field (`nx * ny * nz`) into the half-spectrum
    /// (`nx * ny * (nz/2 + 1)`).
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn forward(&self, real: &[f64], spec: &mut [Complex]) {
        self.forward_with(real, spec, sickle_simd::kernel());
    }

    /// Inverse transform back to a real field (normalized so that
    /// `inverse(forward(x)) == x`). **Destroys** `spec`, which doubles as the
    /// workspace for the strided passes — callers that need to keep the
    /// spectrum must copy it first.
    ///
    /// # Panics
    /// Panics on buffer length mismatch.
    pub fn inverse(&self, spec: &mut [Complex], real: &mut [f64]) {
        self.inverse_with(spec, real, sickle_simd::kernel());
    }

    /// [`Self::forward`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch).
    #[doc(hidden)]
    pub fn forward_with(&self, real: &[f64], spec: &mut [Complex], kernel: Kernel) {
        assert_eq!(real.len(), self.len(), "real buffer shape mismatch");
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum buffer shape mismatch"
        );
        let nzc = self.nzc();
        // z axis: real-to-complex on contiguous rows, in parallel.
        rows_forward(&self.row, real, spec, kernel);
        // y axis: pencils of stride nzc within each x-slab.
        transform_strided_with(&self.plan_y, spec, self.nx, nzc, nzc, Dir::Forward, kernel);
        // x axis: pencils of stride ny*nzc.
        let slab = self.ny * nzc;
        transform_strided_with(&self.plan_x, spec, 1, slab, slab, Dir::Forward, kernel);
    }

    /// [`Self::inverse`] with an explicit kernel choice.
    #[doc(hidden)]
    pub fn inverse_with(&self, spec: &mut [Complex], real: &mut [f64], kernel: Kernel) {
        assert_eq!(real.len(), self.len(), "real buffer shape mismatch");
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "spectrum buffer shape mismatch"
        );
        let nzc = self.nzc();
        let slab = self.ny * nzc;
        transform_strided_with(&self.plan_x, spec, 1, slab, slab, Dir::Inverse, kernel);
        transform_strided_with(&self.plan_y, spec, self.nx, nzc, nzc, Dir::Inverse, kernel);
        // z axis: complex-to-real rows; the x/y passes above skipped their
        // 1/(nx*ny) normalization, folded into the row repack here.
        let scale = 1.0 / (self.nx * self.ny) as f64;
        rows_inverse(&self.row, spec, real, scale, kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::{Fft2d, Fft3d};

    fn sample_field(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((i * 37 % 61) as f64) * 0.25 - 7.0 + (i as f64 * 0.13).sin())
            .collect()
    }

    #[test]
    fn rfft2d_roundtrip() {
        let (nx, ny) = (8, 16);
        let plan = RealFft2d::new(nx, ny);
        let input = sample_field(nx * ny);
        let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
        plan.forward(&input, &mut spec);
        let mut back = vec![0.0; nx * ny];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn rfft2d_matches_complex_fft2d() {
        let (nx, ny) = (8, 8);
        let rplan = RealFft2d::new(nx, ny);
        let cplan = Fft2d::new(nx, ny);
        let input = sample_field(nx * ny);
        let mut spec = vec![Complex::ZERO; rplan.spectrum_len()];
        rplan.forward(&input, &mut spec);
        let mut full: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
        cplan.forward(&mut full);
        let nyc = ny / 2 + 1;
        for x in 0..nx {
            for y in 0..nyc {
                let got = spec[x * nyc + y];
                let want = full[x * ny + y];
                assert!(
                    (got.re - want.re).abs() < 1e-9 && (got.im - want.im).abs() < 1e-9,
                    "({x},{y}): {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn rfft3d_roundtrip() {
        let (nx, ny, nz) = (4, 8, 16);
        let plan = RealFft3d::new(nx, ny, nz);
        let input = sample_field(nx * ny * nz);
        let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
        plan.forward(&input, &mut spec);
        let mut back = vec![0.0; nx * ny * nz];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn rfft3d_matches_complex_fft3d() {
        let (nx, ny, nz) = (8, 4, 8);
        let rplan = RealFft3d::new(nx, ny, nz);
        let cplan = Fft3d::new(nx, ny, nz);
        let input = sample_field(nx * ny * nz);
        let mut spec = vec![Complex::ZERO; rplan.spectrum_len()];
        rplan.forward(&input, &mut spec);
        let mut full: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
        cplan.forward(&mut full);
        let nzc = nz / 2 + 1;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nzc {
                    let got = spec[(x * ny + y) * nzc + z];
                    let want = full[(x * ny + y) * nz + z];
                    assert!(
                        (got.re - want.re).abs() < 1e-9 && (got.im - want.im).abs() < 1e-9,
                        "({x},{y},{z}): {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rfft3d_hermitian_redundant_half_is_recoverable() {
        // The dropped modes are conj(X[-kx, -ky, -kz]); verify one of them.
        let (nx, ny, nz) = (4, 4, 8);
        let rplan = RealFft3d::new(nx, ny, nz);
        let cplan = Fft3d::new(nx, ny, nz);
        let input = sample_field(nx * ny * nz);
        let mut spec = vec![Complex::ZERO; rplan.spectrum_len()];
        rplan.forward(&input, &mut spec);
        let mut full: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
        cplan.forward(&mut full);
        let nzc = nz / 2 + 1;
        for (x, y, z) in [(1usize, 2usize, 5usize), (3, 1, 7), (0, 3, 6)] {
            let want = full[(x * ny + y) * nz + z];
            // X[x, y, z] = conj(X[(nx-x)%nx, (ny-y)%ny, nz-z]) for z > nz/2.
            let (mx, my, mz) = ((nx - x) % nx, (ny - y) % ny, nz - z);
            let got = spec[(mx * ny + my) * nzc + mz].conj();
            assert!(
                (got.re - want.re).abs() < 1e-9 && (got.im - want.im).abs() < 1e-9,
                "({x},{y},{z}): {got:?} vs {want:?}"
            );
        }
    }
}
