//! Optimized-vs-naive agreement for the FFT kernel family, across the full
//! stack the dataset generators use: 1D complex plans against the O(n²)
//! serial DFT reference, and the 2D/3D complex and real transforms under
//! both sides of the [`sickle_fft::Kernel`] switch.
//!
//! The pair-interleaved AVX2 butterflies use FMA, so they are allowed to
//! differ from the portable path at rounding level; the contract pinned here
//! is ≤ 1e-10 against the serial reference and ≤ 1e-10 roundtrips.

use sickle_fft::{dft_naive, Complex, Fft3d, FftPlan, Kernel, RealFft3d};

/// Deterministic quasi-random signal (no rand dev-dependency needed).
fn signal(n: usize, seed: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.7310 + seed).sin() * 3.0 + (i as f64 * 1.93).cos())
        .collect()
}

fn complex_signal(n: usize, seed: f64) -> Vec<Complex> {
    let re = signal(n, seed);
    let im = signal(n, seed + 11.0);
    re.into_iter()
        .zip(im)
        .map(|(r, i)| Complex::new(r, i))
        .collect()
}

#[test]
fn pair_butterflies_match_serial_dft_reference() {
    for &n in &[2usize, 4, 8, 64, 256] {
        let plan = FftPlan::new(n);
        let a = complex_signal(n, 0.3);
        let b = complex_signal(n, 7.7);
        let expected_a = dft_naive(&a);
        let expected_b = dft_naive(&b);
        // Interleave into the pair layout and run the vectorized pair kernel.
        let mut pair = vec![Complex::ZERO; 2 * n];
        for k in 0..n {
            pair[2 * k] = a[k];
            pair[2 * k + 1] = b[k];
        }
        plan.forward2(&mut pair);
        for k in 0..n {
            for (lane, exp) in [(0, &expected_a[k]), (1, &expected_b[k])] {
                let got = pair[2 * k + lane];
                assert!(
                    (got.re - exp.re).abs() < 1e-10 && (got.im - exp.im).abs() < 1e-10,
                    "n={n} k={k} lane={lane}: {got:?} vs {exp:?}"
                );
            }
        }
        // Roundtrip through the pair inverse.
        plan.inverse2(&mut pair);
        for k in 0..n {
            for (lane, orig) in [(0, &a[k]), (1, &b[k])] {
                let got = pair[2 * k + lane];
                assert!(
                    (got.re - orig.re).abs() < 1e-10 && (got.im - orig.im).abs() < 1e-10,
                    "roundtrip n={n} k={k} lane={lane}"
                );
            }
        }
    }
}

#[test]
fn fft3d_kernels_agree_and_roundtrip() {
    for &(nx, ny, nz) in &[(4usize, 8usize, 8usize), (8, 4, 16)] {
        let fft = Fft3d::new(nx, ny, nz);
        let orig = complex_signal(nx * ny * nz, 1.9);
        let mut naive = orig.clone();
        let mut opt = orig.clone();
        fft.forward_with(&mut naive, Kernel::Naive);
        fft.forward_with(&mut opt, Kernel::Optimized);
        for (i, (a, b)) in naive.iter().zip(&opt).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10,
                "{nx}x{ny}x{nz} spectrum[{i}]: naive {a:?} vs optimized {b:?}"
            );
        }
        fft.inverse_with(&mut opt, Kernel::Optimized);
        for (i, (a, b)) in orig.iter().zip(&opt).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10,
                "roundtrip[{i}]"
            );
        }
    }
}

#[test]
fn real_fft3d_kernels_agree_and_roundtrip() {
    for &(nx, ny, nz) in &[(8usize, 8usize, 8usize), (4, 16, 8)] {
        let rfft = RealFft3d::new(nx, ny, nz);
        let orig = signal(nx * ny * nz, 4.2);
        let nspec = nx * ny * (nz / 2 + 1);
        let mut spec_naive = vec![Complex::ZERO; nspec];
        let mut spec_opt = vec![Complex::ZERO; nspec];
        rfft.forward_with(&orig, &mut spec_naive, Kernel::Naive);
        rfft.forward_with(&orig, &mut spec_opt, Kernel::Optimized);
        for (i, (a, b)) in spec_naive.iter().zip(&spec_opt).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10,
                "{nx}x{ny}x{nz} spectrum[{i}]: naive {a:?} vs optimized {b:?}"
            );
        }
        // Cross-kernel roundtrip: optimized forward, naive inverse, and
        // vice versa, both land back on the input.
        let mut back = vec![0.0; orig.len()];
        rfft.inverse_with(&mut spec_opt, &mut back, Kernel::Naive);
        for (i, (a, b)) in orig.iter().zip(&back).enumerate() {
            assert!((a - b).abs() < 1e-10, "opt->naive roundtrip[{i}]");
        }
        rfft.inverse_with(&mut spec_naive, &mut back, Kernel::Optimized);
        for (i, (a, b)) in orig.iter().zip(&back).enumerate() {
            assert!((a - b).abs() < 1e-10, "naive->opt roundtrip[{i}]");
        }
    }
}
