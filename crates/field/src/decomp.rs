//! Slab domain decomposition with ghost (halo) layers.
//!
//! The paper's MPI sampling runs distribute raw-data scans across ranks;
//! stencils (the derived quantities of [`crate::derived`]) then need halo
//! exchange at slab boundaries. This module provides the decomposition
//! arithmetic and the gather/scatter kernels: each rank owns a contiguous
//! slab along one axis, [`SlabDecomposition::extract_with_ghosts`] packs the
//! slab plus `g` periodic ghost planes on each side, and
//! [`SlabDecomposition::assemble`] reassembles rank outputs into the global
//! field — so a distributed stencil computation can be verified point-for-
//! point against the serial one.

use serde::{Deserialize, Serialize};

use crate::grid::{Axis, Grid3};

/// A balanced slab decomposition of a grid along one axis.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlabDecomposition {
    /// The decomposed grid.
    pub grid: Grid3,
    /// Number of ranks (slabs).
    pub ranks: usize,
    /// Decomposition axis.
    pub axis: Axis,
}

impl SlabDecomposition {
    /// Creates a decomposition; every rank receives at least one plane.
    ///
    /// # Panics
    /// Panics if `ranks` is zero or exceeds the axis extent.
    pub fn new(grid: Grid3, ranks: usize, axis: Axis) -> Self {
        let extent = grid.extent(axis);
        assert!(ranks >= 1, "need at least one rank");
        assert!(
            ranks <= extent,
            "cannot split {extent} planes across {ranks} ranks"
        );
        SlabDecomposition { grid, ranks, axis }
    }

    /// The `(start, len)` plane range owned by `rank` (balanced: the first
    /// `extent % ranks` ranks get one extra plane).
    pub fn slab(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.ranks, "rank {rank} out of range");
        let extent = self.grid.extent(self.axis);
        let base = extent / self.ranks;
        let extra = extent % self.ranks;
        let len = base + usize::from(rank < extra);
        let start = rank * base + rank.min(extra);
        (start, len)
    }

    /// Grid describing one rank's slab *including* `ghost` planes per side.
    /// The domain length along the axis shrinks with the plane count so the
    /// grid spacing (and therefore any stencil) matches the global grid.
    pub fn slab_grid(&self, rank: usize, ghost: usize) -> Grid3 {
        let (_, len) = self.slab(rank);
        let planes = len + 2 * ghost;
        let mut g = self.grid;
        match self.axis {
            Axis::X => {
                let dx = g.lx / g.nx as f64;
                g.nx = planes;
                g.lx = dx * planes as f64;
            }
            Axis::Y => {
                let dy = g.ly / g.ny as f64;
                g.ny = planes;
                g.ly = dy * planes as f64;
            }
            Axis::Z => {
                let dz = g.lz / g.nz as f64;
                g.nz = planes;
                g.lz = dz * planes as f64;
            }
        }
        g
    }

    /// Extracts rank `rank`'s slab of `field` with `ghost` periodic halo
    /// planes on each side, in the slab grid's row-major layout.
    ///
    /// # Panics
    /// Panics on field length mismatch.
    pub fn extract_with_ghosts(&self, field: &[f64], rank: usize, ghost: usize) -> Vec<f64> {
        assert_eq!(field.len(), self.grid.len(), "field length mismatch");
        let (start, _len) = self.slab(rank);
        let sg = self.slab_grid(rank, ghost);
        let extent = self.grid.extent(self.axis) as isize;
        let mut out = vec![0.0; sg.len()];
        for lx in 0..sg.nx {
            for ly in 0..sg.ny {
                for lz in 0..sg.nz {
                    // Map local plane index back to the global (periodic).
                    let (gx, gy, gz) = match self.axis {
                        Axis::X => {
                            let gp = (start as isize + lx as isize - ghost as isize)
                                .rem_euclid(extent) as usize;
                            (gp, ly, lz)
                        }
                        Axis::Y => {
                            let gp = (start as isize + ly as isize - ghost as isize)
                                .rem_euclid(extent) as usize;
                            (lx, gp, lz)
                        }
                        Axis::Z => {
                            let gp = (start as isize + lz as isize - ghost as isize)
                                .rem_euclid(extent) as usize;
                            (lx, ly, gp)
                        }
                    };
                    out[sg.idx(lx, ly, lz)] = field[self.grid.idx(gx, gy, gz)];
                }
            }
        }
        out
    }

    /// Strips the ghost planes from a rank-local field, returning only the
    /// owned slab (row-major in the ghostless slab grid).
    pub fn strip_ghosts(&self, local: &[f64], rank: usize, ghost: usize) -> Vec<f64> {
        let sg = self.slab_grid(rank, ghost);
        assert_eq!(local.len(), sg.len(), "local field length mismatch");
        let og = self.slab_grid(rank, 0);
        let mut out = vec![0.0; og.len()];
        for x in 0..og.nx {
            for y in 0..og.ny {
                for z in 0..og.nz {
                    let (lx, ly, lz) = match self.axis {
                        Axis::X => (x + ghost, y, z),
                        Axis::Y => (x, y + ghost, z),
                        Axis::Z => (x, y, z + ghost),
                    };
                    out[og.idx(x, y, z)] = local[sg.idx(lx, ly, lz)];
                }
            }
        }
        out
    }

    /// Reassembles per-rank ghostless slabs into the full field.
    ///
    /// # Panics
    /// Panics if slab counts/lengths disagree with the decomposition.
    pub fn assemble(&self, slabs: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(slabs.len(), self.ranks, "one slab per rank required");
        let mut out = vec![0.0; self.grid.len()];
        for (rank, slab) in slabs.iter().enumerate() {
            let (start, _) = self.slab(rank);
            let og = self.slab_grid(rank, 0);
            assert_eq!(slab.len(), og.len(), "slab {rank} length mismatch");
            for x in 0..og.nx {
                for y in 0..og.ny {
                    for z in 0..og.nz {
                        let (gx, gy, gz) = match self.axis {
                            Axis::X => (start + x, y, z),
                            Axis::Y => (x, start + y, z),
                            Axis::Z => (x, y, start + z),
                        };
                        out[self.grid.idx(gx, gy, gz)] = slab[og.idx(x, y, z)];
                    }
                }
            }
        }
        out
    }

    /// Bytes exchanged per halo swap (both sides, one variable): the cost
    /// input for the α–β communication model in `sickle-hpc`.
    pub fn halo_bytes(&self, ghost: usize) -> usize {
        let plane = self.grid.len() / self.grid.extent(self.axis);
        2 * ghost * plane * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derived::partial;

    fn wavy_field(grid: &Grid3) -> Vec<f64> {
        let mut f = vec![0.0; grid.len()];
        for x in 0..grid.nx {
            for y in 0..grid.ny {
                for z in 0..grid.nz {
                    let (px, py, pz) = grid.position(x, y, z);
                    f[grid.idx(x, y, z)] = px.sin() + (2.0 * py).cos() + (0.5 * pz).sin();
                }
            }
        }
        f
    }

    #[test]
    fn slabs_partition_exactly() {
        let grid = Grid3::new(10, 8, 8, 1.0, 1.0, 1.0);
        let d = SlabDecomposition::new(grid, 3, Axis::X);
        let slabs: Vec<(usize, usize)> = (0..3).map(|r| d.slab(r)).collect();
        assert_eq!(slabs, vec![(0, 4), (4, 3), (7, 3)]);
        let total: usize = slabs.iter().map(|s| s.1).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn extract_assemble_roundtrip() {
        let grid = Grid3::cube_2pi(8);
        let field = wavy_field(&grid);
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let d = SlabDecomposition::new(grid, 3, axis);
            let slabs: Vec<Vec<f64>> = (0..3)
                .map(|r| {
                    let with_g = d.extract_with_ghosts(&field, r, 2);
                    d.strip_ghosts(&with_g, r, 2)
                })
                .collect();
            assert_eq!(d.assemble(&slabs), field, "axis {axis}");
        }
    }

    #[test]
    fn distributed_stencil_matches_serial() {
        // The payoff test: each rank differentiates its ghosted slab locally;
        // assembled results must equal the serial derivative exactly.
        let grid = Grid3::cube_2pi(16);
        let field = wavy_field(&grid);
        let serial = partial(&grid, &field, Axis::X);
        let d = SlabDecomposition::new(grid, 4, Axis::X);
        let ghost = 1; // central differences need one halo plane
        let slabs: Vec<Vec<f64>> = (0..4)
            .map(|r| {
                let local = d.extract_with_ghosts(&field, r, ghost);
                let sg = d.slab_grid(r, ghost);
                // NOTE: local slab is periodic-wrapped at its ghost edges by
                // construction, and `partial`'s periodic wrap only touches
                // the ghost planes we strip.
                let dlocal = partial(&sg, &local, Axis::X);
                d.strip_ghosts(&dlocal, r, ghost)
            })
            .collect();
        let distributed = d.assemble(&slabs);
        for (a, b) in distributed.iter().zip(&serial) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn ghost_planes_wrap_periodically() {
        let grid = Grid3::new(4, 2, 2, 1.0, 1.0, 1.0);
        let field: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let d = SlabDecomposition::new(grid, 2, Axis::X);
        // Rank 0 owns x in 0..2; its left ghost is x = 3 (periodic).
        let local = d.extract_with_ghosts(&field, 0, 1);
        let sg = d.slab_grid(0, 1);
        assert_eq!(sg.nx, 4);
        assert_eq!(local[sg.idx(0, 0, 0)], field[grid.idx(3, 0, 0)]);
        assert_eq!(local[sg.idx(1, 0, 0)], field[grid.idx(0, 0, 0)]);
        assert_eq!(local[sg.idx(3, 0, 0)], field[grid.idx(2, 0, 0)]);
    }

    #[test]
    fn halo_bytes_scale_with_plane() {
        let grid = Grid3::new(8, 16, 32, 1.0, 1.0, 1.0);
        let d = SlabDecomposition::new(grid, 4, Axis::X);
        assert_eq!(d.halo_bytes(1), 2 * 16 * 32 * 8);
        assert_eq!(d.halo_bytes(2), 2 * d.halo_bytes(1));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_more_ranks_than_planes() {
        let grid = Grid3::new(4, 4, 4, 1.0, 1.0, 1.0);
        let _ = SlabDecomposition::new(grid, 5, Axis::X);
    }
}
