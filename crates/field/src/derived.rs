//! Derived turbulence quantities via central finite differences on periodic
//! grids.
//!
//! These supply the K-means cluster variables of Table 1: vorticity (`wz`) for
//! OF2D, potential vorticity (`pv`) for SST-P1F4, enstrophy for GESTS, and
//! the dissipation rate used as a GESTS input feature.

use rayon::prelude::*;

use crate::grid::{Axis, Grid3};

/// Central-difference partial derivative of `f` along `axis` with periodic
/// wrapping.
///
/// # Panics
/// Panics if `f.len() != grid.len()`.
pub fn partial(grid: &Grid3, f: &[f64], axis: Axis) -> Vec<f64> {
    assert_eq!(f.len(), grid.len(), "field length mismatch");
    let (dx, dy, dz) = grid.spacing();
    let h2 = match axis {
        Axis::X => 2.0 * dx,
        Axis::Y => 2.0 * dy,
        Axis::Z => 2.0 * dz,
    };
    let (ny, nz) = (grid.ny, grid.nz);
    let mut out = vec![0.0; f.len()];
    out.par_chunks_mut(ny * nz)
        .enumerate()
        .for_each(|(x, slab)| {
            for y in 0..ny {
                for z in 0..nz {
                    let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                    let (ip, im) = match axis {
                        Axis::X => (
                            grid.periodic_idx(xi + 1, yi, zi),
                            grid.periodic_idx(xi - 1, yi, zi),
                        ),
                        Axis::Y => (
                            grid.periodic_idx(xi, yi + 1, zi),
                            grid.periodic_idx(xi, yi - 1, zi),
                        ),
                        Axis::Z => (
                            grid.periodic_idx(xi, yi, zi + 1),
                            grid.periodic_idx(xi, yi, zi - 1),
                        ),
                    };
                    slab[y * nz + z] = (f[ip] - f[im]) / h2;
                }
            }
        });
    out
}

/// z-component of vorticity for planar (`nz == 1`) flow: `wz = dv/dx - du/dy`.
///
/// # Panics
/// Panics if the grid is not planar or lengths mismatch.
pub fn vorticity_2d(grid: &Grid3, u: &[f64], v: &[f64]) -> Vec<f64> {
    assert_eq!(grid.nz, 1, "vorticity_2d requires nz == 1");
    let dvdx = partial(grid, v, Axis::X);
    let dudy = partial(grid, u, Axis::Y);
    dvdx.into_par_iter().zip(dudy).map(|(a, b)| a - b).collect()
}

/// Full vorticity vector `(wx, wy, wz) = curl(u, v, w)`.
pub fn vorticity_3d(
    grid: &Grid3,
    u: &[f64],
    v: &[f64],
    w: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let dwdy = partial(grid, w, Axis::Y);
    let dvdz = partial(grid, v, Axis::Z);
    let dudz = partial(grid, u, Axis::Z);
    let dwdx = partial(grid, w, Axis::X);
    let dvdx = partial(grid, v, Axis::X);
    let dudy = partial(grid, u, Axis::Y);
    let wx: Vec<f64> = dwdy.par_iter().zip(&dvdz).map(|(a, b)| a - b).collect();
    let wy: Vec<f64> = dudz.par_iter().zip(&dwdx).map(|(a, b)| a - b).collect();
    let wz: Vec<f64> = dvdx.par_iter().zip(&dudy).map(|(a, b)| a - b).collect();
    (wx, wy, wz)
}

/// Pointwise enstrophy `Ω = 0.5 * |ω|²` from the vorticity components.
pub fn enstrophy(wx: &[f64], wy: &[f64], wz: &[f64]) -> Vec<f64> {
    wx.par_iter()
        .zip(wy.par_iter().zip(wz.par_iter()))
        .map(|(&a, (&b, &c))| 0.5 * (a * a + b * b + c * c))
        .collect()
}

/// Pointwise kinetic-energy dissipation rate `ε = 2 ν S_ij S_ij` where `S`
/// is the strain-rate tensor.
pub fn dissipation(grid: &Grid3, u: &[f64], v: &[f64], w: &[f64], nu: f64) -> Vec<f64> {
    let dudx = partial(grid, u, Axis::X);
    let dudy = partial(grid, u, Axis::Y);
    let dudz = partial(grid, u, Axis::Z);
    let dvdx = partial(grid, v, Axis::X);
    let dvdy = partial(grid, v, Axis::Y);
    let dvdz = partial(grid, v, Axis::Z);
    let dwdx = partial(grid, w, Axis::X);
    let dwdy = partial(grid, w, Axis::Y);
    let dwdz = partial(grid, w, Axis::Z);
    (0..u.len())
        .into_par_iter()
        .map(|i| {
            let sxx = dudx[i];
            let syy = dvdy[i];
            let szz = dwdz[i];
            let sxy = 0.5 * (dudy[i] + dvdx[i]);
            let sxz = 0.5 * (dudz[i] + dwdx[i]);
            let syz = 0.5 * (dvdz[i] + dwdy[i]);
            2.0 * nu
                * (sxx * sxx + syy * syy + szz * szz + 2.0 * (sxy * sxy + sxz * sxz + syz * syz))
        })
        .collect()
}

/// Ertel potential vorticity `q = ω · ∇ρ` (up to the constant background
/// factor), the cluster variable the paper uses for SST-P1F4.
pub fn potential_vorticity(grid: &Grid3, u: &[f64], v: &[f64], w: &[f64], rho: &[f64]) -> Vec<f64> {
    let (wx, wy, wz) = vorticity_3d(grid, u, v, w);
    let rx = partial(grid, rho, Axis::X);
    let ry = partial(grid, rho, Axis::Y);
    let rz = partial(grid, rho, Axis::Z);
    (0..u.len())
        .into_par_iter()
        .map(|i| wx[i] * rx[i] + wy[i] * ry[i] + wz[i] * rz[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn sine_field(grid: &Grid3, k: f64, axis: Axis) -> Vec<f64> {
        let mut f = vec![0.0; grid.len()];
        for x in 0..grid.nx {
            for y in 0..grid.ny {
                for z in 0..grid.nz {
                    let (px, py, pz) = grid.position(x, y, z);
                    let c = match axis {
                        Axis::X => px,
                        Axis::Y => py,
                        Axis::Z => pz,
                    };
                    f[grid.idx(x, y, z)] = (k * c).sin();
                }
            }
        }
        f
    }

    #[test]
    fn partial_of_sine_is_cosine() {
        let grid = Grid3::new(64, 4, 4, TAU, TAU, TAU);
        let f = sine_field(&grid, 1.0, Axis::X);
        let d = partial(&grid, &f, Axis::X);
        for x in 0..grid.nx {
            let (px, _, _) = grid.position(x, 0, 0);
            let got = d[grid.idx(x, 0, 0)];
            // Second-order accuracy: error ~ (dx^2)/6 * max|f'''|
            assert!(
                (got - px.cos()).abs() < 2e-3,
                "x={x}: {got} vs {}",
                px.cos()
            );
        }
    }

    #[test]
    fn partial_of_constant_is_zero() {
        let grid = Grid3::new(8, 8, 8, 1.0, 1.0, 1.0);
        let f = vec![3.5; grid.len()];
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            assert!(partial(&grid, &f, axis).iter().all(|&v| v.abs() < 1e-14));
        }
    }

    #[test]
    fn solid_body_rotation_vorticity() {
        // u = -y', v = x' about the domain center has wz = 2 in the interior.
        let grid = Grid3::new(32, 32, 1, 1.0, 1.0, 1.0);
        let mut u = vec![0.0; grid.len()];
        let mut v = vec![0.0; grid.len()];
        for x in 0..grid.nx {
            for y in 0..grid.ny {
                let (px, py) = (x as f64 / 32.0 - 0.5, y as f64 / 32.0 - 0.5);
                u[grid.idx(x, y, 0)] = -py;
                v[grid.idx(x, y, 0)] = px;
            }
        }
        let wz = vorticity_2d(&grid, &u, &v);
        // Check interior points only (periodic wrap corrupts the boundary).
        for x in 4..28 {
            for y in 4..28 {
                assert!((wz[grid.idx(x, y, 0)] - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn taylor_green_enstrophy_positive() {
        let grid = Grid3::cube_2pi(16);
        let mut u = vec![0.0; grid.len()];
        let mut v = vec![0.0; grid.len()];
        let w = vec![0.0; grid.len()];
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    let (px, py, pz) = grid.position(x, y, z);
                    u[grid.idx(x, y, z)] = px.sin() * py.cos() * pz.cos();
                    v[grid.idx(x, y, z)] = -px.cos() * py.sin() * pz.cos();
                }
            }
        }
        let (wx, wy, wz) = vorticity_3d(&grid, &u, &v, &w);
        let ens = enstrophy(&wx, &wy, &wz);
        assert!(ens.iter().all(|&e| e >= 0.0));
        assert!(ens.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn dissipation_of_shear_flow() {
        // u = sin(y): S_xy = cos(y)/2, eps = 2*nu*(2*Sxy^2) = nu*cos^2(y).
        let grid = Grid3::new(4, 64, 4, TAU, TAU, TAU);
        let mut u = vec![0.0; grid.len()];
        for x in 0..grid.nx {
            for y in 0..grid.ny {
                for z in 0..grid.nz {
                    let (_, py, _) = grid.position(x, y, z);
                    u[grid.idx(x, y, z)] = py.sin();
                }
            }
        }
        let v = vec![0.0; grid.len()];
        let w = vec![0.0; grid.len()];
        let nu = 0.01;
        let eps = dissipation(&grid, &u, &v, &w, nu);
        for y in 0..grid.ny {
            let (_, py, _) = grid.position(0, y, 0);
            let expect = nu * py.cos().powi(2);
            let got = eps[grid.idx(0, y, 0)];
            assert!((got - expect).abs() < 1e-3, "y={y}: {got} vs {expect}");
        }
    }

    #[test]
    fn potential_vorticity_zero_without_stratification() {
        let grid = Grid3::cube_2pi(8);
        let u = sine_field(&grid, 1.0, Axis::Y);
        let v = sine_field(&grid, 1.0, Axis::Z);
        let w = sine_field(&grid, 1.0, Axis::X);
        let rho = vec![1.0; grid.len()]; // uniform density -> zero gradient
        let pv = potential_vorticity(&grid, &u, &v, &w, &rho);
        assert!(pv.iter().all(|&q| q.abs() < 1e-12));
    }
}
