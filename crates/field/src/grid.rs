//! Structured grid descriptors.
//!
//! Grids are uniform and periodic-friendly: spacing is `L/n` along each axis
//! (the convention used by pseudo-spectral solvers, where the point at `L`
//! coincides with the point at `0`).

use serde::{Deserialize, Serialize};

/// A coordinate axis, also used to name the gravity direction for stratified
/// datasets (the paper's `--gravity y`/`z` flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// First (slowest-varying) axis.
    X,
    /// Second axis.
    Y,
    /// Third (fastest-varying in 3D) axis.
    Z,
}

impl Axis {
    /// Axis index: X→0, Y→1, Z→2.
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// Uniform 2D grid, row-major with `y` contiguous: `index = x * ny + y`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Grid2 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
}

impl Grid2 {
    /// Creates a grid over `[0, lx) x [0, ly)`.
    pub fn new(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(lx > 0.0 && ly > 0.0, "domain lengths must be positive");
        Grid2 { nx, ny, lx, ly }
    }

    /// Unit-box grid (`lx = ly = 1`).
    pub fn unit(nx: usize, ny: usize) -> Self {
        Grid2::new(nx, ny, 1.0, 1.0)
    }

    /// Total number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Never true for a constructed grid; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid spacing `(dx, dy)`.
    #[inline]
    pub fn spacing(&self) -> (f64, f64) {
        (self.lx / self.nx as f64, self.ly / self.ny as f64)
    }

    /// Flat index of `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        x * self.ny + y
    }

    /// Inverse of [`idx`](Self::idx).
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.ny, idx % self.ny)
    }

    /// Physical position of grid point `(x, y)`.
    #[inline]
    pub fn position(&self, x: usize, y: usize) -> (f64, f64) {
        let (dx, dy) = self.spacing();
        (x as f64 * dx, y as f64 * dy)
    }

    /// Periodic neighbor index offset by `(sx, sy)`.
    #[inline]
    pub fn periodic_idx(&self, x: isize, y: isize) -> usize {
        let xm = x.rem_euclid(self.nx as isize) as usize;
        let ym = y.rem_euclid(self.ny as isize) as usize;
        self.idx(xm, ym)
    }
}

/// Uniform 3D grid, row-major with `z` contiguous: `index = (x*ny + y)*nz + z`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Grid3 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// Domain length along z.
    pub lz: f64,
}

impl Grid3 {
    /// Creates a grid over `[0, lx) x [0, ly) x [0, lz)`.
    pub fn new(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "domain lengths must be positive"
        );
        Grid3 {
            nx,
            ny,
            nz,
            lx,
            ly,
            lz,
        }
    }

    /// Cubic grid over `[0, 2π)^3`, the standard spectral-DNS box.
    pub fn cube_2pi(n: usize) -> Self {
        let l = 2.0 * std::f64::consts::PI;
        Grid3::new(n, n, n, l, l, l)
    }

    /// Total number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Never true for a constructed grid; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid spacing `(dx, dy, dz)`.
    #[inline]
    pub fn spacing(&self) -> (f64, f64, f64) {
        (
            self.lx / self.nx as f64,
            self.ly / self.ny as f64,
            self.lz / self.nz as f64,
        )
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`idx`](Self::idx).
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let z = idx % self.nz;
        let rest = idx / self.nz;
        (rest / self.ny, rest % self.ny, z)
    }

    /// Physical position of grid point `(x, y, z)`.
    #[inline]
    pub fn position(&self, x: usize, y: usize, z: usize) -> (f64, f64, f64) {
        let (dx, dy, dz) = self.spacing();
        (x as f64 * dx, y as f64 * dy, z as f64 * dz)
    }

    /// Periodic neighbor flat index for possibly-out-of-range coordinates.
    #[inline]
    pub fn periodic_idx(&self, x: isize, y: isize, z: isize) -> usize {
        let xm = x.rem_euclid(self.nx as isize) as usize;
        let ym = y.rem_euclid(self.ny as isize) as usize;
        let zm = z.rem_euclid(self.nz as isize) as usize;
        self.idx(xm, ym, zm)
    }

    /// Extent along `axis` in points.
    #[inline]
    pub fn extent(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.nx,
            Axis::Y => self.ny,
            Axis::Z => self.nz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_index_roundtrip() {
        let g = Grid2::unit(5, 7);
        for x in 0..5 {
            for y in 0..7 {
                let i = g.idx(x, y);
                assert_eq!(g.coords(i), (x, y));
            }
        }
        assert_eq!(g.len(), 35);
    }

    #[test]
    fn grid3_index_roundtrip() {
        let g = Grid3::new(3, 4, 5, 1.0, 1.0, 1.0);
        for x in 0..3 {
            for y in 0..4 {
                for z in 0..5 {
                    let i = g.idx(x, y, z);
                    assert_eq!(g.coords(i), (x, y, z));
                }
            }
        }
        assert_eq!(g.len(), 60);
    }

    #[test]
    fn periodic_wrapping() {
        let g = Grid3::new(4, 4, 4, 1.0, 1.0, 1.0);
        assert_eq!(g.periodic_idx(-1, 0, 0), g.idx(3, 0, 0));
        assert_eq!(g.periodic_idx(4, 2, 7), g.idx(0, 2, 3));
        let g2 = Grid2::unit(4, 4);
        assert_eq!(g2.periodic_idx(-1, -1), g2.idx(3, 3));
    }

    #[test]
    fn spacing_and_positions() {
        let g = Grid3::cube_2pi(8);
        let (dx, _, _) = g.spacing();
        assert!((dx - std::f64::consts::PI / 4.0).abs() < 1e-12);
        let (px, py, pz) = g.position(4, 0, 2);
        assert!((px - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(py, 0.0);
        assert!((pz - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn axis_properties() {
        assert_eq!(Axis::X.index(), 0);
        assert_eq!(Axis::Z.index(), 2);
        assert_eq!(Axis::Y.to_string(), "y");
        let g = Grid3::new(2, 3, 4, 1.0, 1.0, 1.0);
        assert_eq!(g.extent(Axis::Y), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dimension() {
        let _ = Grid2::new(0, 4, 1.0, 1.0);
    }
}
