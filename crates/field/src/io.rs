//! Compact binary snapshot I/O.
//!
//! The paper stresses that SICKLE "provides a convenient way to significantly
//! reduce file storage requirements, by storing feature-rich subsampled
//! datasets". This module implements the storage layer: a little-endian
//! binary format (`SKLF`) for snapshots and sample sets, plus a CSV writer
//! for experiment result tables.
//!
//! Format (all integers little-endian):
//! ```text
//! magic "SKLF" | u32 version | grid (6 x u64 dims/lengths as u64/f64) |
//! f64 time | u32 nvars | nvars x (u32 name_len, name bytes) |
//! nvars x (grid.len() x f64)
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::grid::Grid3;
use crate::points::{FeatureMatrix, SampleSet};
use crate::snapshot::Snapshot;

const MAGIC: &[u8; 4] = b"SKLF";
const VERSION: u32 = 1;

/// Serializes a snapshot into a byte buffer.
pub fn encode_snapshot(snap: &Snapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + snap.nbytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(snap.grid.nx as u64);
    buf.put_u64_le(snap.grid.ny as u64);
    buf.put_u64_le(snap.grid.nz as u64);
    buf.put_f64_le(snap.grid.lx);
    buf.put_f64_le(snap.grid.ly);
    buf.put_f64_le(snap.grid.lz);
    buf.put_f64_le(snap.time);
    buf.put_u32_le(snap.names.len() as u32);
    for name in &snap.names {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    for var in &snap.vars {
        for &v in var {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// `count * item_size` as a `usize`, or `InvalidData` when the product
/// overflows. Every decoder below sizes its reads through this so a
/// bit-flipped count can never wrap a length check (release) or panic on
/// multiply overflow (debug).
fn checked_size(count: u64, item_size: usize, what: &str) -> io::Result<usize> {
    usize::try_from(count)
        .ok()
        .and_then(|c| c.checked_mul(item_size))
        .ok_or_else(|| invalid(what))
}

/// Deserializes a snapshot from bytes.
///
/// Defensive by contract: counts and dimensions read from the buffer are
/// attacker-controlled, so every allocation and length check uses checked
/// arithmetic and is bounded by the bytes actually present — truncated or
/// bit-flipped input returns `InvalidData`, never panics or aborts.
///
/// # Errors
/// Returns `InvalidData` on bad magic, version, corrupt geometry, or
/// truncation.
pub fn decode_snapshot(mut data: &[u8]) -> io::Result<Snapshot> {
    fn need(data: &[u8], n: usize) -> io::Result<()> {
        if data.remaining() < n {
            Err(invalid("truncated snapshot"))
        } else {
            Ok(())
        }
    }
    need(data, 8)?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    need(data, 3 * 8 + 3 * 8 + 8 + 4)?;
    let nx = data.get_u64_le();
    let ny = data.get_u64_le();
    let nz = data.get_u64_le();
    let lx = data.get_f64_le();
    let ly = data.get_f64_le();
    let lz = data.get_f64_le();
    let time = data.get_f64_le();
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(invalid("zero grid dimension"));
    }
    let npts_bytes = checked_size(nx, 8, "grid size overflow")?
        .checked_mul(usize::try_from(ny).map_err(|_| invalid("grid size overflow"))?)
        .and_then(|v| v.checked_mul(usize::try_from(nz).ok()?))
        .ok_or_else(|| invalid("grid size overflow"))?;
    let npts = npts_bytes / 8;
    if !(lx.is_finite() && ly.is_finite() && lz.is_finite() && lx > 0.0 && ly > 0.0 && lz > 0.0) {
        return Err(invalid("bad domain extent"));
    }
    let grid = Grid3::new(nx as usize, ny as usize, nz as usize, lx, ly, lz);
    let nvars = data.get_u32_le() as usize;
    // Each name needs ≥ 4 bytes of length prefix, so the remaining buffer
    // bounds how many can really follow — never trust the count alone.
    let mut names = Vec::with_capacity(nvars.min(data.remaining() / 4));
    for _ in 0..nvars {
        need(data, 4)?;
        let len = data.get_u32_le() as usize;
        need(data, len)?;
        let mut raw = vec![0u8; len];
        data.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw).map_err(|_| invalid("non-utf8 variable name"))?;
        names.push(name);
    }
    let mut snap = Snapshot::new(grid, time);
    for name in names {
        need(data, npts_bytes)?;
        let mut var = Vec::with_capacity(npts);
        for _ in 0..npts {
            var.push(data.get_f64_le());
        }
        snap.push_var(&name, var);
    }
    Ok(snap)
}

/// Writes a snapshot to `path` in SKLF format.
pub fn save_snapshot(snap: &Snapshot, path: &Path) -> io::Result<()> {
    let bytes = encode_snapshot(snap);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

/// Reads a snapshot from `path`.
pub fn load_snapshot(path: &Path) -> io::Result<Snapshot> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode_snapshot(&data)
}

/// Serializes a sample set (feature rows + indices) compactly.
pub fn encode_sample_set(set: &SampleSet) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"SKLS");
    buf.put_u32_le(VERSION);
    buf.put_f64_le(set.time);
    buf.put_u64_le(set.snapshot_index as u64);
    buf.put_i64_le(set.hypercube.map_or(-1, |h| h as i64));
    buf.put_u32_le(set.features.dim() as u32);
    for name in &set.features.names {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(set.len() as u64);
    for &i in &set.indices {
        buf.put_u64_le(i as u64);
    }
    for &v in &set.features.data {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// A sample set parsed **in place**: header scalars are decoded, variable
/// names borrow the buffer as `&str`, and the index/value payloads stay as
/// little-endian byte slices into the input (typically an `mmap`ed shard)
/// — nothing is copied until a caller asks for it. All counts and bounds
/// are validated at parse time with the same overflow-checked arithmetic
/// as [`decode_sample_set`], so the accessors can index without
/// re-checking; they panic only on out-of-range positions, which is a
/// caller bug, not an input property.
///
/// The view borrows `data` for its whole lifetime; a cached shard handle
/// must outlive every view parsed from it (the store guarantees this by
/// keeping views request-scoped while the `Arc<ShardBytes>` is resident).
#[derive(Clone, Debug)]
pub struct SampleSetView<'a> {
    /// Simulation time of the originating snapshot.
    pub time: f64,
    /// Index of the originating snapshot.
    pub snapshot_index: usize,
    /// Originating hypercube, when tagged.
    pub hypercube: Option<usize>,
    names: Vec<&'a str>,
    n: usize,
    dim: usize,
    indices: &'a [u8],
    values: &'a [u8],
}

impl<'a> SampleSetView<'a> {
    /// Number of samples (feature rows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Feature dimension (columns per row).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrowed variable names, in column order.
    pub fn names(&self) -> &[&'a str] {
        &self.names
    }

    /// The `i`-th retained grid index.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn index(&self, i: usize) -> usize {
        let raw: [u8; 8] = self.indices[i * 8..i * 8 + 8]
            .try_into()
            .expect("8-byte index");
        u64::from_le_bytes(raw) as usize
    }

    /// The `i`-th value of the flat row-major feature payload — bit-exact
    /// what [`decode_sample_set`] would place at `features.data[i]`.
    ///
    /// # Panics
    /// If `i >= len() * dim()`.
    pub fn value(&self, i: usize) -> f64 {
        let raw: [u8; 8] = self.values[i * 8..i * 8 + 8]
            .try_into()
            .expect("8-byte value");
        f64::from_le_bytes(raw)
    }

    /// Materializes the borrowed view as an owned [`SampleSet`],
    /// bit-identical to decoding the same bytes eagerly.
    pub fn to_owned_set(&self) -> SampleSet {
        let names: Vec<String> = self.names.iter().map(|s| (*s).to_string()).collect();
        let mut indices = Vec::with_capacity(self.n);
        for i in 0..self.n {
            indices.push(self.index(i));
        }
        let mut values = Vec::with_capacity(self.n * self.dim);
        for i in 0..self.n * self.dim {
            values.push(self.value(i));
        }
        let features = FeatureMatrix::new(names, values);
        let mut set = SampleSet::new(features, indices, self.time, self.snapshot_index);
        set.hypercube = self.hypercube;
        set
    }
}

/// Parses a sample set as a borrowed [`SampleSetView`] — the zero-copy
/// twin of [`decode_sample_set`], sharing its validation (and its error
/// messages) but allocating only the name table.
///
/// # Errors
/// Returns `InvalidData` on bad magic, a zero feature dimension, or
/// truncation.
pub fn decode_sample_set_view(mut data: &[u8]) -> io::Result<SampleSetView<'_>> {
    let err = || invalid("truncated sample set");
    if data.remaining() < 8 {
        return Err(err());
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != b"SKLS" {
        return Err(invalid("bad magic"));
    }
    let _version = data.get_u32_le();
    if data.remaining() < 8 + 8 + 8 + 4 {
        return Err(err());
    }
    let time = data.get_f64_le();
    let snapshot_index = data.get_u64_le() as usize;
    let hc = data.get_i64_le();
    let dim = data.get_u32_le() as usize;
    if dim == 0 {
        return Err(invalid("zero feature dimension"));
    }
    let mut names = Vec::with_capacity(dim.min(data.remaining() / 4));
    for _ in 0..dim {
        if data.remaining() < 4 {
            return Err(err());
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(err());
        }
        let (raw, rest) = data.split_at(len);
        names.push(std::str::from_utf8(raw).map_err(|_| err())?);
        data = rest;
    }
    if data.remaining() < 8 {
        return Err(err());
    }
    let n = data.get_u64_le();
    let idx_bytes = checked_size(n, 8, "sample count overflow")?;
    let val_bytes = checked_size(n, dim, "sample payload overflow")?
        .checked_mul(8)
        .ok_or_else(|| invalid("sample payload overflow"))?;
    let payload_bytes = idx_bytes
        .checked_add(val_bytes)
        .ok_or_else(|| invalid("sample payload overflow"))?;
    if data.remaining() < payload_bytes {
        return Err(err());
    }
    let (indices, rest) = data.split_at(idx_bytes);
    let (values, _) = rest.split_at(val_bytes);
    Ok(SampleSetView {
        time,
        snapshot_index,
        hypercube: if hc >= 0 { Some(hc as usize) } else { None },
        names,
        n: n as usize,
        dim,
        indices,
        values,
    })
}

/// Deserializes a sample set.
///
/// Defensive like [`decode_snapshot`]: counts from the buffer never drive
/// an allocation or length check without overflow-checked arithmetic.
/// Implemented as [`decode_sample_set_view`] + materialize, so the owned
/// and borrowed paths cannot drift.
///
/// # Errors
/// Returns `InvalidData` on bad magic, a zero feature dimension, or
/// truncation.
pub fn decode_sample_set(data: &[u8]) -> io::Result<SampleSet> {
    Ok(decode_sample_set_view(data)?.to_owned_set())
}

// ---------------------------------------------------------------------------
// Checkpoint shards and manifest
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the integrity check for checkpoint shards. Stable,
/// dependency-free, and fast enough to be invisible next to the I/O.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a64`] formatted as a fixed-width hex string — the form hashes take
/// in JSON manifests, where a raw `u64` would not survive the f64 number
/// round-trip of the JSON layer.
pub fn fnv1a64_hex(data: &[u8]) -> String {
    format!("{:016x}", fnv1a64(data))
}

const SHARD_MAGIC: &[u8; 4] = b"SKLH";

/// Serializes one snapshot's per-cube sample sets as a checkpoint shard:
/// `SKLH | u32 version | u64 count | count x (u64 len, SKLS blob)`.
pub fn encode_sample_sets(sets: &[SampleSet]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(SHARD_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(sets.len() as u64);
    for set in sets {
        let blob = encode_sample_set(set);
        buf.put_u64_le(blob.len() as u64);
        buf.put_slice(&blob);
    }
    buf.freeze()
}

/// Deserializes a checkpoint shard written by [`encode_sample_sets`].
///
/// # Errors
/// Returns `InvalidData` on bad magic, version, or truncation.
pub fn decode_sample_sets(mut data: &[u8]) -> io::Result<Vec<SampleSet>> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.remaining() < 16 {
        return Err(err("truncated shard"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != SHARD_MAGIC {
        return Err(err("bad shard magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(err(&format!("unsupported shard version {version}")));
    }
    let count = data.get_u64_le() as usize;
    // Each entry needs at least its 8-byte length prefix, so the buffer
    // bounds the plausible count — a bit-flipped count cannot force a huge
    // allocation before the truncation error surfaces.
    let mut sets = Vec::with_capacity(count.min(data.remaining() / 8));
    for _ in 0..count {
        if data.remaining() < 8 {
            return Err(err("truncated shard"));
        }
        let len = data.get_u64_le() as usize;
        if data.remaining() < len {
            return Err(err("truncated shard"));
        }
        let (blob, rest) = data.split_at(len);
        sets.push(decode_sample_set(blob)?);
        data = rest;
    }
    Ok(sets)
}

/// Parses a checkpoint shard as borrowed [`SampleSetView`]s — the
/// zero-copy twin of [`decode_sample_sets`]. Framing validation is
/// identical; only the per-set payloads stay in place.
///
/// # Errors
/// Returns `InvalidData` on bad magic, version, or truncation.
pub fn decode_sample_sets_view(mut data: &[u8]) -> io::Result<Vec<SampleSetView<'_>>> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.remaining() < 16 {
        return Err(err("truncated shard"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != SHARD_MAGIC {
        return Err(err("bad shard magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(err(&format!("unsupported shard version {version}")));
    }
    let count = data.get_u64_le() as usize;
    let mut sets = Vec::with_capacity(count.min(data.remaining() / 8));
    for _ in 0..count {
        if data.remaining() < 8 {
            return Err(err("truncated shard"));
        }
        let len = data.get_u64_le() as usize;
        if data.remaining() < len {
            return Err(err("truncated shard"));
        }
        let (blob, rest) = data.split_at(len);
        sets.push(decode_sample_set_view(blob)?);
        data = rest;
    }
    Ok(sets)
}

/// One completed snapshot recorded in a [`CheckpointManifest`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Index of the snapshot within its dataset.
    pub snapshot_index: usize,
    /// Shard file name, relative to the manifest's directory.
    pub file: String,
    /// [`fnv1a64_hex`] of the shard file's bytes. Hex rather than a raw
    /// `u64` because JSON numbers are f64 and would truncate 64-bit hashes.
    pub hash: String,
    /// Sample sets (hypercubes) in the shard.
    pub sets: usize,
    /// Total retained points in the shard.
    pub points: usize,
}

/// The resume index of a checkpointed sampling run: which snapshots are
/// complete, where their shards live, and the hash each shard must match.
/// `config_hash` fingerprints the sampling configuration so a checkpoint
/// is never resumed into a run it does not belong to.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Format version (matches the SKLF/SKLS/SKLH version).
    pub version: u32,
    /// Fingerprint of the producing configuration ([`fnv1a64_hex`] form).
    pub config_hash: String,
    /// Completed snapshots, in completion order.
    pub entries: Vec<ManifestEntry>,
}

impl CheckpointManifest {
    /// An empty manifest for a run fingerprinted by `config_hash`.
    pub fn new(config_hash: impl Into<String>) -> Self {
        CheckpointManifest {
            version: VERSION,
            config_hash: config_hash.into(),
            entries: Vec::new(),
        }
    }

    /// The entry for a snapshot, if that snapshot completed.
    pub fn entry(&self, snapshot_index: usize) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .find(|e| e.snapshot_index == snapshot_index)
    }

    /// Inserts or replaces the entry for `entry.snapshot_index`.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        match self
            .entries
            .iter_mut()
            .find(|e| e.snapshot_index == entry.snapshot_index)
        {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Loads a manifest from a JSON file.
    ///
    /// # Errors
    /// I/O errors, or `InvalidData` when the JSON does not parse.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad manifest: {e}")))
    }

    /// Writes the manifest atomically (temp file + rename), so a crash
    /// mid-write can never leave a torn manifest behind.
    ///
    /// # Errors
    /// Propagates I/O errors from the write or the rename.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }
}

/// Minimal CSV writer for result tables (no quoting; values must not contain
/// commas or newlines — experiment outputs are numeric).
pub struct CsvWriter<W: Write> {
    inner: W,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a writer and emits the header row.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut inner: W, header: &[&str]) -> io::Result<Self> {
        writeln!(inner, "{}", header.join(","))?;
        Ok(CsvWriter { inner })
    }

    /// Writes one row of already-formatted cells.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn row(&mut self, cells: &[String]) -> io::Result<()> {
        writeln!(self.inner, "{}", cells.join(","))
    }

    /// Finishes writing and returns the inner writer.
    ///
    /// # Errors
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid3;

    fn sample_snapshot() -> Snapshot {
        let g = Grid3::new(2, 3, 4, 1.0, 2.0, 3.0);
        Snapshot::new(g, 1.25)
            .with_var("u", (0..24).map(|i| i as f64 * 0.5).collect())
            .with_var("rho", (0..24).map(|i| 1.0 + i as f64).collect())
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.grid, snap.grid);
        assert_eq!(back.time, snap.time);
        assert_eq!(back.names, snap.names);
        assert_eq!(back.vars, snap.vars);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("sickle_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.sklf");
        save_snapshot(&snap, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.vars, snap.vars);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_snapshot(b"NOPE0000000").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let err = decode_snapshot(&bytes[..bytes.len() - 9]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sample_set_roundtrip() {
        let features = FeatureMatrix::new(
            vec!["u".into(), "v".into()],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        let set = SampleSet::new(features, vec![7, 8, 9], 0.5, 3).with_hypercube(12);
        let bytes = encode_sample_set(&set);
        let back = decode_sample_set(&bytes).unwrap();
        assert_eq!(back.indices, set.indices);
        assert_eq!(back.features, set.features);
        assert_eq!(back.hypercube, Some(12));
        assert_eq!(back.snapshot_index, 3);
    }

    #[test]
    fn sample_set_without_hypercube() {
        let features = FeatureMatrix::new(vec!["u".into()], vec![1.0]);
        let set = SampleSet::new(features, vec![0], 0.0, 0);
        let back = decode_sample_set(&encode_sample_set(&set)).unwrap();
        assert_eq!(back.hypercube, None);
    }

    #[test]
    fn csv_writer_produces_rows() {
        let mut out = Vec::new();
        {
            let mut w = CsvWriter::new(&mut out, &["a", "b"]).unwrap();
            w.row(&["1".into(), "2".into()]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(String::from_utf8(out).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
    }

    fn two_sets() -> Vec<SampleSet> {
        vec![
            SampleSet::new(
                FeatureMatrix::new(vec!["u".into()], vec![1.0, 2.0]),
                vec![3, 4],
                0.5,
                2,
            )
            .with_hypercube(7),
            SampleSet::new(
                FeatureMatrix::new(vec!["u".into()], vec![9.0]),
                vec![8],
                0.5,
                2,
            ),
        ]
    }

    #[test]
    fn view_decode_matches_owned_decode() {
        let sets = two_sets();
        let bytes = encode_sample_sets(&sets);
        let views = decode_sample_sets_view(&bytes).unwrap();
        let owned = decode_sample_sets(&bytes).unwrap();
        assert_eq!(views.len(), owned.len());
        for (view, set) in views.iter().zip(&owned) {
            assert_eq!(view.len(), set.len());
            assert_eq!(view.dim(), set.features.dim());
            assert_eq!(view.hypercube, set.hypercube);
            assert_eq!(view.snapshot_index, set.snapshot_index);
            assert_eq!(view.names(), set.features.names.as_slice());
            for i in 0..view.len() {
                assert_eq!(view.index(i), set.indices[i]);
            }
            for i in 0..view.len() * view.dim() {
                assert_eq!(view.value(i).to_bits(), set.features.data[i].to_bits());
            }
            let back = view.to_owned_set();
            assert_eq!(back.features, set.features);
            assert_eq!(back.indices, set.indices);
        }
    }

    #[test]
    fn view_decode_rejects_hostile_input() {
        let bytes = encode_sample_sets(&two_sets());
        for cut in [0, 3, 12, bytes.len() - 1] {
            let err = decode_sample_sets_view(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        let mut bad = bytes.to_vec();
        bad[1] = b'X';
        assert!(decode_sample_sets_view(&bad).is_err());
    }

    #[test]
    fn shard_roundtrip() {
        let sets = two_sets();
        let bytes = encode_sample_sets(&sets);
        let back = decode_sample_sets(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].indices, sets[0].indices);
        assert_eq!(back[0].hypercube, Some(7));
        assert_eq!(back[1].features.data, sets[1].features.data);
    }

    #[test]
    fn shard_rejects_corruption() {
        let bytes = encode_sample_sets(&two_sets());
        assert!(decode_sample_sets(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_sample_sets(&bad).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_upsert() {
        let dir = std::env::temp_dir().join("sickle_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        // Hashes with all 64 bits set must survive the JSON round-trip —
        // that is the point of the hex-string representation.
        let mut m = CheckpointManifest::new(fnv1a64_hex(b"config"));
        m.upsert(ManifestEntry {
            snapshot_index: 0,
            file: "snap_00000.sklshard".into(),
            hash: fnv1a64_hex(b"first"),
            sets: 4,
            points: 100,
        });
        // Replacing the same snapshot keeps one entry.
        m.upsert(ManifestEntry {
            snapshot_index: 0,
            file: "snap_00000.sklshard".into(),
            hash: fnv1a64_hex(b"second"),
            sets: 4,
            points: 100,
        });
        assert_eq!(m.entries.len(), 1);
        m.save_atomic(&path).unwrap();
        let back = CheckpointManifest::load(&path).unwrap();
        assert_eq!(back.config_hash, fnv1a64_hex(b"config"));
        assert_eq!(back.entry(0).unwrap().hash, fnv1a64_hex(b"second"));
        assert!(back.entry(1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_load_rejects_garbage() {
        let dir = std::env::temp_dir().join("sickle_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(CheckpointManifest::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn subsampled_storage_is_smaller() {
        // The headline storage claim: a 10% sample set occupies ~10% of the
        // dense snapshot (plus small index overhead).
        let snap = sample_snapshot();
        let dense = encode_snapshot(&snap).len();
        let keep: Vec<usize> = (0..snap.num_points()).step_by(10).collect();
        let vidx = snap.var_indices(&snap.names.clone());
        let mut features = FeatureMatrix::with_capacity(snap.names.clone(), keep.len());
        let mut row = vec![0.0; vidx.len()];
        for &i in &keep {
            snap.gather_point(&vidx, i, &mut row);
            features.push_row(&row);
        }
        let set = SampleSet::new(features, keep, snap.time, 0);
        let sparse = encode_sample_set(&set).len();
        assert!(sparse < dense / 2, "sparse {sparse} vs dense {dense}");
    }
}
