//! Compact binary snapshot I/O.
//!
//! The paper stresses that SICKLE "provides a convenient way to significantly
//! reduce file storage requirements, by storing feature-rich subsampled
//! datasets". This module implements the storage layer: a little-endian
//! binary format (`SKLF`) for snapshots and sample sets, plus a CSV writer
//! for experiment result tables.
//!
//! Format (all integers little-endian):
//! ```text
//! magic "SKLF" | u32 version | grid (6 x u64 dims/lengths as u64/f64) |
//! f64 time | u32 nvars | nvars x (u32 name_len, name bytes) |
//! nvars x (grid.len() x f64)
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::grid::Grid3;
use crate::points::{FeatureMatrix, SampleSet};
use crate::snapshot::Snapshot;

const MAGIC: &[u8; 4] = b"SKLF";
const VERSION: u32 = 1;

/// Serializes a snapshot into a byte buffer.
pub fn encode_snapshot(snap: &Snapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + snap.nbytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(snap.grid.nx as u64);
    buf.put_u64_le(snap.grid.ny as u64);
    buf.put_u64_le(snap.grid.nz as u64);
    buf.put_f64_le(snap.grid.lx);
    buf.put_f64_le(snap.grid.ly);
    buf.put_f64_le(snap.grid.lz);
    buf.put_f64_le(snap.time);
    buf.put_u32_le(snap.names.len() as u32);
    for name in &snap.names {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    for var in &snap.vars {
        for &v in var {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Deserializes a snapshot from bytes.
///
/// # Errors
/// Returns `InvalidData` on bad magic, version, or truncation.
pub fn decode_snapshot(mut data: &[u8]) -> io::Result<Snapshot> {
    fn need(data: &[u8], n: usize) -> io::Result<()> {
        if data.remaining() < n {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated snapshot",
            ))
        } else {
            Ok(())
        }
    }
    need(data, 8)?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    need(data, 3 * 8 + 3 * 8 + 8 + 4)?;
    let nx = data.get_u64_le() as usize;
    let ny = data.get_u64_le() as usize;
    let nz = data.get_u64_le() as usize;
    let lx = data.get_f64_le();
    let ly = data.get_f64_le();
    let lz = data.get_f64_le();
    let time = data.get_f64_le();
    let grid = Grid3::new(nx, ny, nz, lx, ly, lz);
    let nvars = data.get_u32_le() as usize;
    let mut names = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        need(data, 4)?;
        let len = data.get_u32_le() as usize;
        need(data, len)?;
        let mut raw = vec![0u8; len];
        data.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 variable name"))?;
        names.push(name);
    }
    let npts = grid.len();
    let mut snap = Snapshot::new(grid, time);
    for name in names {
        need(data, npts * 8)?;
        let mut var = Vec::with_capacity(npts);
        for _ in 0..npts {
            var.push(data.get_f64_le());
        }
        snap.push_var(&name, var);
    }
    Ok(snap)
}

/// Writes a snapshot to `path` in SKLF format.
pub fn save_snapshot(snap: &Snapshot, path: &Path) -> io::Result<()> {
    let bytes = encode_snapshot(snap);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

/// Reads a snapshot from `path`.
pub fn load_snapshot(path: &Path) -> io::Result<Snapshot> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode_snapshot(&data)
}

/// Serializes a sample set (feature rows + indices) compactly.
pub fn encode_sample_set(set: &SampleSet) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"SKLS");
    buf.put_u32_le(VERSION);
    buf.put_f64_le(set.time);
    buf.put_u64_le(set.snapshot_index as u64);
    buf.put_i64_le(set.hypercube.map_or(-1, |h| h as i64));
    buf.put_u32_le(set.features.dim() as u32);
    for name in &set.features.names {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(set.len() as u64);
    for &i in &set.indices {
        buf.put_u64_le(i as u64);
    }
    for &v in &set.features.data {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a sample set.
///
/// # Errors
/// Returns `InvalidData` on bad magic or truncation.
pub fn decode_sample_set(mut data: &[u8]) -> io::Result<SampleSet> {
    let err = || io::Error::new(io::ErrorKind::InvalidData, "truncated sample set");
    if data.remaining() < 8 {
        return Err(err());
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != b"SKLS" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let _version = data.get_u32_le();
    if data.remaining() < 8 + 8 + 8 + 4 {
        return Err(err());
    }
    let time = data.get_f64_le();
    let snapshot_index = data.get_u64_le() as usize;
    let hc = data.get_i64_le();
    let dim = data.get_u32_le() as usize;
    let mut names = Vec::with_capacity(dim);
    for _ in 0..dim {
        if data.remaining() < 4 {
            return Err(err());
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(err());
        }
        let mut raw = vec![0u8; len];
        data.copy_to_slice(&mut raw);
        names.push(String::from_utf8(raw).map_err(|_| err())?);
    }
    if data.remaining() < 8 {
        return Err(err());
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 8 + n * dim * 8 {
        return Err(err());
    }
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(data.get_u64_le() as usize);
    }
    let mut values = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        values.push(data.get_f64_le());
    }
    let features = FeatureMatrix::new(names, values);
    let mut set = SampleSet::new(features, indices, time, snapshot_index);
    if hc >= 0 {
        set.hypercube = Some(hc as usize);
    }
    Ok(set)
}

/// Minimal CSV writer for result tables (no quoting; values must not contain
/// commas or newlines — experiment outputs are numeric).
pub struct CsvWriter<W: Write> {
    inner: W,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a writer and emits the header row.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut inner: W, header: &[&str]) -> io::Result<Self> {
        writeln!(inner, "{}", header.join(","))?;
        Ok(CsvWriter { inner })
    }

    /// Writes one row of already-formatted cells.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn row(&mut self, cells: &[String]) -> io::Result<()> {
        writeln!(self.inner, "{}", cells.join(","))
    }

    /// Finishes writing and returns the inner writer.
    ///
    /// # Errors
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid3;

    fn sample_snapshot() -> Snapshot {
        let g = Grid3::new(2, 3, 4, 1.0, 2.0, 3.0);
        Snapshot::new(g, 1.25)
            .with_var("u", (0..24).map(|i| i as f64 * 0.5).collect())
            .with_var("rho", (0..24).map(|i| 1.0 + i as f64).collect())
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.grid, snap.grid);
        assert_eq!(back.time, snap.time);
        assert_eq!(back.names, snap.names);
        assert_eq!(back.vars, snap.vars);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("sickle_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.sklf");
        save_snapshot(&snap, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.vars, snap.vars);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_snapshot(b"NOPE0000000").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let err = decode_snapshot(&bytes[..bytes.len() - 9]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sample_set_roundtrip() {
        let features = FeatureMatrix::new(
            vec!["u".into(), "v".into()],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        let set = SampleSet::new(features, vec![7, 8, 9], 0.5, 3).with_hypercube(12);
        let bytes = encode_sample_set(&set);
        let back = decode_sample_set(&bytes).unwrap();
        assert_eq!(back.indices, set.indices);
        assert_eq!(back.features, set.features);
        assert_eq!(back.hypercube, Some(12));
        assert_eq!(back.snapshot_index, 3);
    }

    #[test]
    fn sample_set_without_hypercube() {
        let features = FeatureMatrix::new(vec!["u".into()], vec![1.0]);
        let set = SampleSet::new(features, vec![0], 0.0, 0);
        let back = decode_sample_set(&encode_sample_set(&set)).unwrap();
        assert_eq!(back.hypercube, None);
    }

    #[test]
    fn csv_writer_produces_rows() {
        let mut out = Vec::new();
        {
            let mut w = CsvWriter::new(&mut out, &["a", "b"]).unwrap();
            w.row(&["1".into(), "2".into()]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(String::from_utf8(out).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn subsampled_storage_is_smaller() {
        // The headline storage claim: a 10% sample set occupies ~10% of the
        // dense snapshot (plus small index overhead).
        let snap = sample_snapshot();
        let dense = encode_snapshot(&snap).len();
        let keep: Vec<usize> = (0..snap.num_points()).step_by(10).collect();
        let vidx = snap.var_indices(&snap.names.clone());
        let mut features = FeatureMatrix::with_capacity(snap.names.clone(), keep.len());
        let mut row = vec![0.0; vidx.len()];
        for &i in &keep {
            snap.gather_point(&vidx, i, &mut row);
            features.push_row(&row);
        }
        let set = SampleSet::new(features, keep, snap.time, 0);
        let sparse = encode_sample_set(&set).len();
        assert!(sparse < dense / 2, "sparse {sparse} vs dense {dense}");
    }
}
