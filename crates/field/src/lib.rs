//! # sickle-field
//!
//! Shared data-model crate for the SICKLE reproduction: structured grids,
//! scalar fields, multi-variable snapshots, hypercube tiling, derived
//! turbulence quantities (vorticity, enstrophy, dissipation, potential
//! vorticity), summary statistics and histograms, and a compact binary
//! snapshot format.
//!
//! Everything downstream — the CFD substrates that *produce* data, the
//! samplers that *curate* it, and the training pipelines that *consume* it —
//! speaks in the types defined here, mirroring how the Python SICKLE passes
//! NumPy arrays between `subsample.py` and `train.py`.

pub mod decomp;
pub mod derived;
pub mod grid;
pub mod io;
pub mod points;
pub mod snapshot;
pub mod stats;
pub mod tiling;
pub mod vtk;

pub use grid::{Axis, Grid2, Grid3};
pub use io::SampleSetView;
pub use points::{FeatureMatrix, SampleSet};
pub use snapshot::{Dataset, DatasetMeta, Snapshot};
pub use stats::{hist_flops, Histogram, SummaryStats};
pub use tiling::{Hypercube, Tiling};
