//! Point-cloud outputs of the sampling pipeline.
//!
//! Samplers reduce dense snapshots to a [`SampleSet`]: a row-major feature
//! matrix (one row per retained point) plus the spatial indices and time that
//! identify where each row came from. This is the "feature-rich subsampled
//! dataset" the paper stores instead of raw fields.

use serde::{Deserialize, Serialize};

/// A dense row-major `n x d` matrix of named features.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    /// Column names (length `d`).
    pub names: Vec<String>,
    /// Row-major data (`n * d` values).
    pub data: Vec<f64>,
    /// Number of rows.
    pub n: usize,
}

impl FeatureMatrix {
    /// Creates a matrix from names and row-major data.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `names.len()`.
    pub fn new(names: Vec<String>, data: Vec<f64>) -> Self {
        let d = names.len();
        assert!(d > 0, "feature matrix needs at least one column");
        assert_eq!(
            data.len() % d,
            0,
            "data length {} not divisible by {} columns",
            data.len(),
            d
        );
        let n = data.len() / d;
        FeatureMatrix { names, data, n }
    }

    /// Creates an empty matrix with capacity for `cap` rows.
    pub fn with_capacity(names: Vec<String>, cap: usize) -> Self {
        let d = names.len();
        assert!(d > 0, "feature matrix needs at least one column");
        FeatureMatrix {
            names,
            data: Vec::with_capacity(cap * d),
            n: 0,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let d = self.dim();
        &self.data[i * d..(i + 1) * d]
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if `row.len() != dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim(), "row length mismatch");
        self.data.extend_from_slice(row);
        self.n += 1;
    }

    /// Extracts column `c` into a fresh vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        let d = self.dim();
        assert!(c < d, "column {c} out of range (dim {d})");
        (0..self.n).map(|i| self.data[i * d + c]).collect()
    }

    /// Finds a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<Vec<f64>> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|c| self.column(c))
    }

    /// Iterator over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim())
    }

    /// Per-column minimum and maximum; returns `(mins, maxs)`.
    /// Empty matrices return empty vectors.
    pub fn column_ranges(&self) -> (Vec<f64>, Vec<f64>) {
        let d = self.dim();
        if self.n == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                if v < mins[j] {
                    mins[j] = v;
                }
                if v > maxs[j] {
                    maxs[j] = v;
                }
            }
        }
        (mins, maxs)
    }

    /// Gathers the given row indices into a new matrix.
    pub fn gather(&self, indices: &[usize]) -> FeatureMatrix {
        let d = self.dim();
        let mut data = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            names: self.names.clone(),
            data,
            n: indices.len(),
        }
    }
}

/// The output of sampling one snapshot (or one hypercube): retained feature
/// rows, their source point indices, and provenance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleSet {
    /// Feature rows for retained points.
    pub features: FeatureMatrix,
    /// Flat grid index of each retained point in the source snapshot.
    pub indices: Vec<usize>,
    /// Simulation time of the source snapshot.
    pub time: f64,
    /// Index of the source snapshot within its dataset.
    pub snapshot_index: usize,
    /// Identifier of the source hypercube, if phase-1 tiling was used.
    pub hypercube: Option<usize>,
}

impl SampleSet {
    /// Creates a sample set; `indices` must be parallel to the feature rows.
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn new(
        features: FeatureMatrix,
        indices: Vec<usize>,
        time: f64,
        snapshot_index: usize,
    ) -> Self {
        assert_eq!(
            features.len(),
            indices.len(),
            "feature/index length mismatch"
        );
        SampleSet {
            features,
            indices,
            time,
            snapshot_index,
            hypercube: None,
        }
    }

    /// Tags the set with its source hypercube id (builder style).
    pub fn with_hypercube(mut self, id: usize) -> Self {
        self.hypercube = Some(id);
        self
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns true if no points were retained.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Merges many sample sets (e.g. per-hypercube outputs) into one, keeping
    /// the earliest time/snapshot index and dropping hypercube provenance.
    ///
    /// # Panics
    /// Panics if the sets have differing feature columns or the input is empty.
    pub fn merge(sets: &[SampleSet]) -> SampleSet {
        assert!(!sets.is_empty(), "cannot merge zero sample sets");
        let names = sets[0].features.names.clone();
        let total: usize = sets.iter().map(SampleSet::len).sum();
        let mut features = FeatureMatrix::with_capacity(names.clone(), total);
        let mut indices = Vec::with_capacity(total);
        for s in sets {
            assert_eq!(
                s.features.names, names,
                "mismatched feature columns in merge"
            );
            features.data.extend_from_slice(&s.features.data);
            features.n += s.features.n;
            indices.extend_from_slice(&s.indices);
        }
        SampleSet {
            features,
            indices,
            time: sets[0].time,
            snapshot_index: sets[0].snapshot_index,
            hypercube: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn matrix_shape_and_access() {
        let m = FeatureMatrix::new(names(&["a", "b"]), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.column_by_name("b"), Some(vec![2.0, 4.0, 6.0]));
        assert_eq!(m.column_by_name("zz"), None);
    }

    #[test]
    fn push_and_gather() {
        let mut m = FeatureMatrix::with_capacity(names(&["x"]), 4);
        for i in 0..4 {
            m.push_row(&[i as f64]);
        }
        let g = m.gather(&[3, 0]);
        assert_eq!(g.data, vec![3.0, 0.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn column_ranges() {
        let m = FeatureMatrix::new(names(&["a", "b"]), vec![1.0, -5.0, 3.0, 7.0]);
        let (mins, maxs) = m.column_ranges();
        assert_eq!(mins, vec![1.0, -5.0]);
        assert_eq!(maxs, vec![3.0, 7.0]);
        let empty = FeatureMatrix::with_capacity(names(&["a"]), 0);
        assert!(empty.column_ranges().0.is_empty());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_ragged_data() {
        let _ = FeatureMatrix::new(names(&["a", "b"]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sample_set_merge() {
        let s1 = SampleSet::new(
            FeatureMatrix::new(names(&["a"]), vec![1.0, 2.0]),
            vec![10, 20],
            0.5,
            0,
        )
        .with_hypercube(0);
        let s2 = SampleSet::new(
            FeatureMatrix::new(names(&["a"]), vec![3.0]),
            vec![30],
            0.5,
            0,
        )
        .with_hypercube(1);
        let m = SampleSet::merge(&[s1, s2]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.indices, vec![10, 20, 30]);
        assert_eq!(m.features.data, vec![1.0, 2.0, 3.0]);
        assert!(m.hypercube.is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sample_set_rejects_mismatch() {
        let _ = SampleSet::new(
            FeatureMatrix::new(names(&["a"]), vec![1.0, 2.0]),
            vec![1],
            0.0,
            0,
        );
    }
}
