//! Snapshots and datasets.
//!
//! A [`Snapshot`] is one time instant of a simulation: a set of named scalar
//! variables on a common grid. A [`Dataset`] is an ordered sequence of
//! snapshots plus the metadata the paper records in Table 1 (label, K-means
//! cluster variable, input/output variables).

use serde::{Deserialize, Serialize};

use crate::grid::{Axis, Grid3};

/// One time instant of a (possibly multi-variable) field.
///
/// 2D data is stored as a `Grid3` with `nz = 1` so the sampling pipeline is
/// dimension-agnostic, matching the Python framework's `--dims` switch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Grid shared by all variables.
    pub grid: Grid3,
    /// Simulation time of this snapshot.
    pub time: f64,
    /// Variable names, parallel to `vars`.
    pub names: Vec<String>,
    /// Per-variable flat data (`grid.len()` each), same ordering as `names`.
    pub vars: Vec<Vec<f64>>,
}

impl Snapshot {
    /// Creates an empty snapshot on `grid` at time `time`.
    pub fn new(grid: Grid3, time: f64) -> Self {
        Snapshot {
            grid,
            time,
            names: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Adds a variable; returns `self` for chaining.
    ///
    /// # Panics
    /// Panics if `data.len() != grid.len()` or the name already exists.
    pub fn with_var(mut self, name: &str, data: Vec<f64>) -> Self {
        self.push_var(name, data);
        self
    }

    /// Adds a variable in place.
    ///
    /// # Panics
    /// Panics if `data.len() != grid.len()` or the name already exists.
    pub fn push_var(&mut self, name: &str, data: Vec<f64>) {
        assert_eq!(
            data.len(),
            self.grid.len(),
            "variable '{name}' has wrong length"
        );
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate variable '{name}'"
        );
        self.names.push(name.to_string());
        self.vars.push(data);
    }

    /// Returns the variable data by name, if present.
    pub fn var(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.vars[i].as_slice())
    }

    /// Returns the variable data by name.
    ///
    /// # Panics
    /// Panics with a helpful message listing available variables if missing.
    pub fn expect_var(&self, name: &str) -> &[f64] {
        self.var(name)
            .unwrap_or_else(|| panic!("variable '{name}' not in snapshot (have: {:?})", self.names))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of grid points.
    pub fn num_points(&self) -> usize {
        self.grid.len()
    }

    /// In-memory size of the field data in bytes.
    pub fn nbytes(&self) -> usize {
        self.vars.len() * self.grid.len() * std::mem::size_of::<f64>()
    }

    /// Gathers the values of `names` at flat point index `i` into `out`.
    ///
    /// # Panics
    /// Panics if a name is missing or `out.len() != names.len()`.
    pub fn gather_point(&self, var_indices: &[usize], i: usize, out: &mut [f64]) {
        assert_eq!(var_indices.len(), out.len());
        for (o, &v) in out.iter_mut().zip(var_indices.iter()) {
            *o = self.vars[v][i];
        }
    }

    /// Resolves variable names to indices.
    ///
    /// # Panics
    /// Panics if any name is missing.
    pub fn var_indices(&self, names: &[String]) -> Vec<usize> {
        names
            .iter()
            .map(|name| {
                self.names
                    .iter()
                    .position(|n| n == name)
                    .unwrap_or_else(|| {
                        panic!("variable '{name}' not found (have: {:?})", self.names)
                    })
            })
            .collect()
    }
}

/// Metadata mirroring one row of the paper's Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Short label, e.g. "OF2D", "SST-P1F4".
    pub label: String,
    /// Human-readable description.
    pub description: String,
    /// K-means cluster variable (KCV) used by MaxEnt sampling.
    pub cluster_var: String,
    /// Neural-network input variables.
    pub input_vars: Vec<String>,
    /// Neural-network output variables.
    pub output_vars: Vec<String>,
    /// Gravity axis for stratified cases, if any.
    pub gravity: Option<Axis>,
}

impl DatasetMeta {
    /// Convenience constructor.
    pub fn new(
        label: &str,
        description: &str,
        cluster_var: &str,
        input_vars: &[&str],
        output_vars: &[&str],
    ) -> Self {
        DatasetMeta {
            label: label.to_string(),
            description: description.to_string(),
            cluster_var: cluster_var.to_string(),
            input_vars: input_vars.iter().map(|s| s.to_string()).collect(),
            output_vars: output_vars.iter().map(|s| s.to_string()).collect(),
            gravity: None,
        }
    }

    /// Sets the gravity axis (builder style).
    pub fn with_gravity(mut self, axis: Axis) -> Self {
        self.gravity = Some(axis);
        self
    }
}

/// An ordered sequence of snapshots with Table-1 metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Table-1 style metadata.
    pub meta: DatasetMeta,
    /// Snapshots ordered by time.
    pub snapshots: Vec<Snapshot>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new(meta: DatasetMeta) -> Self {
        Dataset {
            meta,
            snapshots: Vec::new(),
        }
    }

    /// Appends a snapshot, enforcing monotone time and consistent grids.
    ///
    /// # Panics
    /// Panics if the snapshot's grid differs from existing ones or its time
    /// does not increase.
    pub fn push(&mut self, snap: Snapshot) {
        if let Some(last) = self.snapshots.last() {
            assert_eq!(last.grid, snap.grid, "inconsistent grids in dataset");
            assert!(
                snap.time > last.time,
                "snapshot times must be strictly increasing"
            );
        }
        self.snapshots.push(snap);
    }

    /// Number of snapshots.
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Grid shared by all snapshots.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn grid(&self) -> Grid3 {
        self.snapshots.first().expect("empty dataset").grid
    }

    /// Total in-memory field size in bytes across all snapshots.
    pub fn nbytes(&self) -> usize {
        self.snapshots.iter().map(Snapshot::nbytes).sum()
    }

    /// Human-readable size string (B/KB/MB/GB/TB) like Table 1's Size column.
    pub fn size_string(&self) -> String {
        let mut v = self.nbytes() as f64;
        for unit in ["B", "KB", "MB", "GB", "TB"] {
            if v < 1024.0 {
                return format!("{v:.1}{unit}");
            }
            v /= 1024.0;
        }
        format!("{v:.1}PB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_snap(t: f64) -> Snapshot {
        let g = Grid3::new(2, 2, 2, 1.0, 1.0, 1.0);
        Snapshot::new(g, t)
            .with_var("u", vec![0.0; 8])
            .with_var("v", (0..8).map(|i| i as f64).collect())
    }

    #[test]
    fn variable_lookup() {
        let s = small_snap(0.0);
        assert_eq!(s.num_vars(), 2);
        assert!(s.var("u").is_some());
        assert!(s.var("w").is_none());
        assert_eq!(s.expect_var("v")[3], 3.0);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn rejects_duplicate_variable() {
        let _ = small_snap(0.0).with_var("u", vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn rejects_wrong_length_variable() {
        let _ = small_snap(0.0).with_var("w", vec![0.0; 7]);
    }

    #[test]
    fn gather_point_collects_row() {
        let s = small_snap(0.0);
        let idx = s.var_indices(&["v".to_string(), "u".to_string()]);
        let mut row = [0.0; 2];
        s.gather_point(&idx, 5, &mut row);
        assert_eq!(row, [5.0, 0.0]);
    }

    #[test]
    fn dataset_push_enforces_invariants() {
        let meta = DatasetMeta::new("T", "test", "v", &["u"], &["v"]);
        let mut d = Dataset::new(meta);
        d.push(small_snap(0.0));
        d.push(small_snap(1.0));
        assert_eq!(d.num_snapshots(), 2);
        assert_eq!(d.nbytes(), 2 * 2 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn dataset_rejects_time_regression() {
        let meta = DatasetMeta::new("T", "test", "v", &["u"], &["v"]);
        let mut d = Dataset::new(meta);
        d.push(small_snap(1.0));
        d.push(small_snap(0.5));
    }

    #[test]
    fn size_string_units() {
        let meta = DatasetMeta::new("T", "test", "v", &["u"], &["v"]);
        let mut d = Dataset::new(meta);
        d.push(small_snap(0.0));
        // 2 vars * 8 points * 8 bytes = 128 B
        assert_eq!(d.size_string(), "128.0B");
    }

    #[test]
    fn meta_builder_with_gravity() {
        let m = DatasetMeta::new("SST", "d", "rho", &["u"], &["p"]).with_gravity(Axis::Z);
        assert_eq!(m.gravity, Some(Axis::Z));
    }
}
