//! Summary statistics and fixed-width histograms.
//!
//! The paper's entropy machinery is built on binned probability estimates
//! ("PDF comparisons were binned using a fixed bin size of 100 across all
//! datasets"); [`Histogram`] provides that estimator, and PDF-level
//! diagnostics (KL divergence, tail mass) are implemented over it.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm for mean/variance).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of samples observed.
    pub count: usize,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    mean: f64,
    m2: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SummaryStats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Computes statistics of a slice in one pass.
    pub fn of(data: &[f64]) -> Self {
        let mut s = SummaryStats::new();
        for &v in data {
            s.push(v);
        }
        s
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Merges another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-width histogram over `[lo, hi]` with out-of-range values clamped to
/// the edge bins (the convention of `numpy.histogram` with explicit range).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` is not fixable (equal bounds are
    /// widened by a tiny epsilon so degenerate data still bins).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        let (lo, hi) = if hi > lo {
            (lo, hi)
        } else {
            (lo - 0.5, lo + 0.5)
        };
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Rebuilds a histogram from precomputed per-bin counts, e.g. after a
    /// parallel fold over partial count vectors. Equal bounds are widened
    /// exactly as in [`Histogram::new`].
    ///
    /// # Panics
    /// Panics if `counts` is empty or the bounds are not finite.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        let (lo, hi) = if hi > lo {
            (lo, hi)
        } else {
            (lo - 0.5, lo + 0.5)
        };
        let total = counts.iter().sum();
        Histogram {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Builds a histogram of `data` with `bins` bins spanning the data range.
    /// Empty or non-finite-only data produces an empty unit-range histogram.
    pub fn of(data: &[f64], bins: usize) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in data {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() {
            return Histogram::new(0.0, 1.0, bins);
        }
        let mut h = Histogram::new(lo, hi, bins);
        h.extend(data);
        h
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Returns true if no samples were added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Bin index for value `v` (clamped to the edge bins).
    #[inline]
    pub fn bin_of(&self, v: f64) -> usize {
        sickle_simd::bin_index(v, self.lo, self.hi, self.bins())
    }

    /// Adds one sample (non-finite values are skipped).
    #[inline]
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            let b = self.bin_of(v);
            self.counts[b] += 1;
            self.total += 1;
        }
    }

    /// Adds many samples. Under the workspace [`sickle_simd::Kernel`] switch
    /// this routes through the vectorized bin-index kernel; counts are
    /// bit-identical to the scalar push loop for every input (including NaN,
    /// ±inf and out-of-range values).
    pub fn extend(&mut self, data: &[f64]) {
        self.extend_with(data, sickle_simd::kernel());
    }

    /// [`Self::extend`] with an explicit kernel choice (parity tests and
    /// benches; avoids racing on the global switch).
    #[doc(hidden)]
    pub fn extend_with(&mut self, data: &[f64], kernel: sickle_simd::Kernel) {
        match kernel {
            sickle_simd::Kernel::Naive => {
                for &v in data {
                    self.push(v);
                }
            }
            sickle_simd::Kernel::Optimized => {
                let bins = self.counts.len();
                // The fused kernel computes bin indices and accumulates the
                // banked counts in a single pass; the extra slot at `bins`
                // receives the non-finite values the scalar loop skips.
                // Integer addition commutes, so the merged counts are
                // bit-identical to the scalar push loop. The scratch lives
                // on the stack for the common per-cube call sizes, where a
                // heap allocation would be measurable.
                let mut small = [0u64; 257];
                let mut heap;
                let scratch: &mut [u64] = if bins < 257 {
                    &mut small[..=bins]
                } else {
                    heap = vec![0u64; bins + 1];
                    &mut heap
                };
                sickle_simd::bin_counts(data, self.lo, self.hi, bins, scratch);
                for (c, &p) in self.counts.iter_mut().zip(scratch.iter()) {
                    *c += p;
                }
                self.total += data.len() as u64 - scratch[bins];
            }
        }
    }

    /// Merges a histogram with identical binning.
    ///
    /// # Panics
    /// Panics if bounds or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins(), other.bins(), "bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "bounds mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Normalized probability mass per bin (sums to 1; empty histogram gives
    /// a uniform distribution, matching the maximum-entropy prior).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![1.0 / self.bins() as f64; self.bins()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Bin centers, for plotting/export.
    pub fn centers(&self) -> Vec<f64> {
        let b = self.bins();
        let w = (self.hi - self.lo) / b as f64;
        (0..b).map(|i| self.lo + (i as f64 + 0.5) * w).collect()
    }

    /// Fraction of mass in the extreme `tail_frac` of the value range on each
    /// side (e.g. 0.05 = outer 5% of the range at both ends). Used to score
    /// how well a sampling method covers distribution tails (paper Fig. 5).
    pub fn tail_mass(&self, tail_frac: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = self.bins();
        let k = ((b as f64 * tail_frac).ceil() as usize).clamp(1, (b / 2).max(1));
        let lo_mass: u64 = self.counts[..k].iter().sum();
        let hi_mass: u64 = self.counts[b - k..].iter().sum();
        (lo_mass + hi_mass) as f64 / self.total as f64
    }
}

/// Analytic flop estimate for binning `n` values into a histogram
/// (subtract, divide, scale, truncate per value).
pub fn hist_flops(n: usize) -> u64 {
    4 * n as u64
}

/// Shannon entropy (nats) of a probability mass function; zero-probability
/// bins contribute nothing.
pub fn shannon_entropy(pmf: &[f64]) -> f64 {
    -pmf.iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

/// Kullback–Leibler divergence `D(p ‖ q)` in nats with additive smoothing of
/// `q` (so the divergence stays finite when `q` has empty bins), matching the
/// reference implementation's epsilon-regularized KL.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "pmf length mismatch");
    const EPS: f64 = 1e-12;
    let qs: f64 = q.iter().map(|&v| v + EPS).sum();
    p.iter()
        .zip(q.iter())
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / ((qi + EPS) / qs)).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_matches_push() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut pushed = Histogram::new(-1.0, 1.0, 16);
        pushed.extend(&data);
        let rebuilt = Histogram::from_counts(-1.0, 1.0, pushed.counts.clone());
        assert_eq!(rebuilt.counts, pushed.counts);
        assert_eq!(rebuilt.total, pushed.total);
        assert_eq!(rebuilt.pmf(), pushed.pmf());
    }

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn summary_stats_merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let whole = SummaryStats::of(&data);
        let mut a = SummaryStats::of(&data[..37]);
        let b = SummaryStats::of(&data[37..]);
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min, whole.min);
        assert_eq!(a.max, whole.max);
    }

    #[test]
    fn histogram_bins_uniform_data() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let h = Histogram::of(&data, 10);
        assert_eq!(h.total, 1000);
        for &c in &h.counts {
            assert!((c as i64 - 100).abs() <= 1, "bin count {c}");
        }
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(5.0);
        h.push(f64::NAN); // skipped
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.total, 2);
    }

    #[test]
    fn histogram_degenerate_range() {
        let h = Histogram::of(&[2.0, 2.0, 2.0], 5);
        assert_eq!(h.total, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = Histogram::of(&[1.0, 2.0, 2.0, 3.0], 3);
        let p = h.pmf();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let empty = Histogram::new(0.0, 1.0, 4);
        assert!((empty.pmf().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_maximized_by_uniform() {
        let uniform = vec![0.25; 4];
        let peaked = vec![0.97, 0.01, 0.01, 0.01];
        assert!(shannon_entropy(&uniform) > shannon_entropy(&peaked));
        assert!((shannon_entropy(&uniform) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(shannon_entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = vec![0.5, 0.3, 0.2];
        let q = vec![0.1, 0.6, 0.3];
        assert!(kl_divergence(&p, &p) < 1e-9);
        assert!(kl_divergence(&p, &q) > 0.0);
        // Asymmetry in general.
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn kl_divergence_finite_with_empty_q_bins() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![1.0, 0.0, 0.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn tail_mass_detects_heavy_tails() {
        // All mass at the extremes.
        let mut extreme = Histogram::new(0.0, 1.0, 100);
        for _ in 0..50 {
            extreme.push(0.001);
            extreme.push(0.999);
        }
        assert!((extreme.tail_mass(0.05) - 1.0).abs() < 1e-12);
        // All mass at the center.
        let mut central = Histogram::new(0.0, 1.0, 100);
        for _ in 0..100 {
            central.push(0.5);
        }
        assert_eq!(central.tail_mass(0.05), 0.0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.extend(&[0.1, 0.9]);
        let mut b = Histogram::new(0.0, 1.0, 4);
        b.extend(&[0.5]);
        a.merge(&b);
        assert_eq!(a.total, 3);
    }
}
