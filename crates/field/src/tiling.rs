//! Hypercube tiling of snapshots (the paper's phase-1 spatial decomposition).
//!
//! Dense snapshots are partitioned into non-overlapping cubes of edge `s`
//! (the paper uses 32³; "full" baselines train on fully dense cubes of this
//! size). Tiles cover the grid completely when the dimensions divide evenly;
//! otherwise trailing partial tiles are dropped, as in the reference
//! implementation which slices `nxsl`-sized windows.

use serde::{Deserialize, Serialize};

use crate::grid::Grid3;
use crate::points::FeatureMatrix;
use crate::snapshot::Snapshot;

/// One axis-aligned tile of a grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    /// Tile id within its tiling (row-major over tile coordinates).
    pub id: usize,
    /// Starting grid indices `(x0, y0, z0)`.
    pub origin: (usize, usize, usize),
    /// Edge lengths in points `(ex, ey, ez)`; `ez = 1` for 2D data.
    pub edges: (usize, usize, usize),
}

impl Hypercube {
    /// Number of points in the cube.
    pub fn len(&self) -> usize {
        self.edges.0 * self.edges.1 * self.edges.2
    }

    /// Returns true for a degenerate cube.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat grid indices of every point in the cube, in row-major cube order.
    pub fn point_indices(&self, grid: &Grid3) -> Vec<usize> {
        let (x0, y0, z0) = self.origin;
        let (ex, ey, ez) = self.edges;
        let mut out = Vec::with_capacity(self.len());
        for dx in 0..ex {
            for dy in 0..ey {
                for dz in 0..ez {
                    out.push(grid.idx(x0 + dx, y0 + dy, z0 + dz));
                }
            }
        }
        out
    }
}

/// A complete tiling of a grid into equal hypercubes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tiling {
    /// The tiled grid.
    pub grid: Grid3,
    /// Tile edge lengths `(ex, ey, ez)`.
    pub edges: (usize, usize, usize),
    /// Tile counts along each axis.
    pub counts: (usize, usize, usize),
}

impl Tiling {
    /// Tiles `grid` with cubes of edges `(ex, ey, ez)`.
    ///
    /// Trailing points that do not fill a complete tile are excluded (the
    /// reference implementation slices whole windows only).
    ///
    /// # Panics
    /// Panics if any edge is zero or exceeds the grid extent.
    pub fn new(grid: Grid3, edges: (usize, usize, usize)) -> Self {
        let (ex, ey, ez) = edges;
        assert!(ex > 0 && ey > 0 && ez > 0, "tile edges must be positive");
        assert!(
            ex <= grid.nx && ey <= grid.ny && ez <= grid.nz,
            "tile edges {edges:?} exceed grid ({}, {}, {})",
            grid.nx,
            grid.ny,
            grid.nz
        );
        let counts = (grid.nx / ex, grid.ny / ey, grid.nz / ez);
        Tiling {
            grid,
            edges,
            counts,
        }
    }

    /// Tiles with a cubic edge (`s`, `s`, `s` clamped to 1 along z for 2D
    /// grids where `nz == 1`).
    pub fn cubic(grid: Grid3, s: usize) -> Self {
        let ez = if grid.nz == 1 { 1 } else { s };
        Tiling::new(grid, (s, s, ez))
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.counts.0 * self.counts.1 * self.counts.2
    }

    /// Returns true if the grid is smaller than one tile.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th tile (row-major over tile coordinates).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn tile(&self, i: usize) -> Hypercube {
        assert!(
            i < self.len(),
            "tile {i} out of range ({} tiles)",
            self.len()
        );
        let (cx, cy, cz) = self.counts;
        let tz = i % cz;
        let rest = i / cz;
        let ty = rest % cy;
        let tx = rest / cy;
        debug_assert!(tx < cx);
        Hypercube {
            id: i,
            origin: (tx * self.edges.0, ty * self.edges.1, tz * self.edges.2),
            edges: self.edges,
        }
    }

    /// Iterator over all tiles.
    pub fn tiles(&self) -> impl Iterator<Item = Hypercube> + '_ {
        (0..self.len()).map(|i| self.tile(i))
    }

    /// Extracts the feature rows of every point in tile `i` from `snap`,
    /// using the given variables (by name).
    ///
    /// Returns `(features, point_indices)`.
    pub fn extract(
        &self,
        snap: &Snapshot,
        tile_id: usize,
        var_names: &[String],
    ) -> (FeatureMatrix, Vec<usize>) {
        let cube = self.tile(tile_id);
        let vidx = snap.var_indices(var_names);
        let indices = cube.point_indices(&self.grid);
        let mut features = FeatureMatrix::with_capacity(var_names.to_vec(), indices.len());
        let mut row = vec![0.0; vidx.len()];
        for &p in &indices {
            snap.gather_point(&vidx, p, &mut row);
            features.push_row(&row);
        }
        (features, indices)
    }

    /// Mean of variable `var` over each tile — a cheap per-cube summary used
    /// by phase-1 cube scoring.
    pub fn tile_means(&self, snap: &Snapshot, var: &str) -> Vec<f64> {
        let data = snap.expect_var(var);
        self.tiles()
            .map(|cube| {
                let idx = cube.point_indices(&self.grid);
                idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid3;

    #[test]
    fn exact_tiling_covers_grid() {
        let g = Grid3::new(8, 8, 8, 1.0, 1.0, 1.0);
        let t = Tiling::cubic(g, 4);
        assert_eq!(t.len(), 8);
        let mut seen = vec![false; g.len()];
        for cube in t.tiles() {
            for i in cube.point_indices(&g) {
                assert!(!seen[i], "point {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "tiling must cover every point");
    }

    #[test]
    fn partial_tiles_dropped() {
        let g = Grid3::new(10, 10, 10, 1.0, 1.0, 1.0);
        let t = Tiling::cubic(g, 4);
        assert_eq!(t.counts, (2, 2, 2));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn two_dimensional_tiling() {
        let g = Grid3::new(8, 8, 1, 1.0, 1.0, 1.0);
        let t = Tiling::cubic(g, 4);
        assert_eq!(t.counts, (2, 2, 1));
        assert_eq!(t.tile(0).edges, (4, 4, 1));
        assert_eq!(t.tile(0).len(), 16);
    }

    #[test]
    fn tile_ids_roundtrip() {
        let g = Grid3::new(8, 12, 16, 1.0, 1.0, 1.0);
        let t = Tiling::new(g, (4, 4, 4));
        for i in 0..t.len() {
            assert_eq!(t.tile(i).id, i);
        }
        assert_eq!(t.len(), 2 * 3 * 4);
    }

    #[test]
    fn extract_pulls_correct_values() {
        let g = Grid3::new(4, 4, 1, 1.0, 1.0, 1.0);
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let snap = Snapshot::new(g, 0.0).with_var("u", data);
        let t = Tiling::cubic(g, 2);
        let (features, idx) = t.extract(&snap, 0, &["u".to_string()]);
        assert_eq!(features.len(), 4);
        // Tile 0 covers x in 0..2, y in 0..2 -> flat indices 0,1,4,5.
        assert_eq!(idx, vec![0, 1, 4, 5]);
        assert_eq!(features.column(0), vec![0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn tile_means_are_averages() {
        let g = Grid3::new(4, 2, 1, 1.0, 1.0, 1.0);
        // Values equal to x coordinate.
        let data: Vec<f64> = (0..8).map(|i| (i / 2) as f64).collect();
        let snap = Snapshot::new(g, 0.0).with_var("u", data);
        let t = Tiling::new(g, (2, 2, 1));
        let means = t.tile_means(&snap, "u");
        assert_eq!(means, vec![0.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "exceed grid")]
    fn rejects_oversized_tile() {
        let g = Grid3::new(4, 4, 4, 1.0, 1.0, 1.0);
        let _ = Tiling::cubic(g, 8);
    }
}
