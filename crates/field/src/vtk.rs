//! Legacy-VTK export for snapshots and sample sets.
//!
//! The paper lists "enhanced visualization and analysis tools compatible
//! with VTK and ParaView" as a goal and ships plotting scripts with the
//! artifact; this module writes the two things one wants to look at —
//! dense snapshots as `STRUCTURED_POINTS` volumes and sampled point clouds
//! as `POLYDATA` vertices with per-point feature arrays — in the ASCII
//! legacy format every ParaView build reads.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::points::SampleSet;
use crate::snapshot::Snapshot;

/// Renders a snapshot as a legacy-VTK `STRUCTURED_POINTS` dataset with one
/// scalar field per variable.
pub fn snapshot_to_vtk(snap: &Snapshot) -> String {
    let g = snap.grid;
    let (dx, dy, dz) = g.spacing();
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    let _ = writeln!(out, "SICKLE snapshot t={}", snap.time);
    out.push_str("ASCII\nDATASET STRUCTURED_POINTS\n");
    let _ = writeln!(out, "DIMENSIONS {} {} {}", g.nx, g.ny, g.nz);
    out.push_str("ORIGIN 0 0 0\n");
    let _ = writeln!(out, "SPACING {dx} {dy} {dz}");
    let _ = writeln!(out, "POINT_DATA {}", g.len());
    for (name, var) in snap.names.iter().zip(&snap.vars) {
        let _ = writeln!(out, "SCALARS {name} double 1");
        out.push_str("LOOKUP_TABLE default\n");
        // VTK structured points iterate x fastest; our layout is z fastest,
        // so emit in VTK order (z slowest here means loop z outermost).
        for z in 0..g.nz {
            for y in 0..g.ny {
                for x in 0..g.nx {
                    let _ = writeln!(out, "{}", var[g.idx(x, y, z)]);
                }
            }
        }
    }
    out
}

/// Renders a sample set as a legacy-VTK `POLYDATA` point cloud; `grid`
/// resolves flat indices to physical coordinates, and every feature column
/// becomes a scalar array.
pub fn sample_set_to_vtk(set: &SampleSet, grid: &crate::grid::Grid3) -> String {
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    let _ = writeln!(out, "SICKLE samples t={} n={}", set.time, set.len());
    out.push_str("ASCII\nDATASET POLYDATA\n");
    let _ = writeln!(out, "POINTS {} double", set.len());
    for &i in &set.indices {
        let (x, y, z) = grid.coords(i);
        let (px, py, pz) = grid.position(x, y, z);
        let _ = writeln!(out, "{px} {py} {pz}");
    }
    let _ = writeln!(out, "VERTICES {} {}", set.len(), 2 * set.len());
    for i in 0..set.len() {
        let _ = writeln!(out, "1 {i}");
    }
    let _ = writeln!(out, "POINT_DATA {}", set.len());
    for (c, name) in set.features.names.iter().enumerate() {
        let _ = writeln!(out, "SCALARS {name} double 1");
        out.push_str("LOOKUP_TABLE default\n");
        for r in 0..set.len() {
            let _ = writeln!(out, "{}", set.features.row(r)[c]);
        }
    }
    out
}

/// Writes a snapshot to a `.vtk` file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_snapshot_vtk(snap: &Snapshot, path: &Path) -> io::Result<()> {
    std::fs::write(path, snapshot_to_vtk(snap))
}

/// Writes a sample set to a `.vtk` file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_sample_set_vtk(
    set: &SampleSet,
    grid: &crate::grid::Grid3,
    path: &Path,
) -> io::Result<()> {
    std::fs::write(path, sample_set_to_vtk(set, grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid3;
    use crate::points::{FeatureMatrix, SampleSet};

    fn snap() -> Snapshot {
        let g = Grid3::new(2, 2, 2, 1.0, 1.0, 1.0);
        Snapshot::new(g, 0.5).with_var("u", (0..8).map(|i| i as f64).collect())
    }

    #[test]
    fn snapshot_vtk_structure() {
        let s = snapshot_to_vtk(&snap());
        assert!(s.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(s.contains("DATASET STRUCTURED_POINTS"));
        assert!(s.contains("DIMENSIONS 2 2 2"));
        assert!(s.contains("POINT_DATA 8"));
        assert!(s.contains("SCALARS u double 1"));
        // 8 data lines for the variable.
        let data_lines = s
            .lines()
            .skip_while(|l| !l.starts_with("LOOKUP_TABLE"))
            .skip(1)
            .count();
        assert_eq!(data_lines, 8);
    }

    #[test]
    fn snapshot_vtk_axis_order_is_x_fastest() {
        let s = snapshot_to_vtk(&snap());
        let values: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("LOOKUP_TABLE"))
            .skip(1)
            .collect();
        // Our layout: idx = (x*2 + y)*2 + z. VTK wants x fastest:
        // (x=0,y=0,z=0)=0, (x=1,y=0,z=0)=4, (x=0,y=1,z=0)=2, ...
        assert_eq!(values[0], "0");
        assert_eq!(values[1], "4");
        assert_eq!(values[2], "2");
        assert_eq!(values[3], "6");
        assert_eq!(values[4], "1");
    }

    #[test]
    fn sample_set_vtk_structure() {
        let g = Grid3::new(4, 4, 1, 4.0, 4.0, 1.0);
        let fm = FeatureMatrix::new(vec!["q".into()], vec![1.5, 2.5]);
        let set = SampleSet::new(fm, vec![0, 5], 0.0, 0);
        let s = sample_set_to_vtk(&set, &g);
        assert!(s.contains("DATASET POLYDATA"));
        assert!(s.contains("POINTS 2 double"));
        assert!(s.contains("VERTICES 2 4"));
        assert!(s.contains("SCALARS q double 1"));
        // Index 5 = (x=1, y=1) at unit spacing.
        assert!(s.contains("1 1 0"));
    }

    #[test]
    fn files_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("sickle_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("snap.vtk");
        save_snapshot_vtk(&snap(), &p).unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.contains("STRUCTURED_POINTS"));
        std::fs::remove_file(&p).ok();
    }
}
