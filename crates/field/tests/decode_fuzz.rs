//! Robustness property tests for the binary decoders.
//!
//! The store/serve data plane feeds `decode_snapshot`, `decode_sample_set`,
//! and the SKLH shard decoder with bytes that crossed a disk or a socket, so
//! hostile input is a normal operating condition: every truncation must be
//! an `io::Error`, and no bit flip may panic or trigger an unbounded
//! allocation (counts read from the wire must never drive `with_capacity`
//! unchecked — that is an abort, not even a catchable panic).

use proptest::prelude::*;
use sickle_field::io::{
    decode_sample_set, decode_sample_sets, decode_snapshot, encode_sample_set, encode_sample_sets,
    encode_snapshot,
};
use sickle_field::{FeatureMatrix, Grid3, SampleSet, Snapshot};

fn snapshot_bytes(nx: usize, ny: usize, nvars: usize) -> Vec<u8> {
    let grid = Grid3::new(nx, ny, 2, 1.0, 2.0, 3.0);
    let mut snap = Snapshot::new(grid, 0.75);
    for v in 0..nvars {
        snap.push_var(
            &format!("var{v}"),
            (0..grid.len()).map(|i| (i + v) as f64 * 0.5).collect(),
        );
    }
    encode_snapshot(&snap).to_vec()
}

fn sample_set(n: usize, dim: usize, cube: Option<usize>) -> SampleSet {
    let names = (0..dim).map(|d| format!("f{d}")).collect();
    let features = FeatureMatrix::new(names, (0..n * dim).map(|i| i as f64 * 0.25).collect());
    let mut set = SampleSet::new(features, (0..n).map(|i| i * 3).collect(), 1.5, 2);
    set.hypercube = cube;
    set
}

fn shard_bytes(sets: usize, n: usize, dim: usize) -> Vec<u8> {
    let sets: Vec<SampleSet> = (0..sets)
        .map(|s| sample_set(n + s, dim, if s % 2 == 0 { Some(s) } else { None }))
        .collect();
    encode_sample_sets(&sets).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_snapshot_is_error_not_panic(
        (nx, ny, nvars, frac) in (1usize..5, 1usize..5, 1usize..4, 0.0f64..1.0)
    ) {
        let bytes = snapshot_bytes(nx, ny, nvars);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflipped_snapshot_never_panics(
        (nx, nvars, pos_frac, bit) in (1usize..5, 1usize..4, 0.0f64..1.0, 0u8..8)
    ) {
        let mut bytes = snapshot_bytes(nx, 3, nvars);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip in the float payload legitimately decodes; a flip in any
        // count, magic, or dimension must surface as io::Error — either
        // way the decoder must return, not panic or abort.
        let _ = decode_snapshot(&bytes);
    }

    #[test]
    fn truncated_sample_set_is_error_not_panic(
        (n, dim, frac) in (1usize..20, 1usize..4, 0.0f64..1.0)
    ) {
        let bytes = encode_sample_set(&sample_set(n, dim, Some(7))).to_vec();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_sample_set(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflipped_sample_set_never_panics(
        (n, dim, pos_frac, bit) in (1usize..20, 1usize..4, 0.0f64..1.0, 0u8..8)
    ) {
        let mut bytes = encode_sample_set(&sample_set(n, dim, None)).to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = decode_sample_set(&bytes);
    }

    #[test]
    fn truncated_shard_is_error_not_panic(
        (sets, n, frac) in (1usize..4, 1usize..10, 0.0f64..1.0)
    ) {
        let bytes = shard_bytes(sets, n, 2);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_sample_sets(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflipped_shard_never_panics(
        (sets, n, pos_frac, bit) in (1usize..4, 1usize..10, 0.0f64..1.0, 0u8..8)
    ) {
        let mut bytes = shard_bytes(sets, n, 2);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = decode_sample_sets(&bytes);
    }

    #[test]
    fn codec_tagged_shards_are_errors_here_not_panics(
        payload in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        // Quantized SKLQ shards belong to the codec layer; this crate's
        // legacy decoders must reject the foreign magic cleanly — an old
        // binary pointed at a compressed store gets an error, not a panic.
        let mut bytes = b"SKLQ".to_vec();
        bytes.extend_from_slice(&payload);
        prop_assert!(decode_sample_sets(&bytes).is_err());
        prop_assert!(decode_sample_set(&bytes).is_err());
        prop_assert!(decode_snapshot(&bytes).is_err());
    }
}

/// Directed regressions for the specific count fields a fuzzer takes longest
/// to hit: each one used to drive an unchecked `with_capacity` or a
/// wrapping length check.
#[test]
fn hostile_counts_are_errors_not_aborts() {
    // Snapshot with nvars = u32::MAX but no name bytes behind it.
    let mut bytes = snapshot_bytes(2, 2, 1);
    let nvars_off = 4 + 4 + 3 * 8 + 3 * 8 + 8; // magic, version, dims, extents, time
    bytes[nvars_off..nvars_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_snapshot(&bytes).is_err());

    // Snapshot whose grid dimensions multiply past usize::MAX.
    let mut bytes = snapshot_bytes(2, 2, 1);
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_snapshot(&bytes).is_err());

    // Snapshot with a zero grid dimension.
    let mut bytes = snapshot_bytes(2, 2, 1);
    bytes[8..16].copy_from_slice(&0u64.to_le_bytes());
    assert!(decode_snapshot(&bytes).is_err());

    // Sample set with n = u64::MAX: n*8 + n*dim*8 wraps in release builds,
    // which used to pass the length check and then abort allocating.
    let set = sample_set(3, 2, None);
    let mut bytes = encode_sample_set(&set).to_vec();
    let n_off = 4 + 4 + 8 + 8 + 8 + 4 + 2 * (4 + 2); // header + dim + two "f0"/"f1" names
    assert_eq!(&bytes[n_off..n_off + 8], &3u64.to_le_bytes());
    bytes[n_off..n_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_sample_set(&bytes).is_err());

    // Sample set claiming zero feature columns (FeatureMatrix would panic).
    let mut bytes = encode_sample_set(&set).to_vec();
    let dim_off = 4 + 4 + 8 + 8 + 8;
    bytes[dim_off..dim_off + 4].copy_from_slice(&0u32.to_le_bytes());
    assert!(decode_sample_set(&bytes).is_err());

    // Shard with a count far beyond its payload.
    let mut bytes = shard_bytes(2, 4, 2);
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_sample_sets(&bytes).is_err());

    // A well-formed SKLQ header (codec-layer format): still foreign to the
    // legacy decoder, still an error — the magic check must come first.
    let mut bytes = b"SKLQ".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes()); // container version
    bytes.push(1); // codec tag (f16)
    bytes.extend_from_slice(&1u64.to_le_bytes()); // set count
    assert!(decode_sample_sets(&bytes).is_err());
}
