//! Property tests pinning the vectorized histogram fill to the scalar push
//! loop: counts must be *bit-identical* (they are integers, so identical
//! full stop) over ragged lengths, edge bins, degenerate ranges, and
//! non-finite inputs.

use proptest::prelude::*;
use sickle_field::Histogram;
use sickle_simd::Kernel;

/// Mostly in-range values with a steady trickle of hostile ones: NaN, ±inf,
/// huge finite magnitudes that overflow the normalized position, and zeros.
fn value_strategy() -> impl Strategy<Value = f64> {
    (0usize..16, -10.0f64..10.0).prop_map(|(kind, x)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 1e300,
        4 => -1e300,
        5 => 0.0,
        6 => -0.0,
        7 => f64::MIN_POSITIVE,
        _ => x,
    })
}

proptest! {
    #[test]
    fn extend_counts_identical_across_kernels(
        data in proptest::collection::vec(value_strategy(), 0..600),
        bins in 1usize..64,
        lo in -5.0f64..0.0,
        span in (0usize..4, 1e-9f64..10.0),
    ) {
        // A zero span exercises the degenerate min == max widening.
        let hi = lo + if span.0 == 0 { 0.0 } else { span.1 };
        let mut naive = Histogram::new(lo, hi, bins);
        let mut opt = Histogram::new(lo, hi, bins);
        naive.extend_with(&data, Kernel::Naive);
        opt.extend_with(&data, Kernel::Optimized);
        prop_assert_eq!(&naive.counts, &opt.counts);
        prop_assert_eq!(naive.total, opt.total);
    }

    #[test]
    fn extend_chunk_boundaries_identical(
        // Lengths straddling the 4096-wide index scratch exercise the
        // chunked vector path plus its scalar tail.
        len in 4090usize..4102,
        bins in 1usize..8,
    ) {
        let data: Vec<f64> = (0..len)
            .map(|i| if i % 97 == 0 { f64::NAN } else { (i as f64 * 0.37).sin() * 2.0 })
            .collect();
        let mut naive = Histogram::new(-1.0, 1.0, bins);
        let mut opt = Histogram::new(-1.0, 1.0, bins);
        naive.extend_with(&data, Kernel::Naive);
        opt.extend_with(&data, Kernel::Optimized);
        prop_assert_eq!(&naive.counts, &opt.counts);
        prop_assert_eq!(naive.total, opt.total);
    }
}

#[test]
fn extend_edge_bins_take_out_of_range_mass() {
    // Out-of-range finite values clamp into the end bins under both kernels.
    let data = [-1e9, -1.0000001, 1.0000001, 1e9, 0.0];
    for kernel in [Kernel::Naive, Kernel::Optimized] {
        let mut h = Histogram::new(-1.0, 1.0, 4);
        h.extend_with(&data, kernel);
        assert_eq!(h.counts[0], 2, "{kernel:?}");
        assert_eq!(h.counts[3], 2, "{kernel:?}");
        assert_eq!(h.total, 5, "{kernel:?}");
    }
}
