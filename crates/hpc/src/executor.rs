//! Real threaded rank executor for the sampling pipeline.
//!
//! Mirrors `srun -n R python subsample.py`: the selected hypercubes of a
//! snapshot are dealt round-robin to `R` ranks; each rank processes its
//! share on a dedicated single-thread rayon pool (so one rank ≡ one core,
//! as in the paper's CPU sampling runs), and the run time is the slowest
//! rank's time.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_core::pipeline::SamplingConfig;
use sickle_field::{SampleSet, Snapshot, Tiling};

/// Timing result of one ranked run.
#[derive(Clone, Debug)]
pub struct RankTiming {
    /// Number of ranks used.
    pub ranks: usize,
    /// Wall-clock seconds for the whole run (serial phase 1 + parallel
    /// phase 2, i.e. bounded below by the slowest rank).
    pub elapsed_secs: f64,
    /// Busy seconds of each rank's phase-2 work, indexed by rank.
    pub rank_secs: Vec<f64>,
    /// Hypercubes processed per rank.
    pub cubes_per_rank: Vec<usize>,
    /// Total points retained.
    pub points_out: usize,
}

impl RankTiming {
    /// Phase-2 seconds of the slowest rank (0 when no ranks ran).
    pub fn slowest_rank_secs(&self) -> f64 {
        self.rank_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Mean phase-2 seconds across ranks.
    pub fn mean_rank_secs(&self) -> f64 {
        if self.rank_secs.is_empty() {
            0.0
        } else {
            self.rank_secs.iter().sum::<f64>() / self.rank_secs.len() as f64
        }
    }

    /// Load-imbalance ratio: slowest rank / mean rank. 1.0 means perfectly
    /// balanced; 2.0 means the critical rank worked twice the average.
    /// Returns 1.0 when the run is too short to measure.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_rank_secs();
        if mean <= 0.0 {
            1.0
        } else {
            self.slowest_rank_secs() / mean
        }
    }
}

/// Runs phase 1 + phase 2 for one snapshot with `ranks` worker threads.
///
/// Phase 1 (cube selection) runs on the calling thread — it is the serial
/// fraction, as in the reference implementation where rank 0 broadcasts the
/// selection. Phase 2 is distributed.
///
/// # Panics
/// Panics if `ranks == 0`.
pub fn run_with_ranks(snap: &Snapshot, cfg: &SamplingConfig, ranks: usize) -> RankTiming {
    assert!(ranks > 0, "need at least one rank");
    let _run = sickle_obs::span!("hpc.run_with_ranks", ranks = ranks);
    let t0 = Instant::now();
    let tiling = Tiling::cubic(snap.grid, cfg.cube_edge);
    let count = cfg.num_hypercubes.min(tiling.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let selector = cfg.hypercubes.build();
    let cube_ids = {
        let _p1 = sickle_obs::span!("hpc.phase1.select", tiles = tiling.len(), keep = count);
        selector.select(&tiling, snap, &cfg.cluster_var, count, &mut rng)
    };
    let (vars, cluster_col) = cfg.extraction_vars();

    // Round-robin deal, like MPI rank striding.
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); ranks];
    for (i, &cube) in cube_ids.iter().enumerate() {
        assignments[i % ranks].push(cube);
    }
    let cubes_per_rank: Vec<usize> = assignments.iter().map(Vec::len).collect();

    // Rank threads start with empty span stacks; parent them explicitly.
    let parent = sickle_obs::current_span_id();
    let results: Vec<(Vec<SampleSet>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .enumerate()
            .map(|(rank, my_cubes)| {
                let tiling = &tiling;
                let vars = &vars;
                scope.spawn(move || {
                    let _rank_span = sickle_obs::child_span!(
                        parent,
                        "hpc.rank",
                        rank = rank,
                        cubes = my_cubes.len()
                    );
                    let rank_t0 = Instant::now();
                    // One rank = one core: confine rayon to a single thread.
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(1)
                        .build()
                        .expect("failed to build rank pool");
                    let sets = pool.install(|| {
                        let sampler = cfg.method.build();
                        my_cubes
                            .iter()
                            .map(|&cube_id| {
                                let (features, indices) = tiling.extract(snap, cube_id, vars);
                                let mut rng = StdRng::seed_from_u64(
                                    cfg.seed ^ (cube_id as u64).wrapping_mul(0x9E37_79B9),
                                );
                                let picked = sampler.select(
                                    &features,
                                    cluster_col,
                                    cfg.num_samples,
                                    &mut rng,
                                );
                                let sel = features.gather(&picked);
                                let idx: Vec<usize> = picked.iter().map(|&p| indices[p]).collect();
                                SampleSet::new(sel, idx, snap.time, 0).with_hypercube(cube_id)
                            })
                            .collect::<Vec<_>>()
                    });
                    (sets, rank_t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    let rank_secs: Vec<f64> = results.iter().map(|(_, s)| *s).collect();
    let points_out = results
        .iter()
        .flat_map(|(sets, _)| sets)
        .map(SampleSet::len)
        .sum();
    let timing = RankTiming {
        ranks,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        rank_secs,
        cubes_per_rank,
        points_out,
    };
    sickle_obs::gauge!("hpc.imbalance", timing.imbalance());
    sickle_obs::counter!("hpc.points_out", points_out);
    timing
}

/// Runs a strong-scaling sweep over the given rank counts, returning
/// `(ranks, seconds)` pairs; speedups are relative to the first entry.
pub fn scaling_sweep(
    snap: &Snapshot,
    cfg: &SamplingConfig,
    rank_counts: &[usize],
) -> Vec<RankTiming> {
    rank_counts
        .iter()
        .map(|&r| run_with_ranks(snap, cfg, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_core::pipeline::{CubeMethod, PointMethod};
    use sickle_field::Grid3;

    fn snapshot() -> Snapshot {
        let grid = Grid3::new(32, 32, 32, 1.0, 1.0, 1.0);
        let q: Vec<f64> = (0..grid.len())
            .map(|i| {
                ((i * 2654435761) % 1000) as f64 * 0.001 + if i % 211 == 0 { 5.0 } else { 0.0 }
            })
            .collect();
        Snapshot::new(grid, 0.0).with_var("q", q)
    }

    fn config() -> SamplingConfig {
        SamplingConfig {
            hypercubes: CubeMethod::Random,
            num_hypercubes: 16,
            cube_edge: 8,
            method: PointMethod::MaxEnt {
                num_clusters: 5,
                bins: 32,
            },
            num_samples: 51,
            cluster_var: "q".to_string(),
            feature_vars: vec!["q".to_string()],
            seed: 3,
            temporal: sickle_core::pipeline::TemporalMethod::All,
        }
    }

    #[test]
    fn ranks_partition_cubes_evenly() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        assert_eq!(t.ranks, 4);
        assert_eq!(t.cubes_per_rank, vec![4, 4, 4, 4]);
        assert_eq!(t.points_out, 16 * 51);
    }

    #[test]
    fn more_ranks_than_cubes_leaves_idle_ranks() {
        let mut cfg = config();
        cfg.num_hypercubes = 3;
        let t = run_with_ranks(&snapshot(), &cfg, 8);
        let idle = t.cubes_per_rank.iter().filter(|&&c| c == 0).count();
        assert_eq!(idle, 5, "5 ranks must be starved: {:?}", t.cubes_per_rank);
    }

    #[test]
    fn results_independent_of_rank_count() {
        // The same cubes and seeds produce the same sample counts no matter
        // how the work is partitioned.
        let snap = snapshot();
        let cfg = config();
        let t1 = run_with_ranks(&snap, &cfg, 1);
        let t4 = run_with_ranks(&snap, &cfg, 4);
        assert_eq!(t1.points_out, t4.points_out);
    }

    #[test]
    fn sweep_returns_all_rank_counts() {
        let snap = snapshot();
        let cfg = config();
        let sweep = scaling_sweep(&snap, &cfg, &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        assert!(sweep.iter().all(|t| t.elapsed_secs > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_with_ranks(&snapshot(), &config(), 0);
    }

    #[test]
    fn per_rank_seconds_are_recorded() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        assert_eq!(t.rank_secs.len(), 4);
        assert!(t.rank_secs.iter().all(|&s| s >= 0.0));
        // The whole-run wall time includes serial phase 1, so it bounds the
        // slowest rank's phase-2 time from above.
        assert!(t.slowest_rank_secs() <= t.elapsed_secs);
    }

    #[test]
    fn imbalance_is_at_least_one_and_sane() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        let ratio = t.imbalance();
        assert!(ratio >= 1.0 - 1e-12, "imbalance {ratio}");
        // slowest/mean can never exceed the rank count.
        assert!(ratio <= t.ranks as f64 + 1e-12, "imbalance {ratio}");
    }

    #[test]
    fn imbalance_of_empty_timing_is_one() {
        let t = RankTiming {
            ranks: 0,
            elapsed_secs: 0.0,
            rank_secs: Vec::new(),
            cubes_per_rank: Vec::new(),
            points_out: 0,
        };
        assert_eq!(t.imbalance(), 1.0);
    }

    #[test]
    fn starved_ranks_skew_imbalance() {
        // 3 cubes on 8 ranks: 5 ranks do nothing, so the critical path is
        // well above the mean (unless timings are below clock resolution).
        let mut cfg = config();
        cfg.num_hypercubes = 3;
        let t = run_with_ranks(&snapshot(), &cfg, 8);
        if t.mean_rank_secs() > 0.0 {
            assert!(t.imbalance() >= 1.0);
        }
    }
}
