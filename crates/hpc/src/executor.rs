//! Real threaded rank executor for the sampling pipeline, with fault
//! tolerance.
//!
//! Mirrors `srun -n R python subsample.py`: the selected hypercubes of a
//! snapshot are dealt round-robin to `R` ranks; each rank processes its
//! share on a dedicated single-thread rayon pool (so one rank ≡ one core,
//! as in the paper's CPU sampling runs), and the run time is the slowest
//! rank's time.
//!
//! Failures (injected via [`crate::fault::FaultInjector`], or any future
//! real transport) are handled by retry with backoff and work
//! redistribution: a dead rank's unfinished cubes are re-dealt round-robin
//! to the survivors, and corrupted cube results are detected by output
//! validation and re-queued. Because every `(snapshot, cube)` pair draws
//! from its own SplitMix64 RNG stream
//! ([`sickle_core::pipeline::derive_rng`]), the recovered output is
//! **bit-identical** to the failure-free run no matter which rank finally
//! processes each cube — the determinism contract of DESIGN.md §9.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sickle_core::pipeline::{derive_rng, SamplingConfig, SamplingOutput, SamplingStats};
use sickle_field::{Dataset, SampleSet, Snapshot, Tiling};

use crate::fault::{FaultAction, FaultInjector};

/// Timing result of one ranked run.
#[derive(Clone, Debug)]
pub struct RankTiming {
    /// Number of ranks used.
    pub ranks: usize,
    /// Wall-clock seconds for the whole run (serial phase 1 + parallel
    /// phase 2 + any retry rounds, i.e. bounded below by the slowest rank).
    pub elapsed_secs: f64,
    /// Busy seconds of each rank's phase-2 work, indexed by rank (summed
    /// across retry rounds).
    pub rank_secs: Vec<f64>,
    /// Hypercubes successfully contributed per rank.
    pub cubes_per_rank: Vec<usize>,
    /// Total points retained.
    pub points_out: usize,
    /// Retry rounds needed beyond the first attempt (0 = failure-free).
    pub retry_rounds: usize,
    /// Faults that fired during the run.
    pub faults_injected: usize,
    /// Ranks that died (fail-stop) during the run.
    pub failed_ranks: Vec<usize>,
}

impl RankTiming {
    /// Phase-2 seconds of the slowest rank (0 when no ranks ran).
    pub fn slowest_rank_secs(&self) -> f64 {
        self.rank_secs
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(0.0, f64::max)
    }

    /// Mean phase-2 seconds across ranks.
    pub fn mean_rank_secs(&self) -> f64 {
        if self.rank_secs.is_empty() {
            0.0
        } else {
            self.rank_secs.iter().sum::<f64>() / self.rank_secs.len() as f64
        }
    }

    /// Load-imbalance ratio: slowest rank / mean rank. 1.0 means perfectly
    /// balanced; 2.0 means the critical rank worked twice the average.
    /// Returns 1.0 when the run is too short to measure or the timings are
    /// degenerate (no ranks, zero or non-finite seconds) — never NaN.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_rank_secs();
        if !mean.is_finite() || mean <= 0.0 {
            1.0
        } else {
            self.slowest_rank_secs() / mean
        }
    }
}

/// Retry/backoff policy for failed ranks and corrupted cube results.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry rounds allowed after the first attempt.
    pub max_rounds: usize,
    /// Backoff before the first retry round.
    pub backoff: Duration,
    /// Backoff multiplier per further round.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_rounds: 3,
            backoff: Duration::from_millis(5),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry round `round` (1-based).
    fn backoff_for(&self, round: usize) -> Duration {
        let scale = self.multiplier.powi(round.saturating_sub(1) as i32);
        Duration::from_secs_f64((self.backoff.as_secs_f64() * scale).min(60.0))
    }
}

/// Why a resilient run could not complete.
#[derive(Clone, Debug)]
pub enum ExecutorError {
    /// The retry budget ran out with cubes still undone.
    RetriesExhausted {
        /// Cube ids still undone.
        undone: Vec<usize>,
        /// Rounds executed (first attempt + retries).
        rounds: usize,
    },
    /// Every rank died; nobody is left to take the undone work.
    AllRanksFailed {
        /// Cube ids still undone.
        undone: Vec<usize>,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorError::RetriesExhausted { undone, rounds } => write!(
                f,
                "retry budget exhausted after {rounds} rounds; {} cubes undone",
                undone.len()
            ),
            ExecutorError::AllRanksFailed { undone } => {
                write!(f, "all ranks failed; {} cubes undone", undone.len())
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Result of a resilient ranked run: the recovered sample sets (in phase-1
/// selection order, bit-identical to a failure-free run) plus timing.
#[derive(Clone, Debug)]
pub struct ExecutorOutput {
    /// One sample set per selected hypercube, in selection order.
    pub sets: Vec<SampleSet>,
    /// Timing and fault accounting.
    pub timing: RankTiming,
}

/// Outcome of one rank's worklist in one round.
struct RankOutcome {
    rank: usize,
    completed: Vec<(usize, SampleSet)>,
    died: bool,
    secs: f64,
}

/// A cube result is valid when every retained index addresses a real grid
/// point. Poisoned (silently corrupted) results fail this check and are
/// re-queued.
fn validate(set: &SampleSet, grid_points: usize) -> bool {
    set.indices.iter().all(|&i| i < grid_points)
}

/// Runs phase 1 + phase 2 for one snapshot with `ranks` worker threads,
/// surviving injected faults.
///
/// Phase 1 (cube selection) runs on the calling thread — it is the serial
/// fraction, as in the reference implementation where rank 0 broadcasts the
/// selection. Phase 2 is distributed; failed ranks' unfinished cubes are
/// re-dealt to survivors with backoff, and corrupted results are detected
/// and re-queued. The returned sets are bit-identical to a failure-free
/// run with any rank count (and to [`sickle_core::pipeline::run_snapshot`]).
///
/// # Errors
/// [`ExecutorError`] when every rank died or the retry budget ran out with
/// cubes still undone.
///
/// # Panics
/// Panics if `ranks == 0` or a rank thread panics.
pub fn run_resilient(
    snap: &Snapshot,
    snapshot_index: usize,
    cfg: &SamplingConfig,
    ranks: usize,
    injector: &FaultInjector,
    policy: &RetryPolicy,
) -> Result<ExecutorOutput, ExecutorError> {
    assert!(ranks > 0, "need at least one rank");
    let _run = sickle_obs::span!("hpc.run_with_ranks", ranks = ranks);
    let t0 = Instant::now();
    let fired_before = injector.fired();
    let tiling = Tiling::cubic(snap.grid, cfg.cube_edge);
    let count = cfg.num_hypercubes.min(tiling.len());
    let mut rng = derive_rng(cfg.seed, snapshot_index, usize::MAX);
    let selector = cfg.hypercubes.build();
    let cube_ids = {
        let _p1 = sickle_obs::span!("hpc.phase1.select", tiles = tiling.len(), keep = count);
        selector.select(&tiling, snap, &cfg.cluster_var, count, &mut rng)
    };
    let (vars, cluster_col) = cfg.extraction_vars();
    let grid_points = snap.grid.len();

    let mut alive: Vec<usize> = (0..ranks).collect();
    let mut pending: Vec<usize> = cube_ids.clone();
    let mut done: HashMap<usize, SampleSet> = HashMap::with_capacity(cube_ids.len());
    let mut rank_secs = vec![0.0f64; ranks];
    let mut cubes_per_rank = vec![0usize; ranks];
    let mut failed_ranks: Vec<usize> = Vec::new();
    let mut round = 0usize;

    loop {
        let _round_span = sickle_obs::span!("hpc.round", cubes = pending.len());
        // Round-robin deal over the surviving ranks, like MPI rank striding.
        let mut assignments: Vec<(usize, Vec<usize>)> =
            alive.iter().map(|&r| (r, Vec::new())).collect();
        let lanes = assignments.len();
        for (i, &cube) in pending.iter().enumerate() {
            assignments[i % lanes].1.push(cube);
        }

        // Rank threads start with empty span stacks; parent them explicitly.
        let parent = sickle_obs::current_span_id();
        let outcomes: Vec<RankOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|(rank, my_cubes)| {
                    let rank = *rank;
                    let tiling = &tiling;
                    let vars = &vars;
                    scope.spawn(move || {
                        let _rank_span = sickle_obs::child_span!(
                            parent,
                            "hpc.rank",
                            rank = rank,
                            cubes = my_cubes.len()
                        );
                        let rank_t0 = Instant::now();
                        // One rank = one core: confine rayon to one thread.
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(1)
                            .build()
                            .expect("failed to build rank pool");
                        let mut completed = Vec::with_capacity(my_cubes.len());
                        let mut died = false;
                        pool.install(|| {
                            let sampler = cfg.method.build();
                            for &cube_id in my_cubes {
                                let poison = match injector.on_cube(rank) {
                                    FaultAction::Proceed => false,
                                    FaultAction::Kill => {
                                        sickle_obs::counter!("fault.injected", 1usize);
                                        died = true;
                                        break;
                                    }
                                    FaultAction::Delay(d) => {
                                        sickle_obs::counter!("fault.injected", 1usize);
                                        std::thread::sleep(d);
                                        false
                                    }
                                    FaultAction::Poison => {
                                        sickle_obs::counter!("fault.injected", 1usize);
                                        true
                                    }
                                    // Connection/process faults belong to the
                                    // serve data plane; a rank has no socket
                                    // to cut and fail-stop is `Kill`.
                                    FaultAction::Drop | FaultAction::Die => false,
                                };
                                let (features, indices) = tiling.extract(snap, cube_id, vars);
                                let mut rng = derive_rng(cfg.seed, snapshot_index, cube_id);
                                let picked = sampler.select(
                                    &features,
                                    cluster_col,
                                    cfg.num_samples,
                                    &mut rng,
                                );
                                let sel = features.gather(&picked);
                                let idx: Vec<usize> = picked.iter().map(|&p| indices[p]).collect();
                                let mut set = SampleSet::new(sel, idx, snap.time, snapshot_index)
                                    .with_hypercube(cube_id);
                                if poison {
                                    // Silent corruption: an index past the
                                    // grid, caught by output validation.
                                    if let Some(i0) = set.indices.first_mut() {
                                        *i0 = usize::MAX;
                                    }
                                }
                                completed.push((cube_id, set));
                            }
                        });
                        RankOutcome {
                            rank,
                            completed,
                            died,
                            secs: rank_t0.elapsed().as_secs_f64(),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });

        for outcome in outcomes {
            rank_secs[outcome.rank] += outcome.secs;
            if outcome.died {
                alive.retain(|&r| r != outcome.rank);
                failed_ranks.push(outcome.rank);
                sickle_obs::warn!(
                    "hpc",
                    "rank {} died; redistributing its unfinished cubes",
                    outcome.rank
                );
            }
            for (cube_id, set) in outcome.completed {
                if validate(&set, grid_points) {
                    cubes_per_rank[outcome.rank] += 1;
                    done.insert(cube_id, set);
                } else {
                    sickle_obs::counter!("fault.detected", 1usize);
                    sickle_obs::warn!(
                        "hpc",
                        "rank {} produced a corrupt result for cube {cube_id}; re-queueing",
                        outcome.rank
                    );
                }
            }
        }

        pending = cube_ids
            .iter()
            .copied()
            .filter(|id| !done.contains_key(id))
            .collect();
        if pending.is_empty() {
            break;
        }
        round += 1;
        if alive.is_empty() {
            return Err(ExecutorError::AllRanksFailed { undone: pending });
        }
        if round > policy.max_rounds {
            return Err(ExecutorError::RetriesExhausted {
                undone: pending,
                rounds: round,
            });
        }
        sickle_obs::counter!("retry.count", pending.len());
        let backoff = policy.backoff_for(round);
        sickle_obs::info!(
            "hpc",
            "retry round {round}: {} cubes on {} survivors after {:?} backoff",
            pending.len(),
            alive.len(),
            backoff
        );
        let _retry_span = sickle_obs::span!("hpc.retry.round", cubes = pending.len());
        std::thread::sleep(backoff);
    }

    // Reassemble in phase-1 selection order: the canonical output order,
    // independent of which rank computed which cube in which round.
    let sets: Vec<SampleSet> = cube_ids
        .iter()
        .map(|id| done.remove(id).expect("completed cube missing"))
        .collect();
    let points_out = sets.iter().map(SampleSet::len).sum();
    let timing = RankTiming {
        ranks,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        rank_secs,
        cubes_per_rank,
        points_out,
        retry_rounds: round,
        faults_injected: injector.fired() - fired_before,
        failed_ranks,
    };
    sickle_obs::gauge!("hpc.imbalance", timing.imbalance());
    sickle_obs::counter!("hpc.points_out", points_out);
    Ok(ExecutorOutput { sets, timing })
}

/// Runs phase 1 + phase 2 for one snapshot with `ranks` worker threads and
/// no fault injection (the original fault-free entry point).
///
/// # Panics
/// Panics if `ranks == 0`.
pub fn run_with_ranks(snap: &Snapshot, cfg: &SamplingConfig, ranks: usize) -> RankTiming {
    run_resilient(
        snap,
        0,
        cfg,
        ranks,
        &FaultInjector::none(),
        &RetryPolicy::default(),
    )
    .expect("fault-free run cannot fail")
    .timing
}

/// Runs the whole temporally-selected dataset through the ranked executor —
/// the multi-rank analogue of [`sickle_core::pipeline::run_dataset`], whose
/// output it matches bit-for-bit for any rank count and any recoverable
/// fault plan.
///
/// # Errors
/// Propagates [`ExecutorError`] from the first snapshot that cannot finish.
///
/// # Panics
/// Panics if `ranks == 0`.
pub fn run_dataset_with_ranks(
    dataset: &Dataset,
    cfg: &SamplingConfig,
    ranks: usize,
    injector: &FaultInjector,
    policy: &RetryPolicy,
) -> Result<SamplingOutput, ExecutorError> {
    let _run = sickle_obs::span!(
        "hpc.run_dataset",
        snapshots = dataset.num_snapshots(),
        ranks = ranks
    );
    let t0 = Instant::now();
    let keep = sickle_core::pipeline::temporal_selection(dataset, cfg);
    let mut sets: Vec<Vec<SampleSet>> = Vec::with_capacity(keep.len());
    for &i in &keep {
        let out = run_resilient(&dataset.snapshots[i], i, cfg, ranks, injector, policy)?;
        sets.push(out.sets);
    }
    let cube_points = cfg
        .cube_edge
        .pow(if dataset.grid().nz == 1 { 2 } else { 3 });
    let cubes_selected: usize = sets.iter().map(Vec::len).sum();
    let stats = SamplingStats {
        points_in: cubes_selected * cube_points,
        points_out: sets.iter().flatten().map(SampleSet::len).sum(),
        cubes_selected,
        phase1_points: dataset.grid().len() * keep.len(),
        elapsed_secs: t0.elapsed().as_secs_f64(),
    };
    Ok(SamplingOutput {
        sets,
        stats,
        config: cfg.clone(),
    })
}

/// Runs a strong-scaling sweep over the given rank counts, returning
/// `(ranks, seconds)` pairs; speedups are relative to the first entry.
pub fn scaling_sweep(
    snap: &Snapshot,
    cfg: &SamplingConfig,
    rank_counts: &[usize],
) -> Vec<RankTiming> {
    rank_counts
        .iter()
        .map(|&r| run_with_ranks(snap, cfg, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use sickle_core::pipeline::{CubeMethod, PointMethod};
    use sickle_field::Grid3;

    fn snapshot() -> Snapshot {
        let grid = Grid3::new(32, 32, 32, 1.0, 1.0, 1.0);
        let q: Vec<f64> = (0..grid.len())
            .map(|i| {
                ((i * 2654435761) % 1000) as f64 * 0.001 + if i % 211 == 0 { 5.0 } else { 0.0 }
            })
            .collect();
        Snapshot::new(grid, 0.0).with_var("q", q)
    }

    fn config() -> SamplingConfig {
        SamplingConfig {
            hypercubes: CubeMethod::Random,
            num_hypercubes: 16,
            cube_edge: 8,
            method: PointMethod::MaxEnt {
                num_clusters: 5,
                bins: 32,
            },
            num_samples: 51,
            cluster_var: "q".to_string(),
            feature_vars: vec!["q".to_string()],
            seed: 3,
            temporal: sickle_core::pipeline::TemporalMethod::All,
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_rounds: 4,
            backoff: Duration::from_millis(1),
            multiplier: 1.0,
        }
    }

    #[test]
    fn ranks_partition_cubes_evenly() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        assert_eq!(t.ranks, 4);
        assert_eq!(t.cubes_per_rank, vec![4, 4, 4, 4]);
        assert_eq!(t.points_out, 16 * 51);
        assert_eq!(t.retry_rounds, 0);
        assert_eq!(t.faults_injected, 0);
        assert!(t.failed_ranks.is_empty());
    }

    #[test]
    fn more_ranks_than_cubes_leaves_idle_ranks() {
        let mut cfg = config();
        cfg.num_hypercubes = 3;
        let t = run_with_ranks(&snapshot(), &cfg, 8);
        let idle = t.cubes_per_rank.iter().filter(|&&c| c == 0).count();
        assert_eq!(idle, 5, "5 ranks must be starved: {:?}", t.cubes_per_rank);
    }

    #[test]
    fn results_independent_of_rank_count() {
        // The same cubes and seeds produce bit-identical sample sets no
        // matter how the work is partitioned.
        let snap = snapshot();
        let cfg = config();
        let policy = RetryPolicy::default();
        let base = run_resilient(&snap, 0, &cfg, 1, &FaultInjector::none(), &policy).unwrap();
        for ranks in [2, 4, 8] {
            let out =
                run_resilient(&snap, 0, &cfg, ranks, &FaultInjector::none(), &policy).unwrap();
            assert_eq!(out.sets.len(), base.sets.len());
            for (a, b) in base.sets.iter().zip(&out.sets) {
                assert_eq!(a.hypercube, b.hypercube);
                assert_eq!(a.indices, b.indices);
                assert_eq!(a.features.data, b.features.data);
            }
        }
    }

    #[test]
    fn killed_ranks_work_is_redistributed_bit_identically() {
        let snap = snapshot();
        let cfg = config();
        let baseline =
            run_resilient(&snap, 0, &cfg, 8, &FaultInjector::none(), &fast_retry()).unwrap();
        // Kill 2 of 8 ranks mid-snapshot (each after one processed cube).
        let plan = FaultPlan::parse("kill@2:1,kill@5:1").unwrap();
        let out = run_resilient(&snap, 0, &cfg, 8, &FaultInjector::new(plan), &fast_retry())
            .expect("2 of 8 ranks killed must still complete");
        assert_eq!(out.timing.failed_ranks, vec![2, 5]);
        assert!(out.timing.retry_rounds >= 1);
        assert_eq!(out.timing.faults_injected, 2);
        assert_eq!(out.sets.len(), baseline.sets.len());
        for (a, b) in baseline.sets.iter().zip(&out.sets) {
            assert_eq!(a.hypercube, b.hypercube);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.features.data, b.features.data);
        }
    }

    #[test]
    fn poisoned_cube_is_detected_and_retried() {
        let snap = snapshot();
        let cfg = config();
        let baseline =
            run_resilient(&snap, 0, &cfg, 4, &FaultInjector::none(), &fast_retry()).unwrap();
        let plan = FaultPlan::parse("poison@1:0").unwrap();
        let out = run_resilient(&snap, 0, &cfg, 4, &FaultInjector::new(plan), &fast_retry())
            .expect("poisoned cube must be retried");
        assert!(out.timing.retry_rounds >= 1);
        assert!(out.timing.failed_ranks.is_empty());
        for (a, b) in baseline.sets.iter().zip(&out.sets) {
            assert_eq!(a.indices, b.indices);
        }
    }

    #[test]
    fn delay_faults_change_timing_only() {
        let snap = snapshot();
        let cfg = config();
        let baseline =
            run_resilient(&snap, 0, &cfg, 4, &FaultInjector::none(), &fast_retry()).unwrap();
        let plan = FaultPlan::parse("delay@0:0:20").unwrap();
        let out =
            run_resilient(&snap, 0, &cfg, 4, &FaultInjector::new(plan), &fast_retry()).unwrap();
        assert_eq!(out.timing.retry_rounds, 0);
        assert_eq!(out.timing.faults_injected, 1);
        for (a, b) in baseline.sets.iter().zip(&out.sets) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.features.data, b.features.data);
        }
    }

    #[test]
    fn all_ranks_dead_is_an_error() {
        let plan = FaultPlan::parse("kill@0:0,kill@1:0").unwrap();
        let err = run_resilient(
            &snapshot(),
            0,
            &config(),
            2,
            &FaultInjector::new(plan),
            &fast_retry(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecutorError::AllRanksFailed { ref undone } if !undone.is_empty()));
        assert!(err.to_string().contains("all ranks failed"));
    }

    #[test]
    fn sweep_returns_all_rank_counts() {
        let snap = snapshot();
        let cfg = config();
        let sweep = scaling_sweep(&snap, &cfg, &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        assert!(sweep.iter().all(|t| t.elapsed_secs > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_with_ranks(&snapshot(), &config(), 0);
    }

    #[test]
    fn per_rank_seconds_are_recorded() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        assert_eq!(t.rank_secs.len(), 4);
        assert!(t.rank_secs.iter().all(|&s| s >= 0.0));
        // The whole-run wall time includes serial phase 1, so it bounds the
        // slowest rank's phase-2 time from above.
        assert!(t.slowest_rank_secs() <= t.elapsed_secs);
    }

    #[test]
    fn imbalance_is_at_least_one_and_sane() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        let ratio = t.imbalance();
        assert!(ratio >= 1.0 - 1e-12, "imbalance {ratio}");
        // slowest/mean can never exceed the rank count.
        assert!(ratio <= t.ranks as f64 + 1e-12, "imbalance {ratio}");
    }

    #[test]
    fn imbalance_of_empty_timing_is_one() {
        let t = RankTiming {
            ranks: 0,
            elapsed_secs: 0.0,
            rank_secs: Vec::new(),
            cubes_per_rank: Vec::new(),
            points_out: 0,
            retry_rounds: 0,
            faults_injected: 0,
            failed_ranks: Vec::new(),
        };
        assert_eq!(t.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_never_nan_even_on_degenerate_timings() {
        // Zero-rank, zero-second, and non-finite rank timings must all
        // produce a finite ratio (the fig7 CSV column), never NaN.
        for rank_secs in [
            Vec::new(),
            vec![0.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![f64::INFINITY, 1.0],
        ] {
            let t = RankTiming {
                ranks: rank_secs.len(),
                elapsed_secs: 0.0,
                rank_secs,
                cubes_per_rank: Vec::new(),
                points_out: 0,
                retry_rounds: 0,
                faults_injected: 0,
                failed_ranks: Vec::new(),
            };
            assert!(t.imbalance().is_finite(), "imbalance {}", t.imbalance());
        }
    }

    #[test]
    fn starved_ranks_skew_imbalance() {
        // 3 cubes on 8 ranks: 5 ranks do nothing, so the critical path is
        // well above the mean (unless timings are below clock resolution).
        let mut cfg = config();
        cfg.num_hypercubes = 3;
        let t = run_with_ranks(&snapshot(), &cfg, 8);
        if t.mean_rank_secs() > 0.0 {
            assert!(t.imbalance() >= 1.0);
        }
    }
}
