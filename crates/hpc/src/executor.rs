//! Real threaded rank executor for the sampling pipeline.
//!
//! Mirrors `srun -n R python subsample.py`: the selected hypercubes of a
//! snapshot are dealt round-robin to `R` ranks; each rank processes its
//! share on a dedicated single-thread rayon pool (so one rank ≡ one core,
//! as in the paper's CPU sampling runs), and the run time is the slowest
//! rank's time.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sickle_core::pipeline::SamplingConfig;
use sickle_field::{SampleSet, Snapshot, Tiling};

/// Timing result of one ranked run.
#[derive(Clone, Debug)]
pub struct RankTiming {
    /// Number of ranks used.
    pub ranks: usize,
    /// Wall-clock seconds (slowest rank).
    pub elapsed_secs: f64,
    /// Hypercubes processed per rank.
    pub cubes_per_rank: Vec<usize>,
    /// Total points retained.
    pub points_out: usize,
}

/// Runs phase 1 + phase 2 for one snapshot with `ranks` worker threads.
///
/// Phase 1 (cube selection) runs on the calling thread — it is the serial
/// fraction, as in the reference implementation where rank 0 broadcasts the
/// selection. Phase 2 is distributed.
///
/// # Panics
/// Panics if `ranks == 0`.
pub fn run_with_ranks(snap: &Snapshot, cfg: &SamplingConfig, ranks: usize) -> RankTiming {
    assert!(ranks > 0, "need at least one rank");
    let t0 = Instant::now();
    let tiling = Tiling::cubic(snap.grid, cfg.cube_edge);
    let count = cfg.num_hypercubes.min(tiling.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let selector = cfg.hypercubes.build();
    let cube_ids = selector.select(&tiling, snap, &cfg.cluster_var, count, &mut rng);
    let (vars, cluster_col) = cfg.extraction_vars();

    // Round-robin deal, like MPI rank striding.
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); ranks];
    for (i, &cube) in cube_ids.iter().enumerate() {
        assignments[i % ranks].push(cube);
    }
    let cubes_per_rank: Vec<usize> = assignments.iter().map(Vec::len).collect();

    let results: Vec<Vec<SampleSet>> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .map(|my_cubes| {
                let tiling = &tiling;
                let vars = &vars;
                scope.spawn(move || {
                    // One rank = one core: confine rayon to a single thread.
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(1)
                        .build()
                        .expect("failed to build rank pool");
                    pool.install(|| {
                        let sampler = cfg.method.build();
                        my_cubes
                            .iter()
                            .map(|&cube_id| {
                                let (features, indices) = tiling.extract(snap, cube_id, vars);
                                let mut rng = StdRng::seed_from_u64(
                                    cfg.seed ^ (cube_id as u64).wrapping_mul(0x9E37_79B9),
                                );
                                let picked = sampler.select(
                                    &features,
                                    cluster_col,
                                    cfg.num_samples,
                                    &mut rng,
                                );
                                let sel = features.gather(&picked);
                                let idx: Vec<usize> = picked.iter().map(|&p| indices[p]).collect();
                                SampleSet::new(sel, idx, snap.time, 0).with_hypercube(cube_id)
                            })
                            .collect::<Vec<_>>()
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    let points_out = results.iter().flatten().map(SampleSet::len).sum();
    RankTiming {
        ranks,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        cubes_per_rank,
        points_out,
    }
}

/// Runs a strong-scaling sweep over the given rank counts, returning
/// `(ranks, seconds)` pairs; speedups are relative to the first entry.
pub fn scaling_sweep(
    snap: &Snapshot,
    cfg: &SamplingConfig,
    rank_counts: &[usize],
) -> Vec<RankTiming> {
    rank_counts
        .iter()
        .map(|&r| run_with_ranks(snap, cfg, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_core::pipeline::{CubeMethod, PointMethod};
    use sickle_field::Grid3;

    fn snapshot() -> Snapshot {
        let grid = Grid3::new(32, 32, 32, 1.0, 1.0, 1.0);
        let q: Vec<f64> = (0..grid.len())
            .map(|i| {
                ((i * 2654435761) % 1000) as f64 * 0.001 + if i % 211 == 0 { 5.0 } else { 0.0 }
            })
            .collect();
        Snapshot::new(grid, 0.0).with_var("q", q)
    }

    fn config() -> SamplingConfig {
        SamplingConfig {
            hypercubes: CubeMethod::Random,
            num_hypercubes: 16,
            cube_edge: 8,
            method: PointMethod::MaxEnt {
                num_clusters: 5,
                bins: 32,
            },
            num_samples: 51,
            cluster_var: "q".to_string(),
            feature_vars: vec!["q".to_string()],
            seed: 3,
            temporal: sickle_core::pipeline::TemporalMethod::All,
        }
    }

    #[test]
    fn ranks_partition_cubes_evenly() {
        let t = run_with_ranks(&snapshot(), &config(), 4);
        assert_eq!(t.ranks, 4);
        assert_eq!(t.cubes_per_rank, vec![4, 4, 4, 4]);
        assert_eq!(t.points_out, 16 * 51);
    }

    #[test]
    fn more_ranks_than_cubes_leaves_idle_ranks() {
        let mut cfg = config();
        cfg.num_hypercubes = 3;
        let t = run_with_ranks(&snapshot(), &cfg, 8);
        let idle = t.cubes_per_rank.iter().filter(|&&c| c == 0).count();
        assert_eq!(idle, 5, "5 ranks must be starved: {:?}", t.cubes_per_rank);
    }

    #[test]
    fn results_independent_of_rank_count() {
        // The same cubes and seeds produce the same sample counts no matter
        // how the work is partitioned.
        let snap = snapshot();
        let cfg = config();
        let t1 = run_with_ranks(&snap, &cfg, 1);
        let t4 = run_with_ranks(&snap, &cfg, 4);
        assert_eq!(t1.points_out, t4.points_out);
    }

    #[test]
    fn sweep_returns_all_rank_counts() {
        let snap = snapshot();
        let cfg = config();
        let sweep = scaling_sweep(&snap, &cfg, &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        assert!(sweep.iter().all(|t| t.elapsed_secs > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_with_ranks(&snapshot(), &config(), 0);
    }
}
