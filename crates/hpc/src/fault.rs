//! Deterministic fault injection for the rank executor.
//!
//! A [`FaultPlan`] is a replayable list of faults, each pinned to a
//! `(rank, k)` coordinate: the fault fires when rank `rank` is about to
//! process the `k`-th hypercube of its lifetime in one executor run (`k`
//! counts across retry rounds, 0-based). Three kinds model the failure
//! modes the paper's Frontier runs see:
//!
//! - [`FaultKind::Kill`] — fail-stop: the rank dies before the cube and
//!   never comes back; its unfinished cubes are re-dealt to survivors.
//! - [`FaultKind::Delay`] — a straggler: the rank sleeps before the cube
//!   (node flakiness, I/O stalls). Results are unaffected; only timing.
//! - [`FaultKind::Poison`] — silent corruption: the cube's result is
//!   produced but wrong (an out-of-range point index). The executor's
//!   output validation detects it and re-queues the cube.
//! - [`FaultKind::Drop`] — a severed connection: the `sickle-store` serve
//!   plane interprets the coordinate as `(connection, k-th request)` and
//!   cuts the socket mid-response, exercising the client's
//!   reconnect-and-retry path. The rank executor treats it as a no-op.
//! - [`FaultKind::Die`] — process death: the serve plane exits the whole
//!   server process (no response, no trace flush) when the coordinate's
//!   request arrives, exercising cluster failover to replica servers. The
//!   rank executor treats it as a no-op (rank fail-stop is `Kill`).
//!
//! Every fault fires **at most once**, so any plan that leaves at least one
//! rank alive eventually lets all cubes complete — the determinism contract
//! (see DESIGN.md §9) then guarantees a bit-identical [`sickle_field::SampleSet`].
//!
//! Plans are built in code, generated from a seed ([`FaultPlan::random`]),
//! or parsed from the `SICKLE_FAULT_PLAN` environment variable:
//!
//! ```text
//! SICKLE_FAULT_PLAN="kill@2:1,delay@0:3:50,poison@1:0,drop@0:2,die@0:4"
//! #                  kind@rank:cube[:millis]   (drop and die read rank:cube
//! #                                             as conn:request)
//! ```

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What happens to a rank at its fault coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop: the rank dies before processing the cube.
    Kill,
    /// Straggler: the rank sleeps this many milliseconds, then proceeds.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Silent corruption: the cube result is produced but invalid.
    Poison,
    /// Severed connection: the serve data plane cuts the socket
    /// mid-response at this `(connection, request)` coordinate.
    Drop,
    /// Process death: the serve data plane exits the whole server process
    /// when this `(connection, request)` coordinate's request arrives.
    Die,
}

/// One fault pinned to a `(rank, k-th lifetime cube)` coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Rank the fault targets.
    pub rank: usize,
    /// 0-based index of the cube in the rank's lifetime processing order.
    pub at_cube: usize,
    /// Fault kind.
    pub kind: FaultKind,
}

/// A replayable set of faults for one executor run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults; at most one fires per `(rank, at_cube)` coordinate.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, the executor behaves exactly as before.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Number of ranks this plan kills.
    pub fn kills(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::Kill)
            .map(|f| f.rank)
            .collect::<HashSet<_>>()
            .len()
    }

    /// True when running the plan on `ranks` ranks can still finish: at
    /// least one rank is never killed.
    pub fn recoverable(&self, ranks: usize) -> bool {
        self.kills() < ranks
    }

    /// Generates a seeded, replayable plan for `ranks` ranks that is always
    /// [`recoverable`](Self::recoverable): up to `ranks - 1` kills plus a
    /// few delays and poisons in the first `max_cube` lifetime slots.
    pub fn random(seed: u64, ranks: usize, max_cube: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        if ranks > 1 {
            let kills = rng.gen_range(0..ranks); // 0..=ranks-1
            let mut victims: Vec<usize> = (0..ranks).collect();
            for k in 0..kills {
                let pick = rng.gen_range(0..victims.len());
                faults.push(Fault {
                    rank: victims.swap_remove(pick),
                    at_cube: rng.gen_range(0..max_cube.max(1)),
                    kind: FaultKind::Kill,
                });
                let _ = k;
            }
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let kind = if rng.gen_range(0..2) == 0 {
                FaultKind::Poison
            } else {
                FaultKind::Delay {
                    millis: rng.gen_range(1..5),
                }
            };
            faults.push(Fault {
                rank: rng.gen_range(0..ranks.max(1)),
                at_cube: rng.gen_range(0..max_cube.max(1)),
                kind,
            });
        }
        FaultPlan { faults }
    }

    /// Parses the `kind@rank:cube[:millis]` comma-separated grammar used by
    /// `SICKLE_FAULT_PLAN` (see the module docs).
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind_str, coord) = entry
                .split_once('@')
                .ok_or_else(|| format!("`{entry}`: expected kind@rank:cube"))?;
            let parts: Vec<&str> = coord.split(':').collect();
            let parse_num = |s: &str, what: &str| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("`{entry}`: bad {what} `{s}`"))
            };
            if parts.len() < 2 {
                return Err(format!("`{entry}`: expected kind@rank:cube"));
            }
            let rank = parse_num(parts[0], "rank")? as usize;
            let at_cube = parse_num(parts[1], "cube")? as usize;
            let kind = match kind_str.trim() {
                "kill" => FaultKind::Kill,
                "poison" => FaultKind::Poison,
                "drop" => FaultKind::Drop,
                "die" => FaultKind::Die,
                "delay" => {
                    let ms = parts
                        .get(2)
                        .map(|s| parse_num(s, "millis"))
                        .transpose()?
                        .unwrap_or(10);
                    FaultKind::Delay { millis: ms }
                }
                other => return Err(format!("`{entry}`: unknown fault kind `{other}`")),
            };
            let max_fields = if matches!(kind, FaultKind::Delay { .. }) {
                3
            } else {
                2
            };
            if parts.len() > max_fields {
                return Err(format!("`{entry}`: too many fields"));
            }
            faults.push(Fault {
                rank,
                at_cube,
                kind,
            });
        }
        Ok(FaultPlan { faults })
    }

    /// Reads a plan from `SICKLE_FAULT_PLAN`; `None` when unset or empty.
    ///
    /// # Errors
    /// Propagates [`parse`](Self::parse) errors for a set-but-malformed value.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("SICKLE_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }
}

/// What the executor must do before processing a cube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: process the cube normally.
    Proceed,
    /// Sleep, then process the cube normally.
    Delay(Duration),
    /// Process the cube but corrupt its result.
    Poison,
    /// Die without processing the cube (or any later one).
    Kill,
    /// Sever the connection mid-response (serve plane only; the rank
    /// executor proceeds normally on this action).
    Drop,
    /// Exit the whole server process immediately (serve plane only; the
    /// rank executor proceeds normally on this action).
    Die,
}

struct InjectorState {
    /// Lifetime cubes processed per rank (grows on demand).
    cube_counts: Vec<usize>,
    /// Plan entries that have not fired yet.
    pending: Vec<Fault>,
    fired: usize,
}

/// Shared run state that replays a [`FaultPlan`] against the executor.
///
/// Thread-safe: rank threads call [`on_cube`](Self::on_cube) concurrently.
/// Each fault fires at most once; the injector tracks per-rank lifetime
/// cube counters across retry rounds.
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Wraps a plan for one executor run.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Mutex::new(InjectorState {
                cube_counts: Vec::new(),
                pending: plan.faults,
                fired: 0,
            }),
        }
    }

    /// An injector that never faults.
    pub fn none() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Called by a rank before it processes its next cube; advances the
    /// rank's lifetime counter and returns the action to take. `Kill` does
    /// not consume the counter slot (the cube was not processed).
    pub fn on_cube(&self, rank: usize) -> FaultAction {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.cube_counts.len() <= rank {
            st.cube_counts.resize(rank + 1, 0);
        }
        let k = st.cube_counts[rank];
        let hit = st
            .pending
            .iter()
            .position(|f| f.rank == rank && f.at_cube == k);
        let action = match hit {
            None => FaultAction::Proceed,
            Some(i) => {
                let fault = st.pending.swap_remove(i);
                st.fired += 1;
                match fault.kind {
                    FaultKind::Kill => FaultAction::Kill,
                    FaultKind::Poison => FaultAction::Poison,
                    FaultKind::Drop => FaultAction::Drop,
                    FaultKind::Die => FaultAction::Die,
                    FaultKind::Delay { millis } => {
                        FaultAction::Delay(Duration::from_millis(millis))
                    }
                }
            }
        };
        if action != FaultAction::Kill {
            st.cube_counts[rank] += 1;
        }
        action
    }

    /// Faults fired so far.
    pub fn fired(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_the_readme_example() {
        let plan = FaultPlan::parse("kill@2:1, delay@0:3:50, poison@1:0").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault {
                    rank: 2,
                    at_cube: 1,
                    kind: FaultKind::Kill
                },
                Fault {
                    rank: 0,
                    at_cube: 3,
                    kind: FaultKind::Delay { millis: 50 }
                },
                Fault {
                    rank: 1,
                    at_cube: 0,
                    kind: FaultKind::Poison
                },
            ]
        );
    }

    #[test]
    fn parse_drop_reads_conn_request_coordinates() {
        let plan = FaultPlan::parse("drop@0:2").unwrap();
        assert_eq!(
            plan.faults,
            vec![Fault {
                rank: 0,
                at_cube: 2,
                kind: FaultKind::Drop
            }]
        );
        // Drop takes no third field, like kill/poison.
        assert!(FaultPlan::parse("drop@0:2:9").is_err());
        // Drop is not a kill: it cannot make a plan unrecoverable.
        assert_eq!(plan.kills(), 0);
        assert!(plan.recoverable(1));
    }

    #[test]
    fn injector_replays_drop_faults() {
        let inj = FaultInjector::new(FaultPlan::parse("drop@1:1").unwrap());
        assert_eq!(inj.on_cube(1), FaultAction::Proceed);
        assert_eq!(inj.on_cube(1), FaultAction::Drop);
        assert_eq!(inj.on_cube(1), FaultAction::Proceed);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn parse_die_reads_conn_request_coordinates() {
        let plan = FaultPlan::parse("die@0:4").unwrap();
        assert_eq!(
            plan.faults,
            vec![Fault {
                rank: 0,
                at_cube: 4,
                kind: FaultKind::Die
            }]
        );
        // Die takes no third field, like kill/poison/drop.
        assert!(FaultPlan::parse("die@0:4:9").is_err());
        // Die is a process-level fault, not a rank kill: plan accounting
        // (kills/recoverable) is about ranks inside one executor run.
        assert_eq!(plan.kills(), 0);
        assert!(plan.recoverable(1));
    }

    #[test]
    fn injector_replays_die_faults_once() {
        let inj = FaultInjector::new(FaultPlan::parse("die@2:1").unwrap());
        assert_eq!(inj.on_cube(2), FaultAction::Proceed);
        assert_eq!(inj.on_cube(2), FaultAction::Die);
        assert_eq!(inj.on_cube(2), FaultAction::Proceed);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn parse_defaults_delay_millis() {
        let plan = FaultPlan::parse("delay@1:2").unwrap();
        assert_eq!(plan.faults[0].kind, FaultKind::Delay { millis: 10 });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("kill@").is_err());
        assert!(FaultPlan::parse("explode@1:2").is_err());
        assert!(FaultPlan::parse("kill@x:2").is_err());
        assert!(FaultPlan::parse("kill@1:2:3").is_err());
        assert!(FaultPlan::parse("poison@1:2:3").is_err());
        assert!(FaultPlan::parse("kill@1").is_err());
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse(" , ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn random_plans_are_replayable_and_recoverable() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed, 4, 8);
            let b = FaultPlan::random(seed, 4, 8);
            assert_eq!(a, b, "seed {seed} not replayable");
            assert!(a.recoverable(4), "seed {seed} kills all ranks: {a:?}");
        }
    }

    #[test]
    fn injector_fires_each_fault_once() {
        let plan = FaultPlan::parse("poison@0:1").unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_cube(0), FaultAction::Proceed); // k = 0
        assert_eq!(inj.on_cube(0), FaultAction::Poison); // k = 1 fires
        assert_eq!(inj.on_cube(0), FaultAction::Proceed); // k = 2
                                                          // The retried cube (lifetime k = 3) does not re-fire.
        assert_eq!(inj.on_cube(0), FaultAction::Proceed);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn kill_does_not_consume_a_cube_slot() {
        let inj = FaultInjector::new(FaultPlan::parse("kill@1:0").unwrap());
        assert_eq!(inj.on_cube(1), FaultAction::Kill);
        // Hypothetical resurrection would resume at the same slot, fault spent.
        assert_eq!(inj.on_cube(1), FaultAction::Proceed);
    }

    #[test]
    fn kills_counts_distinct_ranks() {
        let plan = FaultPlan::parse("kill@1:0,kill@1:2,kill@3:0").unwrap();
        assert_eq!(plan.kills(), 2);
        assert!(plan.recoverable(3));
        assert!(!plan.recoverable(2));
    }
}
