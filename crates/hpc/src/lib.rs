//! # sickle-hpc
//!
//! Strong-scaling machinery for the paper's Fig. 7 (MaxEnt parallel
//! scalability, 1–512 MPI ranks), hardened for the rank loss and node
//! flakiness that are routine at Frontier scale.
//!
//! Three complementary pieces:
//!
//! - [`executor`] — a *real* rank executor: the sampling pipeline's
//!   hypercubes are partitioned over OS threads, each pinned to a
//!   single-thread rayon pool (one "MPI rank" = one core), and wall time is
//!   measured. Valid up to the host's core count; validates the simulator.
//!   Fault-tolerant: dead ranks' cubes are re-dealt to survivors with
//!   backoff, corrupted results are detected and re-queued, and the
//!   recovered output is bit-identical to the failure-free run.
//! - [`fault`] — deterministic, replayable fault injection ([`FaultPlan`]
//!   / [`FaultInjector`]): kill, delay, or poison chosen ranks at chosen
//!   cube indices, seeded or parsed from `SICKLE_FAULT_PLAN`.
//! - [`simulator`] — an α–β performance model of the same computation on a
//!   cluster: per-point compute cost, per-cube overhead, log-tree
//!   all-reduce, and result gather. Reproduces the paper's observed shape —
//!   quasi-linear speedup while every rank holds enough hypercubes, then a
//!   knee and efficiency collapse once the dataset is spread too thin
//!   (SST-P1F4 plateaus near 9× at 32 ranks; SST-P1F100 scales to 64 ranks
//!   and reaches ~171× at 512).

pub mod executor;
pub mod fault;
pub mod simulator;

pub use executor::{
    run_dataset_with_ranks, run_resilient, run_with_ranks, ExecutorError, ExecutorOutput,
    RankTiming, RetryPolicy,
};
pub use fault::{Fault, FaultAction, FaultInjector, FaultKind, FaultPlan};
pub use simulator::{knee_point, ClusterModel, ScalingPoint};
