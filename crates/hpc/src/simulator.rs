//! α–β cluster performance model for strong-scaling prediction beyond the
//! host's core count.
//!
//! The modeled computation is the paper's `subsample.py` on `R` MPI ranks:
//!
//! - **compute**: each rank processes `ceil(C/R)` of the `C` hypercubes
//!   (integer quantization is the knee mechanism — once `C < R` some ranks
//!   idle and speedup saturates at `C`), at `points_per_cube ·
//!   per_point_cost + per_cube_overhead` each;
//! - **serial fraction**: phase-1 cube selection runs on rank 0;
//! - **communication**: a log₂-tree metadata all-reduce
//!   (`α + β·reduce_bytes` per stage) plus a result gather whose volume
//!   grows with the retained samples.
//!
//! Calibrate [`ClusterModel::per_point_cost`] from a measured single-rank
//! run ([`ClusterModel::calibrated`]) to get absolute times; the *shape*
//! (Fig. 7's knee and efficiency collapse) is cost-free.

use serde::{Deserialize, Serialize};

/// Cluster cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Seconds to process one dense point in phase 2 (clustering + binning).
    pub per_point_cost: f64,
    /// Fixed seconds of overhead per hypercube (allocation, k-means setup).
    pub per_cube_overhead: f64,
    /// Serial phase-1 seconds (cube selection on rank 0).
    pub serial_secs: f64,
    /// Communication latency per message (α), seconds.
    pub comm_latency: f64,
    /// Inverse bandwidth (β), seconds per byte.
    pub comm_inv_bandwidth: f64,
    /// Bytes exchanged per all-reduce stage (cluster PDFs and strengths).
    pub reduce_bytes: f64,
    /// Bytes per retained sample in the final gather.
    pub bytes_per_sample: f64,
}

impl ClusterModel {
    /// A Frontier-like configuration: Slingshot α ≈ 2 µs, ~25 GB/s per rank.
    pub fn frontier() -> Self {
        ClusterModel {
            per_point_cost: 2.0e-7,
            per_cube_overhead: 5.0e-3,
            serial_secs: 0.05,
            comm_latency: 2.0e-6,
            comm_inv_bandwidth: 4.0e-11,
            reduce_bytes: 64.0 * 1024.0,
            bytes_per_sample: 64.0,
        }
    }

    /// Derives a model whose single-rank time matches a measured run of
    /// `cubes` hypercubes of `points_per_cube` points each.
    pub fn calibrated(
        measured_single_rank_secs: f64,
        cubes: usize,
        points_per_cube: usize,
    ) -> Self {
        let mut m = ClusterModel::frontier();
        let work = (cubes * points_per_cube) as f64;
        // Attribute 5% to serial selection, 5% to per-cube overhead, the
        // rest to per-point work.
        m.serial_secs = 0.05 * measured_single_rank_secs;
        m.per_cube_overhead = 0.05 * measured_single_rank_secs / cubes.max(1) as f64;
        m.per_point_cost = 0.90 * measured_single_rank_secs / work.max(1.0);
        m
    }

    /// Predicted wall time for `ranks` ranks over `cubes` hypercubes.
    pub fn time(
        &self,
        cubes: usize,
        points_per_cube: usize,
        samples_per_cube: usize,
        ranks: usize,
    ) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        // Integer work quantization: the slowest rank holds ceil(C/R) cubes.
        let max_cubes = cubes.div_ceil(ranks);
        let compute = max_cubes as f64
            * (points_per_cube as f64 * self.per_point_cost + self.per_cube_overhead);
        let comm = if ranks == 1 {
            0.0
        } else {
            let stages = (ranks as f64).log2().ceil();
            let allreduce =
                stages * (self.comm_latency + self.comm_inv_bandwidth * self.reduce_bytes);
            let gather_bytes =
                (cubes * samples_per_cubes(samples_per_cube)) as f64 * self.bytes_per_sample;
            let gather = self.comm_latency * ranks as f64 + self.comm_inv_bandwidth * gather_bytes;
            allreduce + gather
        };
        self.serial_secs + compute + comm
    }

    /// Runs a full strong-scaling study over `rank_counts`.
    pub fn strong_scaling(
        &self,
        cubes: usize,
        points_per_cube: usize,
        samples_per_cube: usize,
        rank_counts: &[usize],
    ) -> Vec<ScalingPoint> {
        let t1 = self.time(cubes, points_per_cube, samples_per_cube, 1);
        rank_counts
            .iter()
            .map(|&r| {
                let t = self.time(cubes, points_per_cube, samples_per_cube, r);
                ScalingPoint {
                    ranks: r,
                    secs: t,
                    speedup: t1 / t,
                    efficiency: t1 / t / r as f64,
                }
            })
            .collect()
    }
}

#[inline]
fn samples_per_cubes(s: usize) -> usize {
    s
}

/// One point on a strong-scaling curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// MPI rank count.
    pub ranks: usize,
    /// Predicted/measured seconds.
    pub secs: f64,
    /// Speedup vs. one rank.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / ranks`).
    pub efficiency: f64,
}

/// Finds the knee of a scaling curve: the largest rank count whose parallel
/// efficiency is still at least `threshold` (the paper marks the knee where
/// "efficiency drops sharply"). Returns the rank count.
pub fn knee_point(points: &[ScalingPoint], threshold: f64) -> usize {
    points
        .iter()
        .filter(|p| p.efficiency >= threshold)
        .map(|p| p.ranks)
        .max()
        .unwrap_or_else(|| points.first().map(|p| p.ranks).unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks() -> Vec<usize> {
        (0..10).map(|i| 1usize << i).collect() // 1..512
    }

    #[test]
    fn single_rank_time_is_total_work() {
        let m = ClusterModel::frontier();
        let t = m.time(100, 32_768, 3277, 1);
        let expect = m.serial_secs + 100.0 * (32_768.0 * m.per_point_cost + m.per_cube_overhead);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn large_dataset_scales_quasi_linearly_then_knees() {
        // SST-P1F100-like: plenty of cubes.
        let m = ClusterModel::frontier();
        let pts = m.strong_scaling(4096, 32_768, 16_384, &ranks());
        // Quasi-linear at 64 ranks.
        let p64 = pts.iter().find(|p| p.ranks == 64).unwrap();
        assert!(p64.efficiency > 0.7, "efficiency at 64: {}", p64.efficiency);
        // Speedup at 512 is large but clearly sublinear (paper: ~171).
        let p512 = pts.iter().find(|p| p.ranks == 512).unwrap();
        assert!(
            p512.speedup > 50.0 && p512.speedup < 512.0,
            "512-rank speedup {}",
            p512.speedup
        );
        assert!(p512.efficiency < p64.efficiency);
    }

    #[test]
    fn small_dataset_plateaus_early() {
        // SST-P1F4-like: few cubes -> starved ranks.
        let m = ClusterModel::frontier();
        let pts = m.strong_scaling(32, 32_768, 3277, &ranks());
        let best = pts
            .iter()
            .cloned()
            .fold(pts[0], |a, b| if b.speedup > a.speedup { b } else { a });
        assert!(best.speedup < 40.0, "plateau speedup {}", best.speedup);
        // Beyond 32 ranks there is no extra speedup (work quantized to 1 cube).
        let p32 = pts.iter().find(|p| p.ranks == 32).unwrap();
        let p512 = pts.iter().find(|p| p.ranks == 512).unwrap();
        assert!(
            p512.speedup <= p32.speedup * 1.05,
            "{} vs {}",
            p512.speedup,
            p32.speedup
        );
    }

    #[test]
    fn knee_point_orders_datasets() {
        let m = ClusterModel::frontier();
        let big = m.strong_scaling(4096, 32_768, 16_384, &ranks());
        let small = m.strong_scaling(32, 32_768, 3277, &ranks());
        let knee_big = knee_point(&big, 0.5);
        let knee_small = knee_point(&small, 0.5);
        assert!(
            knee_big > knee_small,
            "knees: big {knee_big} small {knee_small}"
        );
    }

    #[test]
    fn calibration_matches_measurement() {
        let m = ClusterModel::calibrated(10.0, 50, 10_000);
        let t1 = m.time(50, 10_000, 1000, 1);
        assert!((t1 - 10.0).abs() < 1e-9, "calibrated t1 {t1}");
    }

    #[test]
    fn efficiency_monotonically_bounded() {
        let m = ClusterModel::frontier();
        for p in m.strong_scaling(512, 32_768, 3277, &ranks()) {
            assert!(p.efficiency <= 1.0 + 1e-9);
            assert!(p.speedup > 0.0);
        }
    }

    #[test]
    fn time_decreases_until_comm_dominates() {
        let m = ClusterModel::frontier();
        let t1 = m.time(1024, 32_768, 3277, 1);
        let t64 = m.time(1024, 32_768, 3277, 64);
        assert!(t64 < t1 / 30.0, "t1 {t1} t64 {t64}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ClusterModel::frontier().time(10, 10, 1, 0);
    }

    #[test]
    fn speedup_saturates_at_cube_count() {
        // Once R > C, every extra rank idles: the slowest rank still holds
        // one whole cube, so speedup can never exceed C (and adding ranks
        // past C cannot improve the time at all).
        let m = ClusterModel::frontier();
        let cubes = 16;
        let sweep = m.strong_scaling(cubes, 32_768, 3277, &ranks());
        for p in &sweep {
            assert!(
                p.speedup <= cubes as f64 + 1e-9,
                "{} ranks: speedup {} exceeds cube count {cubes}",
                p.ranks,
                p.speedup
            );
        }
        let t_at_c = m.time(cubes, 32_768, 3277, cubes);
        for r in [2 * cubes, 4 * cubes, 32 * cubes] {
            let t = m.time(cubes, 32_768, 3277, r);
            assert!(
                t >= t_at_c - 1e-12,
                "{r} ranks beat {cubes} ranks: {t} < {t_at_c}"
            );
        }
    }

    #[test]
    fn efficiency_monotone_non_increasing_over_pow2_ranks() {
        // Over a power-of-two sweep the per-rank cube share halves cleanly,
        // so parallel efficiency can only erode (serial fraction + comm).
        // (Non-power-of-two sweeps can jitter: ceil(C/R) is non-monotone in
        // R·ceil(C/R) terms.)
        let m = ClusterModel::frontier();
        for cubes in [32usize, 512, 4096] {
            let sweep = m.strong_scaling(cubes, 32_768, 3277, &ranks());
            for pair in sweep.windows(2) {
                assert!(
                    pair[1].efficiency <= pair[0].efficiency + 1e-9,
                    "{cubes} cubes: efficiency rose from {} ({} ranks) to {} ({} ranks)",
                    pair[0].efficiency,
                    pair[0].ranks,
                    pair[1].efficiency,
                    pair[1].ranks
                );
            }
        }
    }

    #[test]
    fn calibration_round_trips_many_measurements() {
        // calibrated(t, C, P).time(C, P, _, 1) must reproduce t for any
        // plausible measured single-rank time and workload shape.
        for &(secs, cubes, points) in &[
            (0.5f64, 4usize, 512usize),
            (10.0, 50, 10_000),
            (120.0, 4096, 32_768),
            (3600.0, 100_000, 32_768),
        ] {
            let m = ClusterModel::calibrated(secs, cubes, points);
            let t1 = m.time(cubes, points, 1000, 1);
            assert!(
                (t1 - secs).abs() / secs < 1e-9,
                "calibrated({secs}, {cubes}, {points}) reproduces {t1}"
            );
        }
    }
}
