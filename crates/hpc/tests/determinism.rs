//! The executor's determinism contract (DESIGN.md §9), as property tests:
//! the sampled point sets are bit-identical to the serial pipeline for any
//! rank count, and for any recoverable fault plan — kills, stragglers, and
//! silent corruption must be invisible in the output.

use proptest::prelude::*;

use sickle_cfd::synth::{generate, SynthConfig};
use sickle_core::pipeline::{
    run_dataset, CubeMethod, PointMethod, SamplingConfig, SamplingOutput, TemporalMethod,
};
use sickle_field::{Dataset, DatasetMeta};
use sickle_hpc::{run_dataset_with_ranks, FaultInjector, FaultPlan, RetryPolicy};

fn dataset(snapshots: usize) -> Dataset {
    let synth = SynthConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..SynthConfig::default()
    };
    let meta = DatasetMeta::new("synth", "determinism test", "u", &["u", "v", "w"], &[]);
    let mut d = Dataset::new(meta);
    for s in 0..snapshots {
        let mut snap = generate(&synth, 1000 + s as u64);
        snap.time = s as f64;
        d.push(snap);
    }
    d
}

fn config() -> SamplingConfig {
    SamplingConfig {
        hypercubes: CubeMethod::MaxEnt,
        num_hypercubes: 6,
        cube_edge: 8,
        method: PointMethod::MaxEnt {
            num_clusters: 5,
            bins: 32,
        },
        num_samples: 40,
        cluster_var: "u".to_string(),
        feature_vars: vec!["u".to_string(), "v".to_string()],
        seed: 7,
        temporal: TemporalMethod::All,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_rounds: 8,
        backoff: std::time::Duration::from_millis(1),
        multiplier: 1.0,
    }
}

fn assert_bit_identical(a: &SamplingOutput, b: &SamplingOutput, context: &str) {
    assert_eq!(a.sets.len(), b.sets.len(), "{context}: snapshot count");
    for (snap_a, snap_b) in a.sets.iter().zip(&b.sets) {
        assert_eq!(snap_a.len(), snap_b.len(), "{context}: cube count");
        for (sa, sb) in snap_a.iter().zip(snap_b) {
            assert_eq!(sa.hypercube, sb.hypercube, "{context}: cube id");
            assert_eq!(sa.snapshot_index, sb.snapshot_index, "{context}");
            assert_eq!(sa.indices, sb.indices, "{context}: point indices");
            assert_eq!(sa.features.data, sb.features.data, "{context}: features");
            assert_eq!(sa.features.names, sb.features.names, "{context}");
        }
    }
}

#[test]
fn ranked_executor_matches_serial_pipeline_for_all_rank_counts() {
    let d = dataset(2);
    let cfg = config();
    let serial = run_dataset(&d, &cfg);
    for ranks in [1, 2, 4, 8] {
        let ranked = run_dataset_with_ranks(
            &d,
            &cfg,
            ranks,
            &FaultInjector::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_bit_identical(&serial, &ranked, &format!("{ranks} ranks"));
    }
}

#[test]
fn two_of_eight_ranks_killed_is_bit_identical() {
    // The ISSUE acceptance scenario: kill 2 of 8 ranks mid-run; the output
    // must match the failure-free serial run exactly.
    let d = dataset(2);
    let cfg = config();
    let serial = run_dataset(&d, &cfg);
    let plan = FaultPlan::parse("kill@3:0,kill@6:1").unwrap();
    let ranked =
        run_dataset_with_ranks(&d, &cfg, 8, &FaultInjector::new(plan), &fast_retry()).unwrap();
    assert_bit_identical(&serial, &ranked, "2 of 8 ranks killed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded recoverable fault plan — random mixtures of kills,
    /// delays, and poisons on any rank count — produces the exact point
    /// sets of the fault-free serial pipeline.
    #[test]
    fn any_recoverable_fault_plan_is_bit_identical(
        (plan_seed, ranks) in (0u64..1_000_000, 2usize..9)
    ) {
        let plan = FaultPlan::random(plan_seed, ranks, 4);
        prop_assert!(plan.recoverable(ranks));
        let d = dataset(1);
        let cfg = config();
        let serial = run_dataset(&d, &cfg);
        let ranked = run_dataset_with_ranks(
            &d,
            &cfg,
            ranks,
            &FaultInjector::new(plan.clone()),
            &fast_retry(),
        );
        match ranked {
            Ok(out) => {
                assert_bit_identical(
                    &serial,
                    &out,
                    &format!("plan seed {plan_seed}, {ranks} ranks, {plan:?}"),
                );
            }
            Err(e) => {
                prop_assert!(false, "recoverable plan {plan:?} failed: {e}");
            }
        }
    }

    /// Rank count never changes the output, proptest form: a uniformly
    /// drawn rank count matches the serial pipeline with no faults at all.
    #[test]
    fn any_rank_count_matches_serial(ranks in 1usize..17) {
        let d = dataset(1);
        let cfg = config();
        let serial = run_dataset(&d, &cfg);
        let ranked = run_dataset_with_ranks(
            &d,
            &cfg,
            ranks,
            &FaultInjector::none(),
            &RetryPolicy::default(),
        );
        match ranked {
            Ok(out) => assert_bit_identical(&serial, &out, &format!("{ranks} ranks")),
            Err(e) => prop_assert!(false, "fault-free run failed: {e}"),
        }
    }
}
