//! Global FLOP counter for the energy model.
//!
//! Every tape op records its floating-point work here; the training loop
//! reads the counter into a `sickle-energy` meter. A process-global atomic
//! keeps the tape free of plumbing and works under rayon parallelism.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` FLOPs to the global counter.
#[inline]
pub fn record(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Current counter value.
pub fn total() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Resets the counter to zero and returns the previous value.
pub fn reset() -> u64 {
    FLOPS.swap(0, Ordering::Relaxed)
}

/// Returns the FLOPs accumulated while running `f` (not thread-isolated:
/// concurrent recorders will be included).
pub fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = total();
    let r = f();
    (r, total() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        reset();
        record(100);
        record(20);
        assert!(total() >= 120);
        let prev = reset();
        assert!(prev >= 120);
    }

    #[test]
    fn counted_measures_delta() {
        let ((), d) = counted(|| record(42));
        assert!(d >= 42);
    }
}
