//! Cache-blocked SGEMM kernels for the autodiff tape.
//!
//! One BLIS-style driver serves all three logical layouts the tape needs —
//! `C = A·B` (NN), `C = A·Bᵀ` (NT, `B` stored `(n, k)`), and `C = Aᵀ·B`
//! (TN, `A` stored `(m, k)`) — by describing each operand with a logical
//! `(row_stride, col_stride)` pair. The driver packs `B` into `KC × NC`
//! column panels of `NR`-wide micro-panels and `A` into `MC × KC` row
//! blocks of `MR`-tall micro-panels, then runs a register-tiled `MR × NR`
//! microkernel over the packed data. Packing turns every layout (including
//! the transposed ones, whose naive inner loops are serial dot-product
//! chains the compiler cannot vectorize) into the same unit-stride,
//! autovectorization-friendly inner kernel with `MR·NR` independent
//! accumulation chains.
//!
//! All kernels support `accumulate` (`C += A·B`) so backward passes write
//! gradients directly into the destination buffer with no temporary.
//! Accumulation order over `k` is fixed per output element regardless of
//! thread count — row blocks are parallel but disjoint — so results are
//! run-to-run deterministic.
//!
//! Pack buffers are thread-local and grow to a high-water mark, so
//! steady-state calls perform no heap allocation.

use std::cell::RefCell;

use rayon::prelude::*;
use sickle_simd::fma_available;

/// Microkernel tile rows (accumulator tile is `MR × NR` f32 = 12 of the 16
/// SSE2 xmm registers, leaving room for the `A` broadcast and `B` row).
pub const MR: usize = 6;
/// Microkernel tile columns.
pub const NR: usize = 8;
/// K-dimension block: one packed `A` micro-panel (`KC·MR` f32) and the
/// active `B` micro-panel (`KC·NR` f32) stay L1-resident.
pub const KC: usize = 256;
/// Rows of `A` packed per block (`MC·KC` f32 ≈ 128 KiB, L2-resident).
pub const MC: usize = 128;
/// Columns of `B` packed per panel (`KC·NC` f32 cap on the shared panel).
pub const NC: usize = 4096;

/// Which matmul implementation the tape dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// The pre-optimization row-parallel kernels (kept for comparison
    /// benchmarks).
    Naive,
    /// The packed, register-tiled blocked kernels (default).
    Blocked,
}

/// Selects the global matmul implementation (bench/testing hook; not
/// intended to be toggled while another thread is inside a kernel).
/// Maps onto the workspace-wide `sickle_simd` kernel switch, so forcing
/// a variant there forces it here too.
pub fn set_kernel(k: Kernel) {
    sickle_simd::set_kernel(match k {
        Kernel::Naive => sickle_simd::Kernel::Naive,
        Kernel::Blocked => sickle_simd::Kernel::Optimized,
    });
}

/// Currently selected matmul implementation (reads the workspace-wide
/// `sickle_simd` kernel switch).
pub fn kernel() -> Kernel {
    match sickle_simd::kernel() {
        sickle_simd::Kernel::Naive => Kernel::Naive,
        sickle_simd::Kernel::Optimized => Kernel::Blocked,
    }
}

thread_local! {
    /// Packed-A scratch, one per worker thread (each row block packs its own).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Packed-B scratch, owned by the thread driving the gemm call and shared
    /// read-only with workers. Distinct from `PACK_A` because the driving
    /// thread also participates as a worker.
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C (m,n) = A (m,k) · B (k,n)`, or `C += …` when `accumulate`.
///
/// # Panics
/// Panics if a buffer length does not match its shape.
pub fn matmul_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, acc: bool) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    match kernel() {
        Kernel::Naive => naive_matmul_into(c, a, b, m, k, n, acc),
        // With fewer rows than one micro-tile, packing B costs more than
        // the whole naive product (contiguous axpy rows) — route around.
        Kernel::Blocked if m < MR => naive_matmul_into(c, a, b, m, k, n, acc),
        Kernel::Blocked => gemm_strided(c, m, k, n, a, k, 1, b, n, 1, acc),
    }
}

/// `C (m,n) = A (m,k) · Bᵀ` with `B` stored `(n,k)`, or `C += …`.
///
/// # Panics
/// Panics if a buffer length does not match its shape.
pub fn matmul_nt_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    match kernel() {
        Kernel::Naive => naive_matmul_nt_into(c, a, b, m, k, n, acc),
        Kernel::Blocked => gemm_strided(c, m, k, n, a, k, 1, b, 1, k, acc),
    }
}

/// `C (k,n) = Aᵀ · B` with `A` stored `(m,k)` and `B` stored `(m,n)`,
/// or `C += …`.
///
/// # Panics
/// Panics if a buffer length does not match its shape.
pub fn matmul_tn_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), m * n, "B length mismatch");
    match kernel() {
        Kernel::Naive => naive_matmul_tn_into(c, a, b, m, k, n, acc),
        // A reduction this short can't amortize the micro-tile setup; the
        // naive TN loop is m contiguous axpy sweeps and wins outright.
        Kernel::Blocked if m < 8 => naive_matmul_tn_into(c, a, b, m, k, n, acc),
        // Logical dims: M' = k, K' = m, N' = n; A'[i][l] = a[l*k + i].
        Kernel::Blocked => gemm_strided(c, k, m, n, a, 1, k, b, n, 1, acc),
    }
}

/// The blocked driver over logical `C (m,n) = A (m,k) · B (k,n)` where the
/// operands are addressed as `a[i*ars + l*acs]` and `b[l*brs + j*bcs]`.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ars: usize,
    acs: usize,
    b: &[f32],
    brs: usize,
    bcs: usize,
    acc: bool,
) {
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            c.fill(0.0);
        }
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // First k-block either overwrites or accumulates into C;
            // subsequent k-blocks always accumulate.
            let overwrite = pc == 0 && !acc;
            PACK_B.with(|cell| {
                let mut pb = cell.borrow_mut();
                pack_b(&mut pb, b, brs, bcs, pc, kc, jc, nc);
                let pb: &[f32] = &pb;
                let row_blocks = m.div_ceil(MC);
                if row_blocks == 1 {
                    // Single row block: skip the parallel dispatch.
                    row_block(c, 0, m, n, kc, jc, nc, a, ars, acs, pc, pb, overwrite);
                } else {
                    c.par_chunks_mut(MC * n).enumerate().for_each(|(bi, cblk)| {
                        let ic = bi * MC;
                        let mc = cblk.len() / n;
                        row_block(cblk, ic, mc, n, kc, jc, nc, a, ars, acs, pc, pb, overwrite);
                    });
                }
            });
        }
    }
}

/// Packs and multiplies one `mc × kc` block of `A` against the shared packed
/// `B` panel, writing the `mc × nc` result tile of `cblk` (whose rows start
/// at global row `ic`).
#[allow(clippy::too_many_arguments)]
fn row_block(
    cblk: &mut [f32],
    ic: usize,
    mc: usize,
    n: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    a: &[f32],
    ars: usize,
    acs: usize,
    pc: usize,
    pb: &[f32],
    overwrite: bool,
) {
    PACK_A.with(|cell| {
        let mut pa = cell.borrow_mut();
        pack_a(&mut pa, a, ars, acs, ic, mc, pc, kc);
        let mut acc_tile = [0.0f32; MR * NR];
        for (q, j0) in (0..nc).step_by(NR).enumerate() {
            let w = NR.min(nc - j0);
            let bp = &pb[q * kc * NR..(q + 1) * kc * NR];
            for (p, i0) in (0..mc).step_by(MR).enumerate() {
                let h = MR.min(mc - i0);
                let ap = &pa[p * kc * MR..(p + 1) * kc * MR];
                microkernel(kc, ap, bp, &mut acc_tile);
                write_tile(cblk, n, i0, jc + j0, h, w, &acc_tile, overwrite);
            }
        }
    });
}

/// The register-tiled inner kernel: `acc[i][j] += Σ_l ap[l][i] · bp[l][j]`
/// over packed micro-panels (`ap` is `kc × MR` with `i` fastest, `bp` is
/// `kc × NR` with `j` fastest). `acc` is overwritten. Dispatches to the
/// AVX2+FMA variant when the CPU supports it (detected once, cached).
#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: avx2 + fma presence verified by `fma_available`.
        unsafe { microkernel_fma(kc, ap, bp, acc) };
        return;
    }
    microkernel_portable(kc, ap, bp, acc);
}

/// The microkernel compiled with AVX2+FMA enabled: each `NR`-wide row of the
/// accumulator tile is one ymm register and every `mul_add` lowers to a fused
/// multiply-add, which baseline (SSE2) codegen cannot emit. Two independent
/// accumulator tiles give `2·MR` fma chains — enough to cover the fma latency
/// on two issue ports.
///
/// # Safety
/// Caller must have verified `avx2` and `fma` CPU support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    let mut acc0 = [0.0f32; MR * NR];
    let mut acc1 = [0.0f32; MR * NR];
    let pairs = kc / 2;
    for (av, bv) in ap
        .chunks_exact(2 * MR)
        .zip(bp.chunks_exact(2 * NR))
        .take(pairs)
    {
        for i in 0..MR {
            let a0 = av[i];
            let a1 = av[MR + i];
            for j in 0..NR {
                acc0[i * NR + j] = a0.mul_add(bv[j], acc0[i * NR + j]);
                acc1[i * NR + j] = a1.mul_add(bv[NR + j], acc1[i * NR + j]);
            }
        }
    }
    if kc % 2 == 1 {
        let l = kc - 1;
        let av = &ap[l * MR..l * MR + MR];
        let bv = &bp[l * NR..l * NR + NR];
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc0[i * NR + j] = ai.mul_add(bv[j], acc0[i * NR + j]);
            }
        }
    }
    for (d, (x, y)) in acc.iter_mut().zip(acc0.iter().zip(&acc1)) {
        *d = x + y;
    }
}

/// Portable fallback microkernel (autovectorizes under whatever SIMD the
/// baseline target provides).
#[inline]
fn microkernel_portable(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    acc.fill(0.0);
    // Two k-steps per iteration: more independent work in flight between
    // loop-carried accumulator updates.
    let pairs = kc / 2;
    for (av, bv) in ap
        .chunks_exact(2 * MR)
        .zip(bp.chunks_exact(2 * NR))
        .take(pairs)
    {
        for i in 0..MR {
            let a0 = av[i];
            let a1 = av[MR + i];
            for j in 0..NR {
                acc[i * NR + j] += a0 * bv[j] + a1 * bv[NR + j];
            }
        }
    }
    if kc % 2 == 1 {
        let l = kc - 1;
        let av = &ap[l * MR..l * MR + MR];
        let bv = &bp[l * NR..l * NR + NR];
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i * NR + j] += ai * bv[j];
            }
        }
    }
}

/// Writes (or adds) the valid `h × w` corner of an accumulator tile into `c`
/// at `(i0, j0)`.
#[allow(clippy::too_many_arguments)]
fn write_tile(
    c: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
    acc: &[f32; MR * NR],
    overwrite: bool,
) {
    for i in 0..h {
        let crow = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + w];
        let arow = &acc[i * NR..i * NR + w];
        if overwrite {
            crow.copy_from_slice(arow);
        } else {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv += av;
            }
        }
    }
}

/// Packs the `kc × nc` panel of logical `B` starting at `(pc, jc)` into
/// `NR`-wide micro-panels (`[panel][l][j]`, zero-padded to full `NR`).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    pb: &mut Vec<f32>,
    b: &[f32],
    brs: usize,
    bcs: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    let need = panels * kc * NR;
    if pb.len() < need {
        pb.resize(need, 0.0);
    }
    for q in 0..panels {
        let j0 = jc + q * NR;
        let w = NR.min(jc + nc - j0);
        let dst = &mut pb[q * kc * NR..(q + 1) * kc * NR];
        for (l, drow) in dst.chunks_exact_mut(NR).enumerate().take(kc) {
            let base = (pc + l) * brs;
            for (j, d) in drow.iter_mut().enumerate() {
                *d = if j < w { b[base + (j0 + j) * bcs] } else { 0.0 };
            }
        }
    }
}

/// Packs the `mc × kc` block of logical `A` starting at `(ic, pc)` into
/// `MR`-tall micro-panels (`[panel][l][i]`, zero-padded to full `MR`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    pa: &mut Vec<f32>,
    a: &[f32],
    ars: usize,
    acs: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    let need = panels * kc * MR;
    if pa.len() < need {
        pa.resize(need, 0.0);
    }
    for p in 0..panels {
        let i0 = ic + p * MR;
        let h = MR.min(ic + mc - i0);
        let dst = &mut pa[p * kc * MR..(p + 1) * kc * MR];
        for (l, drow) in dst.chunks_exact_mut(MR).enumerate().take(kc) {
            let col = (pc + l) * acs;
            for (i, d) in drow.iter_mut().enumerate() {
                *d = if i < h { a[(i0 + i) * ars + col] } else { 0.0 };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naive kernels (the pre-optimization implementations, kept as the baseline
// the perf guardrail measures against).
// ---------------------------------------------------------------------------

/// Row-parallel `C = A·B` with an axpy inner loop (the old `matmul_kernel`).
pub fn naive_matmul_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.par_chunks_mut(n).enumerate().for_each(|(r, orow)| {
        if !acc {
            orow.fill(0.0);
        }
        let arow = &a[r * k..(r + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    });
}

/// Row-parallel `C = A·Bᵀ` with a dot-product inner loop.
pub fn naive_matmul_nt_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.par_chunks_mut(n).enumerate().for_each(|(r, orow)| {
        let arow = &a[r * k..(r + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let dot: f32 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            if acc {
                *o += dot;
            } else {
                *o = dot;
            }
        }
    });
}

/// `C = Aᵀ·B`, parallel over the `k` output rows (the old `matmul_tn`).
pub fn naive_matmul_tn_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert_eq!(c.len(), k * n, "C length mismatch");
    c.par_chunks_mut(n).enumerate().for_each(|(kk, orow)| {
        if !acc {
            orow.fill(0.0);
        }
        for r in 0..m {
            let av = a[r * k + kk];
            if av != 0.0 {
                let brow = &b[r * n..(r + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-0.5, 0.5).
        (0..len)
            .map(|i| {
                let x = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(40503));
                (x >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    fn reference_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[i * k + l] * b[l * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32], tag: &str) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-5 * (1.0 + w.abs()),
                "{tag}[{i}]: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn blocked_nn_matches_reference_across_block_edges() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (MC + 2, 2 * KC + 1, 2 * NR + 3),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let want = reference_nn(&a, &b, m, k, n);
            let mut c = vec![f32::NAN; m * n];
            gemm_strided(&mut c, m, k, n, &a, k, 1, &b, n, 1, false);
            assert_close(&c, &want, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_accumulate_adds_to_existing() {
        let (m, k, n) = (9, 33, 17);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let want: Vec<f32> = reference_nn(&a, &b, m, k, n)
            .iter()
            .map(|v| v + 1.0)
            .collect();
        let mut c = vec![1.0f32; m * n];
        gemm_strided(&mut c, m, k, n, &a, k, 1, &b, n, 1, true);
        assert_close(&c, &want, "acc");
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, k, n) = (13, 21, 10);
        let a = fill(m * k, 5);
        // NT: b stored (n, k).
        let bt = fill(n * k, 6);
        let b_logical: Vec<f32> = (0..k * n).map(|i| bt[(i % n) * k + i / n]).collect();
        let want = reference_nn(&a, &b_logical, m, k, n);
        let mut c = vec![0.0f32; m * n];
        matmul_nt_into(&mut c, &a, &bt, m, k, n, false);
        assert_close(&c, &want, "nt");
        // TN: C (k,n) = Aᵀ·B with a stored (m,k), b stored (m,n).
        let b2 = fill(m * n, 7);
        let at: Vec<f32> = (0..k * m).map(|i| a[(i % m) * k + i / m]).collect();
        let want = reference_nn(&at, &b2, k, m, n);
        let mut c = vec![0.0f32; k * n];
        matmul_tn_into(&mut c, &a, &b2, m, k, n, false);
        assert_close(&c, &want, "tn");
    }

    #[test]
    fn naive_kernels_match_blocked() {
        let (m, k, n) = (11, 37, 23);
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let mut blocked = vec![0.0f32; m * n];
        gemm_strided(&mut blocked, m, k, n, &a, k, 1, &b, n, 1, false);
        let mut naive = vec![0.0f32; m * n];
        naive_matmul_into(&mut naive, &a, &b, m, k, n, false);
        assert_close(&naive, &blocked, "naive vs blocked");
    }

    #[test]
    fn kernel_switch_roundtrips() {
        let before = kernel();
        set_kernel(Kernel::Naive);
        assert_eq!(kernel(), Kernel::Naive);
        set_kernel(Kernel::Blocked);
        assert_eq!(kernel(), Kernel::Blocked);
        set_kernel(before);
    }
}
